"""Local caching heuristics (LRU / LFU).

The paper's default comparison heuristic: every node runs an independent
fixed-capacity cache, reacts to each local access, and sends misses to the
origin.  Class-wise this is *caching* in Table 3 — storage-constrained,
local routing, local knowledge, single-interval history, reactive.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

from repro.heuristics.base import PlacementHeuristic


class LRUCaching(PlacementHeuristic):
    """Per-node LRU caches of a fixed capacity (objects).

    Capacity 0 disables caching entirely (every read goes to the origin).
    """

    routing = "local"

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._lru: List[OrderedDict] = []

    def describe(self) -> str:
        return f"LRU(capacity={self.capacity})"

    def on_start(self, ctx) -> None:
        self._lru = [OrderedDict() for _ in range(ctx.num_nodes)]

    def on_adopt(self, ctx) -> None:
        """Adopt replicas left by a predecessor, evicting beyond capacity."""
        self.on_start(ctx)
        for node in range(ctx.num_nodes):
            if node == ctx.topology.origin:
                continue
            for obj in sorted(ctx.state.contents(node)):
                if self.capacity and len(self._lru[node]) < self.capacity:
                    self._lru[node][obj] = True
                else:
                    ctx.drop_replica(node, obj)

    def on_failure(self, event, ctx, lost=()) -> None:
        """Forget lost replicas so they are re-fetched, not phantom-hit."""
        for node, obj in lost:
            self._lru[node].pop(obj, None)

    def on_replicate(self, node, obj, ctx) -> None:
        """Admit an externally-created (healed) replica as most-recent."""
        if self.capacity == 0 or node == ctx.topology.origin:
            return
        cache = self._lru[node]
        if obj in cache:
            cache.move_to_end(obj)
            return
        if len(cache) >= self.capacity:
            victim, _ = cache.popitem(last=False)
            ctx.drop_replica(node, victim)
        cache[obj] = True

    def on_access(self, request, served_ms, ctx) -> None:
        if self.capacity == 0:
            return
        node = request.node
        cache = self._lru[node]
        if request.obj in cache:
            cache.move_to_end(request.obj)
            return
        # Miss: fetch from the origin and insert, evicting the LRU victim.
        if len(cache) >= self.capacity:
            victim, _ = cache.popitem(last=False)
            ctx.drop_replica(node, victim)
        cache[request.obj] = True
        ctx.create_replica(node, request.obj)


class LFUCaching(PlacementHeuristic):
    """Per-node LFU caches (evict the least-frequently-used object).

    Frequency counts persist across evictions (perfect LFU), which models
    the strongest member of the frequency-based caching family.
    """

    routing = "local"

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._counts: List[Dict[int, int]] = []
        self._cached: List[set] = []

    def describe(self) -> str:
        return f"LFU(capacity={self.capacity})"

    def on_start(self, ctx) -> None:
        self._counts = [dict() for _ in range(ctx.num_nodes)]
        self._cached = [set() for _ in range(ctx.num_nodes)]

    def on_adopt(self, ctx) -> None:
        """Adopt pre-existing replicas, keeping any accumulated counts.

        The warmest objects (by surviving frequency counts) are kept up to
        capacity; overflow is evicted so no replica sits untracked.
        """
        counts = self._counts
        self.on_start(ctx)
        if counts:
            self._counts = counts
        for node in range(ctx.num_nodes):
            if node == ctx.topology.origin:
                continue
            node_counts = self._counts[node]
            held = sorted(
                ctx.state.contents(node),
                key=lambda k: (-node_counts.get(k, 0), k),
            )
            for obj in held:
                if self.capacity and len(self._cached[node]) < self.capacity:
                    self._cached[node].add(obj)
                else:
                    ctx.drop_replica(node, obj)

    def on_failure(self, event, ctx, lost=()) -> None:
        """Forget lost replicas (frequency counts survive — perfect LFU)."""
        for node, obj in lost:
            self._cached[node].discard(obj)

    def on_replicate(self, node, obj, ctx) -> None:
        """Admit an externally-created (healed) replica, evicting the coldest."""
        if self.capacity == 0 or node == ctx.topology.origin:
            return
        cached = self._cached[node]
        if obj in cached:
            return
        if len(cached) >= self.capacity:
            counts = self._counts[node]
            victim = min(cached, key=lambda k: (counts.get(k, 0), k))
            cached.discard(victim)
            ctx.drop_replica(node, victim)
        cached.add(obj)

    def on_access(self, request, served_ms, ctx) -> None:
        node, obj = request.node, request.obj
        counts = self._counts[node]
        counts[obj] = counts.get(obj, 0) + 1
        if self.capacity == 0:
            return
        cached = self._cached[node]
        if obj in cached:
            return
        if len(cached) < self.capacity:
            cached.add(obj)
            ctx.create_replica(node, obj)
            return
        # Evict the coldest cached object if the newcomer is warmer.
        victim = min(cached, key=lambda k: (counts.get(k, 0), k))
        if counts.get(victim, 0) < counts[obj]:
            cached.discard(victim)
            ctx.drop_replica(node, victim)
            cached.add(obj)
            ctx.create_replica(node, obj)
