"""Deployed placement heuristics (§6 evaluation).

Concrete heuristics from each Table-3 class, driven by the trace simulator
in :mod:`repro.simulator`:

* :class:`~repro.heuristics.caching.LRUCaching` /
  :class:`~repro.heuristics.caching.LFUCaching` — plain local caching.
* :class:`~repro.heuristics.cooperative.CooperativeLRUCaching` —
  cooperative caching with duplicate avoidance.
* :class:`~repro.heuristics.greedy_global.GreedyGlobalPlacement` —
  storage-constrained centralized greedy (the WEB recommendation).
* :class:`~repro.heuristics.qiu.QiuGreedyPlacement` — replica-constrained
  greedy (the GROUP recommendation).
* :class:`~repro.heuristics.prefetch.PrefetchCaching` /
  :class:`~repro.heuristics.prefetch.CooperativePrefetchCaching` —
  clairvoyant prefetching variants.
* :class:`~repro.heuristics.random_placement.RandomPlacement` — baseline.
"""

from repro.heuristics.base import PlacementHeuristic
from repro.heuristics.caching import LFUCaching, LRUCaching
from repro.heuristics.cooperative import CooperativeLRUCaching
from repro.heuristics.greedy_global import GreedyGlobalPlacement
from repro.heuristics.prefetch import CooperativePrefetchCaching, PrefetchCaching
from repro.heuristics.qiu import QiuGreedyPlacement
from repro.heuristics.random_placement import RandomPlacement

__all__ = [
    "PlacementHeuristic",
    "LRUCaching",
    "LFUCaching",
    "CooperativeLRUCaching",
    "GreedyGlobalPlacement",
    "QiuGreedyPlacement",
    "PrefetchCaching",
    "CooperativePrefetchCaching",
    "RandomPlacement",
]
