#!/usr/bin/env python3
"""The §6.2 case study: planning an infrastructure deployment from scratch.

No file servers exist yet.  Phase 1 decides *where* to deploy replica-capable
nodes (a node-opening cost enters the objective); phase 2 assigns every
site's users to their nearest deployed node and re-runs the class comparison
on the reduced, more constrained system — often reaching a different
conclusion than the existing-infrastructure analysis (the paper's Figure 3:
for GROUP, plain caching becomes the appealing choice).

Run:  python examples/deployment_planning.py
"""

from repro import (
    CostModel,
    DemandMatrix,
    QoSGoal,
    as_level_topology,
    group_workload,
    plan_deployment,
    web_workload,
)

NUM_NODES = 20
NUM_INTERVALS = 8
TLAT_MS = 150.0
ZETA = 3000.0  # node-opening cost (the paper uses 10,000 at full scale)


def plan_for(name, trace, topology):
    print(f"\n=== {name}: {trace} ===")
    demand = DemandMatrix.from_trace(trace, num_intervals=NUM_INTERVALS)
    plan = plan_deployment(
        topology,
        demand,
        QoSGoal(tlat_ms=TLAT_MS, fraction=0.95),
        costs=CostModel.deployment_defaults(zeta=ZETA),
        do_rounding=False,
        warmup_intervals=1,
    )
    print(plan.render())
    if plan.feasible:
        assigned = {
            site: int(node)
            for site, node in enumerate(plan.assignment)
            if site != node
        }
        print(f"\nUser assignment for closed sites: {assigned}")
    return plan


def main() -> None:
    topology = as_level_topology(num_nodes=NUM_NODES, seed=2)
    print(f"System: {topology}, headquarters = site {topology.origin}")
    print(f"Node-opening cost zeta = {ZETA:g}")

    web = web_workload(
        num_nodes=NUM_NODES,
        num_objects=80,
        populations=topology.populations,
        requests_scale=0.1,
        seed=1,
    )
    plan_for("WEB", web, topology)

    group = group_workload(num_nodes=NUM_NODES, num_objects=40, requests_scale=0.04, seed=1)
    plan = plan_for("GROUP", group, topology)

    if plan.feasible and plan.selection is not None:
        caching = plan.selection.bound("caching")
        best = plan.selection.bound(plan.selection.recommended)
        if caching is not None and best is not None and caching <= 1.35 * best:
            print(
                "\nOn the reduced topology the caching bound is within "
                f"{caching / best - 1:.0%} of the best class - so plain "
                "caching, being the best-understood heuristic, is the "
                "appealing choice (the paper's Figure-3 conclusion)."
            )


if __name__ == "__main__":
    main()
