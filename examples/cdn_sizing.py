#!/usr/bin/env python3
"""Capacity planning for a CDN-style service with an average-latency goal.

The paper's second goal metric: keep the *mean* perceived latency under a
target rather than a tail percentile.  This example sweeps average-latency
targets on a CDN-like topology, computes the general and storage-constrained
bounds for each target, and shows the cost/latency trade-off curve a
capacity planner would use — plus a per-object QoS variant for a "premium
content" tier.

Run:  python examples/cdn_sizing.py
"""

from repro import (
    AverageLatencyGoal,
    DemandMatrix,
    GoalScope,
    MCPerfProblem,
    QoSGoal,
    as_level_topology,
    compute_lower_bound,
    get_class,
    web_workload,
)

NUM_NODES = 14
NUM_INTERVALS = 6


def main() -> None:
    topology = as_level_topology(num_nodes=NUM_NODES, seed=11)
    trace = web_workload(
        num_nodes=NUM_NODES,
        num_objects=30,
        populations=topology.populations,
        requests_scale=0.02,
        seed=3,
    )
    demand = DemandMatrix.from_trace(trace, num_intervals=NUM_INTERVALS)
    print(f"System: {topology}; workload: {trace}\n")

    # --- average-latency sweep -------------------------------------------
    print("Average-latency goal: cost of the general bound per target")
    print(f"{'target (ms)':>12s} {'bound':>10s}")
    for target in [250.0, 200.0, 150.0, 100.0]:
        problem = MCPerfProblem(
            topology=topology,
            demand=demand,
            goal=AverageLatencyGoal(tavg_ms=target),
        )
        result = compute_lower_bound(problem, do_rounding=False)
        bound = f"{result.lp_cost:10.1f}" if result.feasible else "infeasible"
        print(f"{target:12.0f} {bound}")

    # --- premium tier: per-object QoS -------------------------------------
    print("\nPremium tier: 99% of each object's reads within 150 ms")
    problem = MCPerfProblem(
        topology=topology,
        demand=demand,
        goal=QoSGoal(tlat_ms=150.0, fraction=0.99, scope=GoalScope.PER_OBJECT),
    )
    general = compute_lower_bound(problem, do_rounding=True)
    sc = compute_lower_bound(
        problem, get_class("storage-constrained").properties, do_rounding=True
    )
    print(f"  general bound:              {general.lp_cost:.1f}"
          f" (feasible integral: {general.feasible_cost:.1f})"
          if general.feasible else "  general bound: infeasible")
    if sc.feasible:
        print(
            f"  storage-constrained bound:  {sc.lp_cost:.1f}"
            f" (feasible integral: {sc.feasible_cost:.1f})"
        )
    else:
        print(f"  storage-constrained bound:  infeasible ({sc.reason})")


if __name__ == "__main__":
    main()
