#!/usr/bin/env python3
"""Bring-your-own-logs: import an access log, select a heuristic, and test
how robust the recommendation is.

A designer rarely has a synthetic workload — they have logs.  This example
writes a small CSV access log (standing in for a production export), imports
it with the adapter, runs the selection methodology, and then probes the
recommendation's sensitivity to the latency threshold and the QoS level.

Run:  python examples/log_analysis.py
"""

import io

import numpy as np

from repro import DemandMatrix, MCPerfProblem, QoSGoal, as_level_topology
from repro.analysis.sensitivity import (
    qos_sensitivity,
    recommendation_stability,
    threshold_sensitivity,
)
from repro.core.selection import select_heuristic
from repro.workload.adapters import trace_from_csv

CLASSES = ["storage-constrained", "replica-constrained", "caching"]


def synthesize_log(num_sites=8, num_files=20, seed=0) -> str:
    """A fake 'production' CSV export: Zipf-ish accesses across offices."""
    rng = np.random.default_rng(seed)
    sites = [f"office-{chr(ord('a') + i)}" for i in range(num_sites)]
    files = [f"/share/doc-{k:03d}.pdf" for k in range(num_files)]
    weights = 1.0 / np.arange(1, num_files + 1) ** 0.9
    weights /= weights.sum()
    lines = ["time,node,object,op"]
    for _ in range(6000):
        t = rng.uniform(0, 86_400)
        site = sites[rng.integers(num_sites)]
        file = files[rng.choice(num_files, p=weights)]
        op = "get" if rng.random() > 0.02 else "put"
        lines.append(f"{t:.1f},{site},{file},{op}")
    return "\n".join(lines) + "\n"


def main() -> None:
    # 1. Import the log.
    imported = trace_from_csv(io.StringIO(synthesize_log()), duration_s=86_400.0)
    trace = imported.trace
    print(f"Imported {trace} from CSV")
    print(f"  sites: {sorted(imported.node_ids)[:4]} ...")
    print(f"  busiest file: {imported.object_label(0)}\n")

    # 2. Build the problem (the topology would come from network measurements).
    topology = as_level_topology(num_nodes=trace.num_nodes, seed=9)
    demand = DemandMatrix.from_trace(trace, num_intervals=8)
    problem = MCPerfProblem(
        topology=topology,
        demand=demand,
        goal=QoSGoal(tlat_ms=150.0, fraction=0.9),
        warmup_intervals=1,
    )

    # 3. Select a heuristic class.
    report = select_heuristic(problem, classes=CLASSES, do_rounding=False)
    print(report.render())

    # 4. Sensitivity: would the choice survive measurement error / goal drift?
    print("\n--- sensitivity ---")
    by_threshold = threshold_sensitivity(
        problem, thresholds_ms=[120.0, 150.0, 200.0, 300.0], classes=CLASSES
    )
    print(by_threshold.render())
    by_qos = qos_sensitivity(
        problem, fractions=[0.8, 0.9, 0.95], classes=CLASSES
    )
    print()
    print(by_qos.render())
    stability = recommendation_stability([by_threshold, by_qos])
    print(f"\nRecommendation stability across perturbations: {stability:.0%}")


if __name__ == "__main__":
    main()
