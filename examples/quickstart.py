#!/usr/bin/env python3
"""Quickstart: compare replica-placement heuristic classes for a small WAN.

Reproduces, at toy scale, the paper's §1 motivating example: choosing the
right placement heuristic instead of the "obvious" one (caching) cuts the
infrastructure cost by a large factor — here shown with lower bounds and a
deployed-heuristic simulation side by side.

Run:  python examples/quickstart.py
"""

from repro import (
    DemandMatrix,
    MCPerfProblem,
    QoSGoal,
    as_level_topology,
    compute_lower_bound,
    get_class,
    select_heuristic,
    web_workload,
)
from repro.heuristics import GreedyGlobalPlacement, LRUCaching
from repro.simulator import min_capacity_for_goal


def main() -> None:
    # 1. The system: a 12-site corporate WAN; site 0 hosts the data center.
    topology = as_level_topology(num_nodes=12, seed=7)
    print(f"System: {topology} (origin = site {topology.origin})")

    # 2. The workload: one day of heavy-tailed (WEB-like) file accesses.
    trace = web_workload(
        num_nodes=12,
        num_objects=40,
        populations=topology.populations,
        requests_scale=0.08,
        seed=1,
    )
    print(f"Workload: {trace}")
    demand = DemandMatrix.from_trace(trace, num_intervals=8)

    # 3. The performance goal: 95% of reads within 150 ms, per user site.
    goal = QoSGoal(tlat_ms=150.0, fraction=0.95)
    problem = MCPerfProblem(
        topology=topology, demand=demand, goal=goal, warmup_intervals=1
    )
    print(f"Goal: {goal.describe()}\n")

    # 4. Lower bounds per heuristic class (the paper's method).
    report = select_heuristic(problem, do_rounding=True)
    print(report.render())

    # 5. Validate with the simulator: size the recommended heuristic and the
    #    "obvious" LRU caching to the smallest goal-meeting configuration.
    interval_s = trace.duration_s / 8
    print("\nDeployed-heuristic validation (trace-driven simulation):")
    greedy = min_capacity_for_goal(
        lambda c: GreedyGlobalPlacement(c, period_s=interval_s, tlat_ms=150.0),
        topology,
        trace,
        tlat_ms=150.0,
        fraction=goal.fraction,
        warmup_s=interval_s,
        cost_interval_s=interval_s,
    )
    lru = min_capacity_for_goal(
        lambda c: LRUCaching(c),
        topology,
        trace,
        tlat_ms=150.0,
        fraction=goal.fraction,
        warmup_s=interval_s,
        cost_interval_s=interval_s,
    )
    print(f"  greedy global placement: {greedy}")
    print(f"  LRU caching:             {lru}")

    if greedy.feasible and lru.feasible:
        ratio = lru.result.total_cost / greedy.result.total_cost
        print(f"\nChoosing the right heuristic saves {ratio:.1f}x in this setup.")
    elif greedy.feasible and not lru.feasible:
        print("\nLRU caching cannot meet the goal at any cache size here —")
        print("exactly the kind of conclusion the bound analysis predicts.")


if __name__ == "__main__":
    main()
