#!/usr/bin/env python3
"""On-line adaptation (the paper's §7 future work) under workload drift.

A service whose traffic is WEB-shaped (heavy-tailed) in the morning and
GROUP-shaped (uniformly popular) in the afternoon.  A static heuristic
chosen for one half is mismatched for the other; the adaptive controller
re-runs the bound-based selection on a sliding window of observed demand
and hot-swaps the placement heuristic when the recommendation flips.

Run:  python examples/online_adaptation.py
"""

from repro import DemandMatrix, MCPerfProblem, QoSGoal, as_level_topology
from repro.core.adaptive import (
    AdaptivePlacement,
    default_factories,
    selection_timeline,
)
from repro.heuristics import GreedyGlobalPlacement, QiuGreedyPlacement
from repro.simulator import simulate
from repro.workload import Trace, group_workload, web_workload

NUM_NODES = 16
NUM_INTERVALS = 8
TLAT_MS = 150.0
GOAL = QoSGoal(tlat_ms=TLAT_MS, fraction=0.8)


def main() -> None:
    topology = as_level_topology(num_nodes=NUM_NODES, seed=2)
    web = web_workload(
        num_nodes=NUM_NODES, num_objects=40, populations=topology.populations,
        requests_scale=0.08, seed=1, duration_s=43_200.0,
    )
    group = group_workload(
        num_nodes=NUM_NODES, num_objects=40, requests_scale=0.03, seed=2,
        duration_s=43_200.0,
    )
    trace = Trace.concat([web, group], name="WEB->GROUP")
    period = trace.duration_s / NUM_INTERVALS
    print(f"System: {topology}\nWorkload: {trace} (drifts at noon)\n")

    # 1. Off-line analysis: where does the recommendation flip?
    demand = DemandMatrix.from_trace(trace, num_intervals=NUM_INTERVALS)
    problem = MCPerfProblem(
        topology=topology, demand=demand, goal=GOAL, warmup_intervals=1
    )
    print("Sliding-window selection timeline:")
    for point in selection_timeline(
        problem, window=3, step=2,
        classes=["storage-constrained", "replica-constrained"],
    ):
        print(f"  {point}")

    # 2. Actuation: adaptive controller vs the two static choices.
    def run(h):
        return simulate(
            topology, trace, h, tlat_ms=TLAT_MS,
            warmup_s=period, cost_interval_s=period,
        )

    static_sc = run(GreedyGlobalPlacement(14, period_s=period, tlat_ms=TLAT_MS))
    static_rc = run(QiuGreedyPlacement(4, period_s=period, tlat_ms=TLAT_MS))
    controller = AdaptivePlacement(
        factories=default_factories(capacity=14, replicas=4, period_s=period, tlat_ms=TLAT_MS),
        goal=GOAL,
        period_s=period,
        window=2,
        reselect_every=2,
    )
    adaptive = run(controller)

    print("\nSimulated over the full (drifting) day:")
    print(f"  static greedy-global: {static_sc}")
    print(f"  static qiu-greedy:    {static_rc}")
    print(f"  adaptive:             {adaptive}")
    if controller.switches:
        for idx, before, after in controller.switches:
            print(f"  -> switched {before} -> {after} at period {idx}")
    else:
        print("  -> no switches occurred")


if __name__ == "__main__":
    main()
