#!/usr/bin/env python3
"""The §6.1 case study: choosing a heuristic for a remote-office file service.

A corporation with twenty sites already runs a file server at each site; the
designer must choose the placement heuristic that meets the QoS goal at the
lowest infrastructure cost.  This example runs the full methodology for both
paper workloads (WEB and GROUP) and prints the Figure-1 style comparison
plus the recommendation, then sanity-checks the recommendation by deploying
a concrete heuristic from the chosen class in the simulator.

Run:  python examples/remote_office.py
"""

import dataclasses

from repro import (
    DemandMatrix,
    MCPerfProblem,
    QoSGoal,
    as_level_topology,
    group_workload,
    select_heuristic,
    web_workload,
)
from repro.analysis.report import render_sweep_table
from repro.analysis.sweep import qos_sweep
from repro.core.classes import FIGURE1_CLASSES
from repro.heuristics import GreedyGlobalPlacement, QiuGreedyPlacement
from repro.simulator import simulate

NUM_NODES = 20
NUM_INTERVALS = 8
TLAT_MS = 150.0


def study(name, trace, topology, levels):
    print(f"\n=== {name} workload: {trace} ===")
    demand = DemandMatrix.from_trace(trace, num_intervals=NUM_INTERVALS)
    problem = MCPerfProblem(
        topology=topology,
        demand=demand,
        goal=QoSGoal(tlat_ms=TLAT_MS, fraction=levels[0]),
        warmup_intervals=1,
    )

    sweep = qos_sweep(problem, levels=levels, classes=FIGURE1_CLASSES)
    print(render_sweep_table(sweep, title=f"Lower bounds per class ({name})"))

    report = select_heuristic(problem, do_rounding=False)
    print()
    print(report.render())
    return problem, report


def main() -> None:
    topology = as_level_topology(num_nodes=NUM_NODES, seed=2)
    print(f"System: {topology}, origin = site {topology.origin} (headquarters)")

    web = web_workload(
        num_nodes=NUM_NODES,
        num_objects=80,
        populations=topology.populations,
        requests_scale=0.1,
        seed=1,
    )
    group = group_workload(num_nodes=NUM_NODES, num_objects=40, requests_scale=0.04, seed=1)

    web_problem, web_report = study("WEB", web, topology, [0.90, 0.95, 0.96])
    group_problem, group_report = study("GROUP", group, topology, [0.95, 0.99, 0.995])

    # Deploy a member of each recommended class in the simulator.
    print("\n=== Deployed-heuristic check ===")
    interval_s = web.duration_s / NUM_INTERVALS
    if web_report.recommended == "storage-constrained":
        sim = simulate(
            topology,
            web,
            GreedyGlobalPlacement(capacity=30, period_s=interval_s, tlat_ms=TLAT_MS),
            tlat_ms=TLAT_MS,
            warmup_s=interval_s,
            cost_interval_s=interval_s,
        )
        print(f"WEB / greedy global:  {sim}")
    if group_report.recommended == "replica-constrained":
        sim = simulate(
            topology,
            group,
            QiuGreedyPlacement(replicas_per_object=9, period_s=interval_s, tlat_ms=TLAT_MS),
            tlat_ms=TLAT_MS,
            warmup_s=interval_s,
            cost_interval_s=interval_s,
        )
        print(f"GROUP / Qiu greedy:   {sim}")


if __name__ == "__main__":
    main()
