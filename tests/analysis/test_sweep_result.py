"""SweepResult edge cases: crossover detection and feasibility endpoints.

These exercise the result container in isolation — results are synthesized,
no LPs are solved — covering the paper-figure situations the accessors must
get right: classes that can never meet the goal, one-point sweeps, and ties.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.sweep import SweepResult
from repro.core.bounds import LowerBoundResult


def result(cost: Optional[float]) -> LowerBoundResult:
    if cost is None:
        return LowerBoundResult(
            properties=None, feasible=False, reason="cannot meet goal"
        )
    return LowerBoundResult(properties=None, feasible=True, lp_cost=cost)


def sweep(series: Dict[str, list], levels: list) -> SweepResult:
    out = SweepResult(levels=list(levels), classes=list(series))
    for cls, costs in series.items():
        out.results[cls] = {
            level: result(cost) for level, cost in zip(levels, costs)
        }
    return out


LEVELS = [0.9, 0.95, 0.99]


def test_all_infeasible_class_has_no_feasible_level():
    s = sweep({"never": [None, None, None], "ok": [1.0, 2.0, 3.0]}, LEVELS)
    assert s.max_feasible_level("never") is None
    assert s.series("never") == [None, None, None]
    assert s.bound("never", 0.9) is None
    assert s.max_feasible_level("ok") == 0.99


def test_unknown_class_behaves_like_infeasible():
    s = sweep({"ok": [1.0, 2.0, 3.0]}, LEVELS)
    assert s.max_feasible_level("missing") is None
    assert s.series("missing") == [None, None, None]


def test_single_level_sweep():
    s = sweep({"a": [5.0], "b": [7.0]}, [0.95])
    assert s.max_feasible_level("a") == 0.95
    assert s.series("b") == [7.0]
    # One point can never exhibit a flip.
    assert s.crossover("a", "b") is None


def test_crossover_detects_cost_flip():
    s = sweep({"a": [1.0, 2.0, 9.0], "b": [2.0, 3.0, 4.0]}, LEVELS)
    assert s.crossover("a", "b") == 0.99


def test_crossover_none_when_order_is_stable():
    s = sweep({"a": [1.0, 2.0, 3.0], "b": [2.0, 3.0, 4.0]}, LEVELS)
    assert s.crossover("a", "b") is None


def test_crossover_counts_curve_endpoint_as_flip():
    # 'a' is cheaper until it falls off the figure (infeasible at 0.99).
    s = sweep({"a": [1.0, 2.0, None], "b": [2.0, 3.0, 4.0]}, LEVELS)
    assert s.crossover("a", "b") == 0.99


def test_crossover_with_identical_bounds_never_flips():
    s = sweep({"a": [2.0, 3.0, 4.0], "b": [2.0, 3.0, 4.0]}, LEVELS)
    assert s.crossover("a", "b") is None


def test_crossover_tie_then_divergence_sets_baseline_late():
    # Equal at 0.9 (no ordering yet); first order appears at 0.95 and holds.
    s = sweep({"a": [2.0, 3.0, 5.0], "b": [2.0, 4.0, 6.0]}, LEVELS)
    assert s.crossover("a", "b") is None
    # ...but a later reversal against that late baseline is detected.
    s2 = sweep({"a": [2.0, 3.0, 7.0], "b": [2.0, 4.0, 6.0]}, LEVELS)
    assert s2.crossover("a", "b") == 0.99


def test_crossover_when_neither_class_ever_coexists():
    s = sweep({"a": [1.0, None, None], "b": [None, None, 4.0]}, LEVELS)
    # 'a' feasible alone, then 'b' feasible alone: orders are -1 then +1 —
    # that *is* a flip at the level where 'b' takes over.
    assert s.crossover("a", "b") == 0.99


def test_crossover_both_infeasible_everywhere():
    s = sweep({"a": [None, None, None], "b": [None, None, None]}, LEVELS)
    assert s.crossover("a", "b") is None
