"""Partial-failure tolerance through the analysis pipelines.

One poisoned task must never sink a sweep/selection/sensitivity batch:
healthy cells keep their results, the poisoned cell surfaces as a structured
:class:`TaskFailure`, and result objects carry the failures explicitly.
"""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import qos_sensitivity
from repro.analysis.sweep import SweepResult, qos_sweep
from repro.core.costs import CostModel
from repro.core.deployment import plan_deployment
from repro.core.selection import select_heuristic
from repro.runner import ExperimentRunner, RetryPolicy, TaskFailure
from repro.runner.tasks import BoundTask


@pytest.fixture()
def fail_label(monkeypatch):
    """Make BoundTask.run raise for labels containing a chosen substring."""
    real_run = BoundTask.run

    def arm(substring):
        def selective(self):
            if substring in self.label:
                raise RuntimeError(f"poisoned task {self.label!r}")
            return real_run(self)

        monkeypatch.setattr(BoundTask, "run", selective)

    return arm


def skip_runner() -> ExperimentRunner:
    return ExperimentRunner(policy=RetryPolicy(on_error="skip"))


def test_sweep_carries_one_failure_among_healthy_cells(web_problem, fail_label):
    fail_label("caching@0.99]")
    sweep = qos_sweep(
        web_problem,
        levels=[0.7, 0.99],
        classes=["caching", "replica-constrained"],
        runner=skip_runner(),
    )
    # Exactly the poisoned cell failed; every other cell has a real result.
    assert sweep.failed_cells() == [("caching", 0.99)]
    failure = sweep.failure("caching", 0.99)
    assert isinstance(failure, TaskFailure)
    assert "poisoned task" in failure.error
    assert sweep.bound("caching", 0.99) is None
    assert sweep.bound("caching", 0.7) is not None
    assert all(
        sweep.bound("replica-constrained", lvl) is not None for lvl in [0.7, 0.99]
    )


def test_sweep_failures_round_trip_through_dict(web_problem, fail_label):
    fail_label("caching@0.99]")
    sweep = qos_sweep(
        web_problem,
        levels=[0.7, 0.99],
        classes=["caching", "replica-constrained"],
        runner=skip_runner(),
    )
    clone = SweepResult.from_dict(sweep.to_dict())
    assert clone.failed_cells() == sweep.failed_cells()
    assert clone.failure("caching", 0.99).error == sweep.failure("caching", 0.99).error
    assert clone.series("replica-constrained") == sweep.series("replica-constrained")


def test_selection_skips_failed_class_but_still_recommends(web_problem, fail_label):
    fail_label("bound[caching]")
    report = select_heuristic(
        web_problem,
        classes=["storage-constrained", "caching"],
        do_rounding=False,
        runner=skip_runner(),
    )
    assert "caching" in report.failures
    assert "caching" not in report.results
    assert report.recommended == "storage-constrained"
    assert "failed" in report.render()


def test_selection_survives_failed_general_bound(web_problem, fail_label):
    fail_label("bound[general]")
    report = select_heuristic(
        web_problem,
        classes=["storage-constrained"],
        do_rounding=False,
        runner=skip_runner(),
    )
    assert "general" in report.failures
    assert not report.general.feasible
    assert report.general.status == "failed"
    # The recommendation stands, but the near-optimality qualifier cannot.
    assert report.recommended == "storage-constrained"
    assert not report.near_optimal


def test_sensitivity_points_flag_failed_classes(web_problem, fail_label):
    fail_label("bound[caching]")
    report = qos_sensitivity(
        web_problem,
        fractions=[0.8],
        classes=["storage-constrained", "caching"],
        runner=skip_runner(),
    )
    assert report.points[0].failed == ["caching"]
    assert report.failed_points() == [report.points[0]]
    assert "failed" in report.render()
    assert report.points[0].recommended == "storage-constrained"


def test_deployment_surfaces_phase2_failures(web_problem, fail_label):
    fail_label("bound[caching]")
    plan = plan_deployment(
        web_problem.topology,
        web_problem.demand,
        web_problem.goal,
        costs=CostModel.deployment_defaults(zeta=2000.0),
        classes=["storage-constrained", "caching"],
        do_rounding=False,
        warmup_intervals=1,
        runner=skip_runner(),
    )
    assert plan.feasible
    assert set(plan.failures) == {"caching"}
    assert plan.recommended == "storage-constrained"
