"""Tests for the sensitivity-analysis module."""

import dataclasses
import math

import pytest

from repro.analysis.sensitivity import (
    cost_ratio_sensitivity,
    qos_sensitivity,
    recommendation_stability,
    threshold_sensitivity,
)
from repro.core.goals import AverageLatencyGoal


CLASSES = ["storage-constrained", "replica-constrained"]


def test_threshold_sensitivity_sweeps(group_problem):
    report = threshold_sensitivity(
        group_problem, thresholds_ms=[120.0, 150.0, 300.0], classes=CLASSES
    )
    assert report.parameter == "tlat_ms"
    assert report.baseline_value == 150.0
    assert len(report.points) == 3
    assert report.baseline_recommendation in CLASSES


def test_threshold_sensitivity_requires_qos_goal(group_problem):
    bad = dataclasses.replace(group_problem, goal=AverageLatencyGoal(tavg_ms=100.0))
    with pytest.raises(TypeError):
        threshold_sensitivity(bad, [150.0])


def test_qos_sensitivity_monotone_bounds(group_problem):
    report = qos_sensitivity(group_problem, fractions=[0.8, 0.9, 0.95], classes=CLASSES)
    for cls in CLASSES:
        series = [p.bounds[cls] for p in report.points if p.bounds[cls] is not None]
        assert series == sorted(series)


def test_cost_ratio_flips_recommendation(group_problem):
    """With storage nearly free the storage-hungry class wins; with storage
    expensive the replica-constrained class wins — the ratio must matter."""
    report = cost_ratio_sensitivity(
        group_problem, ratios=[0.001, 1.0, 1000.0], classes=CLASSES
    )
    recs = {p.value: p.recommended for p in report.points}
    assert recs[1000.0] == "replica-constrained"
    # At some ratio the choice differs (or at least bounds reorder): the
    # sweep must not be a constant function of the ratio.
    bounds_spread = {
        p.value: p.bounds["storage-constrained"] for p in report.points
    }
    assert bounds_spread[0.001] < bounds_spread[1000.0]


def test_cost_ratio_requires_positive_beta(group_problem):
    from repro.core.costs import CostModel

    zero_beta = dataclasses.replace(group_problem, costs=CostModel(alpha=1.0, beta=0.0))
    with pytest.raises(ValueError):
        cost_ratio_sensitivity(zero_beta, [1.0])


def test_stable_range_and_flips(group_problem):
    report = qos_sensitivity(group_problem, fractions=[0.8, 0.9], classes=CLASSES)
    lo, hi = report.stable_range()
    if not math.isnan(lo):
        assert lo <= hi
    assert isinstance(report.flips(), list)


def test_render_contains_values(group_problem):
    report = threshold_sensitivity(group_problem, [150.0], classes=CLASSES)
    text = report.render()
    assert "tlat_ms" in text
    assert "150" in text


def test_recommendation_stability_bounds(group_problem):
    reports = [
        qos_sensitivity(group_problem, fractions=[0.85, 0.9], classes=CLASSES),
        threshold_sensitivity(group_problem, [140.0, 160.0], classes=CLASSES),
    ]
    stability = recommendation_stability(reports)
    assert 0.0 <= stability <= 1.0
    assert recommendation_stability([]) == 1.0
