"""Tests for sweeps, tables and ASCII charts."""

import pytest

from repro.analysis.plot import ascii_chart
from repro.analysis.report import render_csv, render_series_table, render_sweep_table
from repro.analysis.sweep import qos_sweep


@pytest.fixture(scope="module")
def sweep(group_problem_module):
    return qos_sweep(
        group_problem_module,
        levels=[0.8, 0.9],
        classes=["storage-constrained", "replica-constrained"],
    )


@pytest.fixture(scope="module")
def group_problem_module(small_topology, group_demand):
    from repro.core.costs import CostModel
    from repro.core.goals import QoSGoal
    from repro.core.problem import MCPerfProblem

    return MCPerfProblem(
        topology=small_topology,
        demand=group_demand,
        goal=QoSGoal(tlat_ms=150.0, fraction=0.95),
        costs=CostModel.paper_defaults(),
    )


def test_sweep_computes_all_cells(sweep):
    assert sweep.levels == [0.8, 0.9]
    assert set(sweep.classes) == {"storage-constrained", "replica-constrained"}
    for cls in sweep.classes:
        for level in sweep.levels:
            assert sweep.results[cls][level] is not None


def test_sweep_bounds_monotone(sweep):
    for cls in sweep.classes:
        series = [b for b in sweep.series(cls) if b is not None]
        assert series == sorted(series)


def test_sweep_series_and_max_level(sweep):
    for cls in sweep.classes:
        assert len(sweep.series(cls)) == 2
        assert sweep.max_feasible_level(cls) in (None, 0.8, 0.9)


def test_sweep_requires_qos_goal(group_problem_module):
    import dataclasses

    from repro.core.goals import AverageLatencyGoal

    bad = dataclasses.replace(
        group_problem_module, goal=AverageLatencyGoal(tavg_ms=100.0)
    )
    with pytest.raises(TypeError):
        qos_sweep(bad, levels=[0.9])


def test_render_sweep_table(sweep):
    text = render_sweep_table(sweep, title="demo")
    assert "demo" in text
    assert "80%" in text and "90%" in text
    assert "storage-constrained" in text


def test_render_sweep_table_with_feasible_costs(group_problem_module):
    s = qos_sweep(
        group_problem_module,
        levels=[0.8],
        classes=["replica-constrained"],
        do_rounding=True,
    )
    text = render_sweep_table(s, feasible_costs=True)
    assert "/" in text


def test_render_csv(sweep):
    text = render_csv(sweep)
    lines = text.splitlines()
    assert lines[0] == "class,qos_level,lower_bound,feasible_cost"
    assert len(lines) == 1 + 2 * 2


def test_render_series_table():
    text = render_series_table(
        "t", ["qos", "cost"], [[0.95, 100.0], [0.99, None]]
    )
    assert "qos" in text
    assert "—" in text


def test_ascii_chart_renders_markers():
    chart = ascii_chart(
        {"a": [1.0, 2.0, 3.0], "b": [3.0, None, 1.0]},
        x_labels=["95", "99", "99.9"],
        title="demo",
    )
    assert "demo" in chart
    assert "o=a" in chart and "x=b" in chart
    assert "┤" in chart


def test_ascii_chart_empty_series():
    chart = ascii_chart({"a": [None, None]}, x_labels=["1", "2"])
    assert "no feasible points" in chart


def test_ascii_chart_flat_series():
    chart = ascii_chart({"a": [2.0, 2.0]}, x_labels=["1", "2"])
    assert "o=a" in chart


def test_ascii_chart_validates_size():
    with pytest.raises(ValueError):
        ascii_chart({"a": [1.0]}, x_labels=["1"], height=1)


def test_crossover_detects_flip():
    from repro.analysis.sweep import SweepResult
    from repro.core.bounds import LowerBoundResult
    from repro.core.properties import HeuristicProperties

    def res(cost):
        if cost is None:
            return LowerBoundResult(properties=HeuristicProperties(), feasible=False)
        return LowerBoundResult(
            properties=HeuristicProperties(), feasible=True, lp_cost=cost
        )

    sweep = SweepResult(levels=[0.9, 0.95, 0.99], classes=["a", "b"])
    sweep.results["a"] = {0.9: res(10.0), 0.95: res(20.0), 0.99: res(40.0)}
    sweep.results["b"] = {0.9: res(15.0), 0.95: res(18.0), 0.99: res(25.0)}
    assert sweep.crossover("a", "b") == 0.95  # a cheaper, then b cheaper


def test_crossover_none_when_order_stable():
    from repro.analysis.sweep import SweepResult
    from repro.core.bounds import LowerBoundResult
    from repro.core.properties import HeuristicProperties

    def res(cost):
        return LowerBoundResult(
            properties=HeuristicProperties(), feasible=True, lp_cost=cost
        )

    sweep = SweepResult(levels=[0.9, 0.95], classes=["a", "b"])
    sweep.results["a"] = {0.9: res(10.0), 0.95: res(20.0)}
    sweep.results["b"] = {0.9: res(30.0), 0.95: res(40.0)}
    assert sweep.crossover("a", "b") is None


def test_crossover_infeasibility_counts_as_flip():
    from repro.analysis.sweep import SweepResult
    from repro.core.bounds import LowerBoundResult
    from repro.core.properties import HeuristicProperties

    def res(cost):
        if cost is None:
            return LowerBoundResult(properties=HeuristicProperties(), feasible=False)
        return LowerBoundResult(
            properties=HeuristicProperties(), feasible=True, lp_cost=cost
        )

    sweep = SweepResult(levels=[0.9, 0.99], classes=["cheap", "dies"])
    sweep.results["cheap"] = {0.9: res(30.0), 0.99: res(40.0)}
    sweep.results["dies"] = {0.9: res(10.0), 0.99: res(None)}
    assert sweep.crossover("cheap", "dies") == 0.99
