"""Cross-module integration tests.

The scientifically load-bearing checks: a deployed heuristic that meets the
performance goal can never cost less than its class's lower bound (when the
evaluation interval is chosen per Theorems 2/3 and the accounting matches),
and the Figure-1 class orderings emerge on synthetic WEB/GROUP workloads.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.bounds import compute_lower_bound
from repro.core.classes import get_class
from repro.core.costs import CostModel
from repro.core.goals import GoalScope, QoSGoal
from repro.core.intervals import per_access_interval
from repro.core.problem import MCPerfProblem
from repro.core.properties import HeuristicProperties, StorageConstraint
from repro.heuristics.caching import LRUCaching
from repro.heuristics.greedy_global import GreedyGlobalPlacement
from repro.simulator.engine import simulate
from repro.simulator.metrics import heuristic_cost
from repro.topology.generators import as_level_topology, star_topology
from repro.workload.demand import DemandMatrix
from repro.workload.generators import group_workload, web_workload
from tests.conftest import make_trace


def test_periodic_heuristic_cost_respects_class_bound():
    """GreedyGlobal at period 2*delta, SC accounting, must cost >= the
    SC+reactive bound computed at delta (Theorem 2)."""
    topo = as_level_topology(num_nodes=8, seed=3)
    trace = web_workload(num_nodes=8, num_objects=15, requests_scale=0.03, seed=4)
    delta_s = trace.duration_s / 16  # 16 intervals
    period_s = 2 * delta_s
    demand = DemandMatrix.from_trace(trace, num_intervals=16)
    fraction = 0.8

    heuristic = GreedyGlobalPlacement(capacity=4, period_s=period_s, tlat_ms=150.0)
    sim = simulate(
        topo, trace, heuristic, tlat_ms=150.0,
        cost_interval_s=delta_s, warmup_s=2 * delta_s,
    )
    assert sim.meets(fraction, per_user=True), "pick a goal the heuristic meets"
    sim_cost = heuristic_cost(
        sim, mode="sc", num_nodes=topo.num_nodes - 1, num_intervals=16, capacity=4
    )

    problem = MCPerfProblem(
        topology=topo,
        demand=demand,
        goal=QoSGoal(tlat_ms=150.0, fraction=fraction),
        costs=CostModel.paper_defaults(),
        warmup_intervals=2,
    )
    bound = compute_lower_bound(
        problem,
        HeuristicProperties(
            storage_constraint=StorageConstraint.UNIFORM, reactive=True
        ),
        do_rounding=False,
    )
    assert bound.feasible
    assert bound.lp_cost <= sim_cost.total + 1e-6


def test_per_access_caching_cost_respects_bound_at_theorem3_interval():
    """A micro trace where the caching bound at the Theorem-3 interval must
    lower-bound the simulated LRU cost."""
    topo = star_topology(num_leaves=2, hub_latency_ms=200.0)
    trace = make_trace(
        [(10, 1, 0), (30, 1, 0), (50, 1, 1), (70, 1, 1), (40, 2, 0), (80, 2, 0)],
        duration_s=100.0,
        num_nodes=3,
        num_objects=2,
    )
    delta = per_access_interval(trace)
    num_intervals = int(np.ceil(trace.duration_s / delta))
    demand = DemandMatrix.from_trace(trace, num_intervals=num_intervals)
    fraction = 0.5

    capacity = 1
    sim = simulate(topo, trace, LRUCaching(capacity), tlat_ms=150.0, cost_interval_s=delta)
    assert sim.meets(fraction, per_user=True)
    sim_cost = heuristic_cost(
        sim, mode="sc", num_nodes=2, num_intervals=num_intervals, capacity=capacity
    )

    problem = MCPerfProblem(
        topology=topo,
        demand=demand,
        goal=QoSGoal(tlat_ms=150.0, fraction=fraction),
    )
    bound = compute_lower_bound(
        problem, get_class("caching").properties, do_rounding=False
    )
    assert bound.feasible
    assert bound.lp_cost <= sim_cost.total + 1e-6


def test_web_class_ordering_matches_paper():
    """WEB at paper-like shape: general <= storage-constrained <=
    replica-constrained (Figure 1 left).

    The paper's relationship needs per-node working sets well below the
    object count and an origin that covers few sites, so this test uses a
    20-node topology with 80 objects rather than the small shared fixture.
    """
    topo = as_level_topology(num_nodes=20, seed=2)
    trace = web_workload(
        num_nodes=20, num_objects=80, populations=topo.populations,
        requests_scale=0.03, seed=1,
    )
    demand = DemandMatrix.from_trace(trace, num_intervals=8)
    problem = MCPerfProblem(
        topology=topo,
        demand=demand,
        goal=QoSGoal(tlat_ms=150.0, fraction=0.95),
        warmup_intervals=1,
    )
    general = compute_lower_bound(problem, do_rounding=False).lp_cost
    sc = compute_lower_bound(
        problem, get_class("storage-constrained").properties, do_rounding=False
    ).lp_cost
    rc = compute_lower_bound(
        problem, get_class("replica-constrained").properties, do_rounding=False
    ).lp_cost
    assert general <= sc + 1e-6
    assert sc <= rc + 1e-6  # the heavy tail punishes uniform replication


def test_group_replica_constrained_near_general(group_problem):
    """GROUP: the replica-constrained bound nearly overlaps the general one,
    while storage-constrained is substantially higher (Figure 1 right)."""
    general = compute_lower_bound(group_problem, do_rounding=False).lp_cost
    rc = compute_lower_bound(
        group_problem, get_class("replica-constrained").properties, do_rounding=False
    ).lp_cost
    sc = compute_lower_bound(
        group_problem, get_class("storage-constrained").properties, do_rounding=False
    ).lp_cost
    assert rc <= 1.6 * general
    assert sc >= 1.2 * rc


def test_rounding_gap_stays_small_on_realistic_instances(web_problem):
    """The paper reports close-to-tight rounding (<~10%); allow some slack
    on scaled-down instances."""
    for name in ["general", "storage-constrained", "replica-constrained"]:
        result = compute_lower_bound(web_problem, get_class(name).properties)
        if result.feasible and result.gap is not None:
            assert result.gap < 0.6, f"{name} gap {result.gap}"


def test_selection_recommends_class_whose_heuristic_meets_goal():
    """End-to-end §6.1: the recommended class's deployed heuristic meets the
    goal in simulation at some configuration."""
    topo = as_level_topology(num_nodes=8, seed=3)
    trace = web_workload(num_nodes=8, num_objects=15, requests_scale=0.03, seed=4)
    demand = DemandMatrix.from_trace(trace, num_intervals=16)
    problem = MCPerfProblem(
        topology=topo,
        demand=demand,
        goal=QoSGoal(tlat_ms=150.0, fraction=0.8),
        warmup_intervals=2,
    )
    from repro.core.selection import select_heuristic

    report = select_heuristic(
        problem,
        classes=["storage-constrained", "replica-constrained"],
        do_rounding=False,
    )
    assert report.recommended is not None
    sim = simulate(
        topo,
        trace,
        GreedyGlobalPlacement(capacity=6, period_s=trace.duration_s / 8),
        tlat_ms=150.0,
        warmup_s=2 * trace.duration_s / 16,
    )
    assert sim.meets(0.8, per_user=True)
