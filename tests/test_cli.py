"""End-to-end tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.topology.io import load_topology
from repro.workload.io import load_trace


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """A topology + WEB trace written by the CLI itself."""
    root = tmp_path_factory.mktemp("cli")
    topo_path = str(root / "topo.json")
    trace_path = str(root / "trace.json")
    assert main(["topology", "--nodes", "10", "--seed", "5", "-o", topo_path]) == 0
    assert (
        main(
            [
                "workload", "web",
                "--nodes", "10", "--objects", "25", "--scale", "0.05",
                "--seed", "2", "--topology", topo_path, "-o", trace_path,
            ]
        )
        == 0
    )
    return topo_path, trace_path


def problem_flags(topo_path, trace_path, qos="0.9"):
    return ["-t", topo_path, "-w", trace_path, "--qos", qos, "--intervals", "8", "--warmup", "1"]


def test_topology_and_workload_files_valid(artifacts):
    topo_path, trace_path = artifacts
    topo = load_topology(topo_path)
    trace = load_trace(trace_path)
    assert topo.num_nodes == 10
    assert trace.num_nodes == 10
    assert trace.num_objects == 25


def test_workload_nodes_default_to_topology_size(artifacts, tmp_path):
    topo_path, _ = artifacts
    out_path = str(tmp_path / "defaulted.json")
    rc = main(
        ["workload", "web", "--objects", "25", "--scale", "0.05",
         "--topology", topo_path, "-o", out_path]
    )
    assert rc == 0
    assert load_trace(out_path).num_nodes == 10


def test_bounds_human_output(artifacts, capsys):
    topo_path, trace_path = artifacts
    rc = main(["bounds", *problem_flags(topo_path, trace_path), "--class", "general", "--no-rounding"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "bound=" in out


def test_bounds_json_output(artifacts, capsys):
    topo_path, trace_path = artifacts
    rc = main(
        ["bounds", *problem_flags(topo_path, trace_path), "--class", "storage-constrained", "--json"]
    )
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert data["class"] == "storage-constrained"
    assert data["feasible"]
    assert data["lower_bound"] > 0
    assert data["feasible_cost"] >= data["lower_bound"] - 1e-6


def test_bounds_infeasible_exit_code(artifacts, capsys):
    topo_path, trace_path = artifacts
    rc = main(
        ["bounds", *problem_flags(topo_path, trace_path, qos="0.999999"), "--class", "caching"]
    )
    assert rc == 1


def test_select_json(artifacts, capsys):
    topo_path, trace_path = artifacts
    rc = main(
        [
            "select", *problem_flags(topo_path, trace_path), "--json", "--no-rounding",
            "--classes", "storage-constrained", "replica-constrained",
        ]
    )
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert data["recommended"] in ("storage-constrained", "replica-constrained")
    assert set(data["bounds"]) == {"storage-constrained", "replica-constrained"}


def test_deploy(artifacts, capsys):
    topo_path, trace_path = artifacts
    rc = main(
        ["deploy", *problem_flags(topo_path, trace_path), "--zeta", "2000", "--json"]
    )
    out = capsys.readouterr().out
    data = json.loads(out)
    assert rc == 0
    assert data["feasible"]
    assert len(data["open_nodes"]) >= 1
    assert data["recommended"]


def test_simulate_each_heuristic(artifacts, capsys):
    topo_path, trace_path = artifacts
    for name in ["lru", "lfu", "coop-lru", "greedy-global", "qiu", "random"]:
        rc = main(
            [
                "simulate", *problem_flags(topo_path, trace_path, qos="0.2"),
                "--heuristic", name, "--capacity", "10", "--replicas", "2", "--json",
            ]
        )
        data = json.loads(capsys.readouterr().out)
        assert "qos" in data and "total_cost" in data
        assert rc in (0, 1)


def test_simulate_exit_code_reflects_goal(artifacts, capsys):
    topo_path, trace_path = artifacts
    rc = main(
        [
            "simulate", *problem_flags(topo_path, trace_path, qos="0.9999"),
            "--heuristic", "lru", "--capacity", "1",
        ]
    )
    assert rc == 1
    assert "MISSES" in capsys.readouterr().out


def test_classes_listing(capsys):
    assert main(["classes"]) == 0
    out = capsys.readouterr().out
    assert "caching" in out
    assert "Route" in out


def test_sweep_command(artifacts, capsys, tmp_path):
    topo_path, trace_path = artifacts
    csv_path = str(tmp_path / "sweep.csv")
    rc = main(
        [
            "sweep", *problem_flags(topo_path, trace_path),
            "--levels", "0.8", "0.9",
            "--classes", "storage-constrained", "replica-constrained",
            "--csv", csv_path,
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "storage-constrained" in out
    import pathlib

    csv_text = pathlib.Path(csv_path).read_text()
    assert csv_text.startswith("class,qos_level")


def test_sweep_command_json(artifacts, capsys):
    topo_path, trace_path = artifacts
    rc = main(
        [
            "sweep", *problem_flags(topo_path, trace_path),
            "--levels", "0.8", "--classes", "general", "--json",
        ]
    )
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert data["levels"] == [0.8]
    assert "general" in data["bounds"]


def test_simulate_with_faults_json(artifacts, capsys):
    topo_path, trace_path = artifacts
    args = [
        "simulate", *problem_flags(topo_path, trace_path, qos="0.2"),
        "--heuristic", "coop-lru", "--capacity", "10",
        "--faults", "poisson:mtbf=21600,mttr=1800", "--fault-seed", "11",
        "--heal", "--json",
    ]
    rc = main(args)
    assert rc in (0, 1)
    data = json.loads(capsys.readouterr().out)
    assert "availability" in data
    assert 0.0 <= data["availability"] <= 1.0
    assert data["node_downtime_s"] > 0
    assert data["healing_cost"] == data["healing_creations"] * 1.0
    # Determinism through the CLI: same --fault-seed, same result.
    assert main(args) == rc
    assert json.loads(capsys.readouterr().out) == data


def test_simulate_with_faults_text_report(artifacts, capsys):
    topo_path, trace_path = artifacts
    rc = main(
        [
            "simulate", *problem_flags(topo_path, trace_path, qos="0.2"),
            "--heuristic", "lru", "--capacity", "10",
            "--faults", "crash:node=3,at=10000,down=20000",
        ]
    )
    assert rc in (0, 1)
    out = capsys.readouterr().out
    assert "availability" in out
    assert "node downtime" in out


def test_simulate_rejects_bad_fault_spec(artifacts):
    topo_path, trace_path = artifacts
    with pytest.raises(ValueError, match="unknown fault clause"):
        main(
            [
                "simulate", *problem_flags(topo_path, trace_path),
                "--heuristic", "lru", "--faults", "meteor:at=1",
            ]
        )


def test_sweep_runner_flags_and_warm_cache(artifacts, capsys, tmp_path):
    topo_path, trace_path = artifacts
    args = [
        "sweep", *problem_flags(topo_path, trace_path),
        "--levels", "0.8", "0.9", "--classes", "caching", "replica-constrained",
        "--json", "--jobs", "2",
        "--cache-dir", str(tmp_path / "cache"), "--run-dir", str(tmp_path / "runs"),
    ]
    assert main(args) == 0
    captured = capsys.readouterr()
    cold = json.loads(captured.out)  # stdout must stay pure JSON
    assert "executed=4" in captured.err
    assert "cache_hits=0" in captured.err

    assert main(args) == 0
    captured = capsys.readouterr()
    assert json.loads(captured.out) == cold
    assert "executed=0" in captured.err
    assert "cache_hits=4" in captured.err

    run_dirs = sorted((tmp_path / "runs").iterdir())
    assert len(run_dirs) == 2
    warm_manifest = json.loads((run_dirs[-1] / "manifest.json").read_text())
    assert warm_manifest["executed"] == 0
    assert warm_manifest["cache_hits"] == 4


def test_sweep_jobs_matches_serial(artifacts, capsys):
    topo_path, trace_path = artifacts
    base = [
        "sweep", *problem_flags(topo_path, trace_path),
        "--levels", "0.8", "0.9", "--classes", "caching", "--json",
    ]
    assert main(base) == 0
    serial = json.loads(capsys.readouterr().out)
    assert main([*base, "--jobs", "4"]) == 0
    parallel = json.loads(capsys.readouterr().out)
    assert parallel == serial


def test_simulate_cache_round_trip(artifacts, capsys, tmp_path):
    topo_path, trace_path = artifacts
    args = [
        "simulate", *problem_flags(topo_path, trace_path, qos="0.2"),
        "--heuristic", "lru", "--capacity", "10", "--json",
        "--cache-dir", str(tmp_path / "cache"),
    ]
    rc = main(args)
    captured = capsys.readouterr()
    cold = json.loads(captured.out)
    assert "executed=1" in captured.err
    assert main(args) == rc
    captured = capsys.readouterr()
    assert json.loads(captured.out) == cold
    assert "cache_hits=1" in captured.err


def test_cache_stats_and_clear(artifacts, capsys, tmp_path):
    topo_path, trace_path = artifacts
    cache_dir = str(tmp_path / "cache")
    assert main(
        [
            "bounds", *problem_flags(topo_path, trace_path),
            "--class", "general", "--no-rounding", "--json",
            "--cache-dir", cache_dir,
        ]
    ) == 0
    capsys.readouterr()

    assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["entries"] == 1
    assert stats["kinds"] == {"bound": 1}
    assert stats["bytes"] > 0

    assert main(["cache", "clear", "--cache-dir", cache_dir, "--json"]) == 0
    assert json.loads(capsys.readouterr().out) == {"removed": 1}
    assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["entries"] == 0


def test_cache_stats_human_output(capsys, tmp_path):
    assert main(["cache", "stats", "--cache-dir", str(tmp_path / "empty")]) == 0
    out = capsys.readouterr().out
    assert "0 entries" in out


def test_resilience_flags_accepted(artifacts, capsys):
    topo_path, trace_path = artifacts
    rc = main(
        [
            "bounds", *problem_flags(topo_path, trace_path),
            "--class", "general", "--no-rounding", "--json",
            "--task-timeout", "60", "--retries", "1", "--on-error", "skip",
        ]
    )
    assert rc == 0
    assert json.loads(capsys.readouterr().out)["feasible"]


def test_chaos_sweep_then_resume_converges(artifacts, capsys, tmp_path, monkeypatch):
    """The acceptance scenario: a partial run + --resume finishes the job."""
    topo_path, trace_path = artifacts
    base = [
        "sweep", *problem_flags(topo_path, trace_path),
        "--levels", "0.8", "0.9",
        "--classes", "storage-constrained", "replica-constrained",
        "--json", "--on-error", "skip",
        "--cache-dir", str(tmp_path / "cache"), "--run-dir", str(tmp_path / "runs"),
    ]
    # Seed 0 deterministically fails 2 of these 4 task labels at fail=0.5.
    monkeypatch.setenv("REPRO_CHAOS", "fail=0.5,seed=0")
    assert main(base) == 0
    captured = capsys.readouterr()
    partial = json.loads(captured.out)
    assert len(partial["failed_cells"]) == 2
    assert "failed=2" in captured.err

    run1 = sorted((tmp_path / "runs").iterdir())[-1]
    manifest = json.loads((run1 / "manifest.json").read_text())
    assert manifest["ok"] == 2 and manifest["failed"] == 2

    monkeypatch.delenv("REPRO_CHAOS")
    assert main([*base, "--resume", str(run1)]) == 0
    captured = capsys.readouterr()
    final = json.loads(captured.out)
    assert final["failed_cells"] == []
    # Only the two failed tasks re-executed; ok results were served.
    assert "executed=2" in captured.err
    assert "resumed=2" in captured.err
    assert "failed=0" in captured.err

    run2 = sorted((tmp_path / "runs").iterdir())[-1]
    final_manifest = json.loads((run2 / "manifest.json").read_text())
    assert final_manifest["ok"] == 4
    assert final_manifest["failed"] == 0
    assert final_manifest["pending"] == 0


def test_verbosity_flags_accepted(artifacts, capsys):
    topo_path, trace_path = artifacts
    assert main(["-q", "classes"]) == 0
    capsys.readouterr()
    assert main(["-vv", "classes"]) == 0
    capsys.readouterr()


def test_python_dash_m_entry_point(artifacts, tmp_path):
    import subprocess
    import sys
    from pathlib import Path

    repo_src = Path(__file__).resolve().parents[1] / "src"
    topo_path, trace_path = artifacts
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro",
            "bounds", "-t", topo_path, "-w", trace_path,
            "--qos", "0.9", "--class", "general", "--no-rounding", "--json",
        ],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(repo_src), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["feasible"] is True


# -- audit flag and the `repro audit` post-hoc command ------------------------


def test_bounds_audit_full_reports_ok(artifacts, capsys):
    topo_path, trace_path = artifacts
    rc = main(
        ["bounds", *problem_flags(topo_path, trace_path),
         "--class", "storage-constrained", "--audit", "full"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "audit[full]" in out
    assert "OK" in out


def test_bounds_audit_json_carries_report(artifacts, capsys):
    topo_path, trace_path = artifacts
    rc = main(
        ["bounds", *problem_flags(topo_path, trace_path),
         "--class", "storage-constrained", "--audit", "fast", "--json"]
    )
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert data["audit"] is not None
    assert data["audit"]["violations"] == []
    assert "placement" in data["audit"]["checks"]


def sweep_with_run_dir(artifacts, tmp_path, name):
    topo_path, trace_path = artifacts
    run_root = str(tmp_path / name)
    rc = main(
        ["sweep", *problem_flags(topo_path, trace_path),
         "--levels", "0.8", "0.9",
         "--classes", "storage-constrained",
         "--rounding", "--audit", "fast", "--run-dir", run_root]
    )
    assert rc == 0
    import pathlib

    [run_dir] = [p for p in pathlib.Path(run_root).iterdir() if p.is_dir()]
    return run_dir


def test_audit_command_clean_run_exits_zero(artifacts, capsys, tmp_path):
    topo_path, trace_path = artifacts
    run_dir = sweep_with_run_dir(artifacts, tmp_path, "clean")
    capsys.readouterr()
    rc = main(["audit", str(run_dir), "-t", topo_path, "-w", trace_path, "--json"])
    out = capsys.readouterr().out
    data = json.loads(out)
    assert rc == 0, out
    assert data["violations"] == []
    assert "monotonicity" in data["checks"]


def test_audit_command_flags_corrupted_payload(artifacts, capsys, tmp_path):
    run_dir = sweep_with_run_dir(artifacts, tmp_path, "corrupt")
    capsys.readouterr()
    manifest = json.loads((run_dir / "manifest.json").read_text())
    rec = next(r for r in manifest["task_records"] if r["kind"] == "bound" and r["file"])
    body = json.loads((run_dir / rec["file"]).read_text())
    body["payload"]["lp_cost"] = body["payload"]["lp_cost"] * 5.0 + 1.0
    (run_dir / rec["file"]).write_text(json.dumps(body))

    rc = main(["audit", str(run_dir)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "bound-gate" in out


def test_audit_command_requires_both_inputs(artifacts, capsys, tmp_path):
    run_dir = sweep_with_run_dir(artifacts, tmp_path, "lonely")
    topo_path, _ = artifacts
    capsys.readouterr()
    rc = main(["audit", str(run_dir), "-t", topo_path])
    assert rc == 2


# -- zones and continuous placement -----------------------------------------


@pytest.fixture(scope="module")
def zoned_topology_path(tmp_path_factory):
    """A 6-node topology with three explicit zones, written by the CLI."""
    path = str(tmp_path_factory.mktemp("zoned") / "topo.json")
    rc = main(
        ["topology", "--nodes", "6", "--seed", "5",
         "--zones", "0+1;2+3;4+5", "-o", path]
    )
    assert rc == 0
    return path


def test_topology_zones_flag_persists_the_zone_map(zoned_topology_path):
    topo = load_topology(zoned_topology_path)
    assert topo.has_zones
    assert topo.num_zones == 3
    assert topo.zone_nodes(0) == [0, 1]


def test_topology_bad_zones_spec_exits_two(tmp_path, capsys):
    rc = main(
        ["topology", "--nodes", "6", "--zones", "0+1;2",
         "-o", str(tmp_path / "t.json")]
    )
    assert rc == 2
    assert "zone" in capsys.readouterr().err


def continuous_flags(topo_path, *extra):
    return [
        "continuous", "-t", topo_path, "--heuristic", "qiu",
        "--epochs", "2", "--epoch-length", "1800", "--requests", "300",
        "--objects", "8", "--replicas", "1", "--tlat", "80", "--seed", "3",
        *extra,
    ]


def test_continuous_json_reports_epochs_and_migration(zoned_topology_path, capsys):
    rc = main([*continuous_flags(zoned_topology_path), "--json"])
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert data["epochs"] == 2
    assert data["reads"] > 0
    assert data["migration_bytes"] > 0
    assert data["slo_target"] is None
    assert len(data["epoch_reports"]) == 2
    assert {"serve_cost", "migration_bytes", "availability"} <= set(
        data["epoch_reports"][0]
    )


def test_continuous_slo_violation_exits_one(zoned_topology_path, capsys):
    rc = main(
        [*continuous_flags(
            zoned_topology_path,
            "--faults", "zonepart:zone=1,at=300,down=900",
            "--slo", "0.999",
        ), "--json"]
    )
    data = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert data["slo_target"] == 0.999
    assert data["slo_violations"] >= 1
    assert data["slo_violation_epochs"]


def test_continuous_text_report_prints_verdict(zoned_topology_path, capsys):
    rc = main(
        continuous_flags(
            zoned_topology_path,
            "--faults", "zonepart:zone=1,at=300,down=900",
            "--slo", "0.999",
        )
    )
    out = capsys.readouterr().out
    assert rc == 1
    assert "epoch 0:" in out
    assert "SLO VIOLATED" in out
    assert "VIOLATES" in out


def test_continuous_zone_clause_needs_zone_map(artifacts, capsys):
    topo_path, _ = artifacts
    rc = main(
        continuous_flags(topo_path, "--faults", "zoneout:mtbf=7200,mttr=900")
    )
    assert rc == 2
    assert "zone map" in capsys.readouterr().err


def test_continuous_zones_override_applies(artifacts, capsys):
    """--zones grafts a map onto an unzoned topology file."""
    topo_path, _ = artifacts
    rc = main(
        [*continuous_flags(
            topo_path, "--zones", "3",
            "--faults", "zoneout:mtbf=7200,mttr=900",
        ), "--json"]
    )
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert data["epochs"] == 2


def test_continuous_bad_zones_spec_exits_two(zoned_topology_path, capsys):
    rc = main(continuous_flags(zoned_topology_path, "--zones", "0+1;2"))
    assert rc == 2
    assert "bad --zones" in capsys.readouterr().err


def test_continuous_results_cache_across_invocations(zoned_topology_path, capsys, tmp_path):
    cache = str(tmp_path / "cache")
    flags = [*continuous_flags(zoned_topology_path), "--cache-dir", cache, "--json"]
    assert main(flags) == 0
    first = json.loads(capsys.readouterr().out)
    assert main(flags) == 0
    captured = capsys.readouterr()
    assert json.loads(captured.out) == first
    assert "cache" in captured.err
