"""on_adopt handover: taking over a run with pre-existing replicas.

The handover path is exercised by the adaptive driver (heuristic switches)
and by the healing policy (metadata resync after repair mutations); these
tests pin its contract for each heuristic family.
"""

import numpy as np

from repro.heuristics.caching import LFUCaching, LRUCaching
from repro.heuristics.greedy_global import GreedyGlobalPlacement
from repro.heuristics.qiu import QiuGreedyPlacement
from repro.simulator.engine import SimulationContext
from repro.simulator.state import ReplicaState
from repro.topology.generators import line_topology
from tests.conftest import make_trace


def handover_ctx(num_objects=6, preplaced=((1, 0), (1, 1), (2, 3))):
    topo = line_topology(num_nodes=4, hop_latency_ms=100.0)
    trace = make_trace([(10, 1, 0)], num_nodes=4, num_objects=num_objects)
    state = ReplicaState(topo, num_objects)
    ctx = SimulationContext(topo, trace, state, tlat_ms=150.0)
    for node, obj in preplaced:
        assert state.create(node, obj, 0.0)
    return ctx


def test_lru_adopts_preexisting_replicas_as_cache_entries():
    ctx = handover_ctx()
    lru = LRUCaching(capacity=4)
    lru.on_adopt(ctx)
    assert set(lru._lru[1]) == {0, 1}
    assert set(lru._lru[2]) == {3}
    # Replicas survive the handover (capacity not exceeded).
    assert ctx.state.contents(1) == {0, 1}


def test_lfu_adopts_and_keeps_frequency_counts():
    ctx = handover_ctx()
    lfu = LFUCaching(capacity=4)
    lfu.on_start(ctx)
    lfu._counts[1][5] = 7  # pre-handover popularity knowledge
    lfu.on_adopt(ctx)
    assert lfu._cached[1] == {0, 1}
    assert lfu._cached[2] == {3}
    assert lfu._counts[1][5] == 7  # counts survive the handover


def test_lfu_adopt_evicts_overflow_keeping_warmest():
    ctx = handover_ctx(preplaced=((1, 0), (1, 1), (1, 2)))
    lfu = LFUCaching(capacity=2)
    lfu.on_start(ctx)
    lfu._counts[1] = {0: 1, 1: 9, 2: 5}
    lfu.on_adopt(ctx)
    assert lfu._cached[1] == {1, 2}  # the two warmest survive
    assert ctx.state.contents(1) == {1, 2}  # the cold one was dropped


def test_greedy_global_on_adopt_preserves_demand_history():
    ctx = handover_ctx()
    greedy = GreedyGlobalPlacement(capacity=2, period_s=900.0, tlat_ms=150.0)
    greedy.on_start(ctx)
    demand = np.zeros((4, 6))
    demand[1, 0] = 5.0
    greedy.on_interval(0, ctx, demand, None)
    assert greedy._history  # accumulated one period
    history_before = [h.copy() for h in greedy._history]
    last_before = greedy._last_demand.copy()

    greedy.on_adopt(ctx)  # e.g. a healing resync mid-run

    assert len(greedy._history) == len(history_before)
    for kept, orig in zip(greedy._history, history_before):
        assert np.array_equal(kept, orig)
    assert np.array_equal(greedy._last_demand, last_before)


def test_greedy_global_reconciles_preplaced_replicas_at_next_interval():
    ctx = handover_ctx(preplaced=((3, 5), (2, 4)))  # stale, undemanded replicas
    greedy = GreedyGlobalPlacement(capacity=1, period_s=900.0, tlat_ms=150.0)
    greedy.on_adopt(ctx)
    demand = np.zeros((4, 6))
    demand[3, 0] = 10.0  # node 3 wants obj 0 (origin is 300 ms away)
    greedy.on_interval(0, ctx, demand, None)
    # The undemanded leftovers are dropped, demanded placement installed.
    assert 5 not in ctx.state.contents(3)
    assert 4 not in ctx.state.contents(2)
    assert 0 in ctx.state.contents(3)


def test_lru_on_replicate_admits_without_touching_recency_of_others():
    ctx = handover_ctx(preplaced=())
    lru = LRUCaching(capacity=2)
    lru.on_start(ctx)
    lru._lru[1][4] = True  # oldest
    lru._lru[1][5] = True  # most recent
    assert ctx.state.create(1, 4, 0.0) and ctx.state.create(1, 5, 0.0)
    assert ctx.state.create(1, 2, 0.0)  # the healed replica, already in state
    lru.on_replicate(1, 2, ctx)
    # The LRU victim (4) was evicted to make room; 5 kept its recency rank.
    assert list(lru._lru[1]) == [5, 2]
    assert ctx.state.contents(1) == {5, 2}


def test_lfu_on_replicate_evicts_coldest_for_healed_replica():
    ctx = handover_ctx(preplaced=())
    lfu = LFUCaching(capacity=2)
    lfu.on_start(ctx)
    lfu._counts[2] = {0: 9, 1: 1, 3: 5}
    lfu._cached[2] = {0, 1}
    assert ctx.state.create(2, 0, 0.0) and ctx.state.create(2, 1, 0.0)
    assert ctx.state.create(2, 3, 0.0)
    lfu.on_replicate(2, 3, ctx)
    assert lfu._cached[2] == {0, 3}  # coldest (1) evicted
    assert ctx.state.contents(2) == {0, 3}


def test_on_replicate_ignores_origin_and_zero_capacity():
    ctx = handover_ctx(preplaced=())
    lru = LRUCaching(capacity=0)
    lru.on_start(ctx)
    lru.on_replicate(1, 2, ctx)  # no-op, must not raise
    full = LRUCaching(capacity=2)
    full.on_start(ctx)
    full.on_replicate(ctx.topology.origin, 2, ctx)
    assert not full._lru[ctx.topology.origin]


def test_qiu_on_adopt_preserves_demand_history():
    ctx = handover_ctx()
    qiu = QiuGreedyPlacement(replicas_per_object=1, period_s=900.0, tlat_ms=150.0)
    qiu.on_start(ctx)
    demand = np.zeros((4, 6))
    demand[2, 1] = 3.0
    qiu.on_interval(0, ctx, demand, None)
    history_before = [h.copy() for h in qiu._history]

    qiu.on_adopt(ctx)

    assert len(qiu._history) == len(history_before)
    for kept, orig in zip(qiu._history, history_before):
        assert np.array_equal(kept, orig)
