"""Tests for cooperative caching and the centralized placement heuristics."""

import numpy as np
import pytest

from repro.heuristics.cooperative import CooperativeLRUCaching
from repro.heuristics.greedy_global import GreedyGlobalPlacement
from repro.heuristics.prefetch import CooperativePrefetchCaching, PrefetchCaching
from repro.heuristics.qiu import QiuGreedyPlacement
from repro.heuristics.random_placement import RandomPlacement
from repro.simulator.engine import simulate
from repro.topology.generators import line_topology, star_topology
from tests.conftest import make_trace


def test_cooperative_serves_from_neighbour():
    # chain 0-1-2: node 2 misses go 200ms to origin; a replica at 1 serves
    # node 2 at 100ms under cooperative (global) routing.
    topo = line_topology(num_nodes=3, hop_latency_ms=100.0)
    trace = make_trace([(10, 1, 0), (20, 2, 0)], num_nodes=3, num_objects=1)
    result = simulate(topo, trace, CooperativeLRUCaching(1), tlat_ms=150.0)
    # access 1: node 1 miss (100ms origin hit, covered) -> it is NOT inserted
    # (dedupe: the origin already covers node 1), access 2: node 2 served by
    # origin at 200ms -> uncovered, inserts locally.
    assert result.covered_reads == 1


def test_cooperative_dedupe_avoids_duplicates():
    topo = line_topology(num_nodes=3, hop_latency_ms=100.0)
    # node 2 misses and inserts; then node 1 reads the same object: a replica
    # 100ms away already covers it, so dedupe suppresses the insert.
    trace = make_trace([(10, 2, 0), (20, 1, 0), (30, 1, 0)], num_nodes=3, num_objects=1)
    dedupe = simulate(topo, trace, CooperativeLRUCaching(1), tlat_ms=150.0)
    eager = simulate(topo, trace, CooperativeLRUCaching(1, dedupe=False), tlat_ms=150.0)
    assert dedupe.creations == 1
    assert eager.creations == 2


def test_cooperative_capacity_validation():
    with pytest.raises(ValueError):
        CooperativeLRUCaching(-2)


def far_star(leaves=3):
    return star_topology(num_leaves=leaves, hub_latency_ms=200.0)


def test_greedy_global_plan_covers_hot_demand():
    h = GreedyGlobalPlacement(capacity=1, period_s=100.0, tlat_ms=150.0)
    topo = far_star(2)
    trace = make_trace([(10, 1, 0)], num_nodes=3, num_objects=2, duration_s=200.0)
    sim_result = simulate(topo, trace, h, tlat_ms=150.0)
    # plan() directly: leaf 1 demands object 0 heavily, object 1 lightly.
    demand = np.zeros((3, 2))
    demand[1, 0] = 10
    demand[1, 1] = 1
    placements = h.plan(demand, 3)
    assert 0 in placements[1]
    assert len(placements[1]) <= 1


def test_greedy_global_ignores_origin_covered_demand():
    topo = star_topology(num_leaves=2, hub_latency_ms=100.0)  # origin covers all
    h = GreedyGlobalPlacement(capacity=1, period_s=100.0, tlat_ms=150.0)
    trace = make_trace([(10, 1, 0)], num_nodes=3, num_objects=1, duration_s=200.0)
    result = simulate(topo, trace, h, tlat_ms=150.0)
    # demand is origin-covered: greedy gains nothing, but padding still fills
    # the cache with the locally hottest object -> at most capacity creations.
    assert result.covered_reads == 1


def test_greedy_global_reactive_places_from_past_period():
    topo = far_star(1)
    trace = make_trace(
        [(10, 1, 0), (150, 1, 0)], num_nodes=2, num_objects=1, duration_s=200.0
    )
    h = GreedyGlobalPlacement(capacity=1, period_s=100.0, tlat_ms=150.0)
    result = simulate(topo, trace, h, tlat_ms=150.0)
    # first period: no knowledge -> miss; second period: placed -> hit.
    assert result.covered_reads == 1


def test_greedy_global_clairvoyant_covers_first_period():
    topo = far_star(1)
    trace = make_trace(
        [(10, 1, 0), (150, 1, 0)], num_nodes=2, num_objects=1, duration_s=200.0
    )
    h = GreedyGlobalPlacement(capacity=1, period_s=100.0, tlat_ms=150.0, clairvoyant=True)
    result = simulate(topo, trace, h, tlat_ms=150.0)
    assert result.covered_reads == 2


def test_greedy_global_validation():
    with pytest.raises(ValueError):
        GreedyGlobalPlacement(capacity=-1)
    with pytest.raises(ValueError):
        GreedyGlobalPlacement(capacity=1, period_s=0.0)


def test_qiu_plan_object_picks_best_cover():
    topo = line_topology(num_nodes=4, hop_latency_ms=100.0)
    h = QiuGreedyPlacement(replicas_per_object=1, period_s=100.0, tlat_ms=150.0)
    trace = make_trace([(10, 2, 0)], num_nodes=4, num_objects=1, duration_s=200.0)
    simulate(topo, trace, h, tlat_ms=150.0)  # initializes reach
    demand = np.zeros(4)
    demand[2] = 5.0
    demand[3] = 4.0
    chosen = h.plan_object(demand, 4)
    # a single replica: nodes 2 and 3 are both within 150 of... 2-3 is 100ms;
    # placing at 2 covers 2 (0ms) and 3 (100ms) -> 9 demand; placing at 3
    # covers 3 and 2 equally. The greedy picks the max-gain node.
    assert chosen <= {2, 3}
    assert len(chosen) == 1


def test_qiu_respects_replica_budget():
    topo = far_star(3)
    h = QiuGreedyPlacement(replicas_per_object=2, period_s=100.0, tlat_ms=150.0)
    trace = make_trace([(10, 1, 0)], num_nodes=4, num_objects=1, duration_s=200.0)
    simulate(topo, trace, h, tlat_ms=150.0)
    demand = np.array([0.0, 5.0, 4.0, 3.0])
    chosen = h.plan_object(demand, 4)
    assert len(chosen) <= 2
    assert 1 in chosen and 2 in chosen  # two highest-demand isolated leaves


def test_qiu_zero_replicas():
    topo = far_star(1)
    trace = make_trace([(10, 1, 0)], num_nodes=2, num_objects=1, duration_s=200.0)
    result = simulate(
        topo, trace, QiuGreedyPlacement(0, period_s=100.0), tlat_ms=150.0
    )
    assert result.creations == 0


def test_qiu_validation():
    with pytest.raises(ValueError):
        QiuGreedyPlacement(-1)
    with pytest.raises(ValueError):
        QiuGreedyPlacement(1, period_s=-5.0)


def test_random_placement_deterministic_and_budgeted():
    topo = far_star(3)
    trace = make_trace(
        [(10, 1, 0), (150, 2, 1)], num_nodes=4, num_objects=2, duration_s=200.0
    )
    h1 = RandomPlacement(replicas_per_object=2, period_s=100.0, seed=7)
    h2 = RandomPlacement(replicas_per_object=2, period_s=100.0, seed=7)
    r1 = simulate(topo, trace, h1, tlat_ms=150.0)
    r2 = simulate(topo, trace, h2, tlat_ms=150.0)
    assert r1.creations == r2.creations == 4  # 2 objects x 2 replicas, once
    assert r1.covered_reads == r2.covered_reads


def test_random_reshuffle_recreates():
    topo = far_star(3)
    trace = make_trace(
        [(10, 1, 0), (150, 1, 0)], num_nodes=4, num_objects=1, duration_s=200.0
    )
    stay = RandomPlacement(1, period_s=100.0, reshuffle=False, seed=1)
    move = RandomPlacement(1, period_s=100.0, reshuffle=True, seed=1)
    r_stay = simulate(topo, trace, stay, tlat_ms=150.0)
    r_move = simulate(topo, trace, move, tlat_ms=150.0)
    assert r_stay.creations == 1
    assert r_move.creations >= 1  # may redraw the same node


def test_random_validation():
    with pytest.raises(ValueError):
        RandomPlacement(-1)
    with pytest.raises(ValueError):
        RandomPlacement(1, period_s=0)


def test_prefetch_caching_loads_coming_demand():
    topo = far_star(1)
    trace = make_trace(
        [(10, 1, 0), (150, 1, 1)], num_nodes=2, num_objects=2, duration_s=200.0
    )
    h = PrefetchCaching(capacity=1, period_s=100.0)
    result = simulate(topo, trace, h, tlat_ms=150.0)
    assert result.covered_reads == 2  # both prefetched just in time


def test_prefetch_capacity_limits_load():
    topo = far_star(1)
    trace = make_trace(
        [(10, 1, 0), (20, 1, 0), (30, 1, 1)], num_nodes=2, num_objects=2, duration_s=200.0
    )
    h = PrefetchCaching(capacity=1, period_s=100.0)
    result = simulate(topo, trace, h, tlat_ms=150.0)
    # only the hottest object (0) fits: 2 hits, object 1 misses.
    assert result.covered_reads == 2


def test_prefetch_validation():
    with pytest.raises(ValueError):
        PrefetchCaching(-1)
    with pytest.raises(ValueError):
        CooperativePrefetchCaching(1, period_s=0)


def test_cooperative_prefetch_shares_replicas():
    topo = line_topology(num_nodes=3, hop_latency_ms=100.0)
    trace = make_trace(
        [(10, 1, 0), (20, 2, 0)], num_nodes=3, num_objects=1, duration_s=100.0
    )
    h = CooperativePrefetchCaching(capacity=1, period_s=100.0)
    result = simulate(topo, trace, h, tlat_ms=150.0)
    # one replica within 150ms of both nodes covers both reads.
    assert result.covered_reads == 2


def test_describes():
    assert "GreedyGlobal" in GreedyGlobalPlacement(1).describe()
    assert "QiuGreedy" in QiuGreedyPlacement(1).describe()
    assert "Random" in RandomPlacement(1).describe()
    assert "Prefetch" in PrefetchCaching(1).describe()
    assert "CoopPrefetch" in CooperativePrefetchCaching(1).describe()
    assert "CoopLRU" in CooperativeLRUCaching(1).describe()


def test_cooperative_on_adopt_respects_capacity():
    from repro.simulator.engine import SimulationContext
    from repro.simulator.state import ReplicaState

    topo = far_star(2)
    trace = make_trace([(10, 1, 0)], num_nodes=4, num_objects=6, duration_s=100.0)
    state = ReplicaState(topo, 6)
    ctx = SimulationContext(topo, trace, state, tlat_ms=150.0)
    for obj in range(5):
        assert state.create(1, obj, 0.0)
    coop = CooperativeLRUCaching(capacity=2)
    coop.on_adopt(ctx)
    assert state.occupancy(1) == 2
