"""Tests for LRU/LFU caching, including the LRU stack property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.heuristics.caching import LFUCaching, LRUCaching
from repro.simulator.engine import simulate
from repro.topology.generators import star_topology
from tests.conftest import make_trace


def far_star(leaves=2):
    return star_topology(num_leaves=leaves, hub_latency_ms=200.0)


def run(trace, heuristic, leaves=2, tlat=150.0, **kwargs):
    return simulate(far_star(leaves), trace, heuristic, tlat_ms=tlat, **kwargs)


def test_lru_capacity_validation():
    with pytest.raises(ValueError):
        LRUCaching(-1)
    with pytest.raises(ValueError):
        LFUCaching(-1)


def test_lru_zero_capacity_never_stores():
    trace = make_trace([(i * 10, 1, 0) for i in range(5)], num_nodes=3, num_objects=1)
    result = run(trace, LRUCaching(0))
    assert result.creations == 0
    assert result.covered_reads == 0


def test_lru_evicts_least_recently_used():
    # capacity 2; access pattern 0,1,2 evicts 0; then 0 misses again.
    trace = make_trace(
        [(10, 1, 0), (20, 1, 1), (30, 1, 2), (40, 1, 0)], num_nodes=3, num_objects=3
    )
    result = run(trace, LRUCaching(2))
    assert result.covered_reads == 0  # every access a miss
    assert result.creations == 4


def test_lru_touch_refreshes_recency():
    # 0,1,0,2 -> touching 0 makes 1 the victim; final 0 hits.
    trace = make_trace(
        [(10, 1, 0), (20, 1, 1), (30, 1, 0), (40, 1, 2), (50, 1, 0)],
        num_nodes=3,
        num_objects=3,
    )
    result = run(trace, LRUCaching(2))
    assert result.covered_reads == 2  # the second and third accesses to 0


def test_lru_caches_are_per_node():
    trace = make_trace([(10, 1, 0), (20, 2, 0)], num_nodes=3, num_objects=1)
    result = run(trace, LRUCaching(1))
    assert result.covered_reads == 0  # node 2 cannot use node 1's cache
    assert result.creations == 2


def test_lfu_keeps_hot_object():
    # object 0 accessed 3x, then 1 and 2 compete for the second slot.
    trace = make_trace(
        [(10, 1, 0), (20, 1, 0), (30, 1, 0), (40, 1, 1), (50, 1, 2), (60, 1, 0)],
        num_nodes=3,
        num_objects=3,
    )
    result = run(trace, LFUCaching(1))
    # 0 stays cached (highest frequency): accesses 2,3 and 6 hit.
    assert result.covered_reads == 3


def test_lfu_no_eviction_when_colder():
    trace = make_trace(
        [(10, 1, 0), (20, 1, 0), (30, 1, 1), (40, 1, 0)], num_nodes=3, num_objects=2
    )
    result = run(trace, LFUCaching(1))
    # 1 (count 1) never displaces 0 (count 2): final 0 hits.
    assert result.covered_reads == 2
    assert result.creations == 1


def test_describe():
    assert "LRU" in LRUCaching(4).describe()
    assert "LFU" in LFUCaching(4).describe()


@settings(max_examples=30, deadline=None)
@given(
    accesses=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=40),
    cap=st.integers(min_value=0, max_value=5),
)
def test_lru_stack_property(accesses, cap):
    """LRU hit count is monotone non-decreasing in capacity (stack property)."""
    trace = make_trace(
        [(10.0 * i, 1, obj) for i, obj in enumerate(accesses)],
        duration_s=10.0 * len(accesses) + 1,
        num_nodes=3,
        num_objects=6,
    )
    small = run(trace, LRUCaching(cap)).covered_reads
    big = run(trace, LRUCaching(cap + 1)).covered_reads
    assert big >= small


@settings(max_examples=20, deadline=None)
@given(
    accesses=st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=30)
)
def test_lru_matches_reference_model(accesses):
    """Differential test against a straightforward reference LRU."""
    cap = 2
    trace = make_trace(
        [(10.0 * i, 1, obj) for i, obj in enumerate(accesses)],
        duration_s=10.0 * len(accesses) + 1,
        num_nodes=3,
        num_objects=5,
    )
    result = run(trace, LRUCaching(cap))

    cache = []
    hits = 0
    for obj in accesses:
        if obj in cache:
            hits += 1
            cache.remove(obj)
            cache.append(obj)
        else:
            if len(cache) >= cap:
                cache.pop(0)
            cache.append(obj)
    assert result.covered_reads == hits
