"""AuditReport/AuditViolation structure and mode resolution."""

from __future__ import annotations

import json

import pytest

from repro.audit import AUDIT_MODES, MODE_ENV, AuditReport, AuditViolation, resolve_mode


def test_empty_report_is_ok():
    report = AuditReport(mode="fast", subject="x")
    assert report.ok
    assert bool(report)
    assert report.worst() is None


def test_flag_records_violation_and_flips_ok():
    report = AuditReport(mode="fast")
    report.flag("objective", "cell-1", 0.5, message="drifted")
    assert not report.ok
    assert not bool(report)
    assert report.worst().check == "objective"
    assert report.worst().amount == 0.5


def test_ran_is_idempotent():
    report = AuditReport()
    report.ran("constraint")
    report.ran("constraint")
    assert report.checks.count("constraint") == 1


def test_merge_combines_checks_violations_and_skips():
    a = AuditReport(mode="full")
    a.ran("objective")
    b = AuditReport(mode="full")
    b.flag("constraint", "row-3", 1.0)
    b.skip("differential", "too large")
    a.merge(b)
    assert "constraint" in a.checks
    assert not a.ok
    assert any("differential" in s for s in a.skipped)


def test_worst_returns_largest_amount():
    report = AuditReport()
    report.flag("a", "x", 0.1)
    report.flag("b", "y", 2.0)
    report.flag("c", "z", 0.5)
    assert report.worst().check == "b"


def test_render_mentions_subject_and_violations():
    report = AuditReport(mode="full", subject="deadbeef")
    report.ran("objective")
    assert "OK" in report.render()
    report.flag("objective", "deadbeef", 0.25, message="objective drifted")
    text = report.render()
    assert "objective drifted" in text
    assert "OK" not in text


def test_round_trip_through_json():
    report = AuditReport(mode="full", subject="s")
    report.ran("objective")
    report.flag("constraint", "row", 0.5, message="m")
    report.skip("differential", "r")
    back = AuditReport.from_dict(json.loads(json.dumps(report.to_dict())))
    assert back.mode == report.mode
    assert back.subject == report.subject
    assert back.checks == report.checks
    assert back.skipped == report.skipped
    assert len(back.violations) == 1
    assert back.violations[0].check == "constraint"
    assert back.violations[0].amount == 0.5
    assert not back.ok


def test_violation_str_and_round_trip():
    v = AuditViolation(check="bound-gate", subject="cell", amount=1.5, message="below")
    assert "bound-gate" in str(v)
    back = AuditViolation.from_dict(v.to_dict())
    assert back == v


def test_resolve_mode_explicit_wins(monkeypatch):
    monkeypatch.setenv(MODE_ENV, "full")
    assert resolve_mode("fast") == "fast"


def test_resolve_mode_reads_env(monkeypatch):
    monkeypatch.setenv(MODE_ENV, "full")
    assert resolve_mode(None) == "full"
    monkeypatch.delenv(MODE_ENV)
    assert resolve_mode(None) == "off"


def test_resolve_mode_ignores_env_typo(monkeypatch):
    monkeypatch.setenv(MODE_ENV, "fulll")
    assert resolve_mode(None) == "off"


def test_resolve_mode_rejects_unknown_explicit():
    with pytest.raises(ValueError, match="unknown audit mode"):
        resolve_mode("paranoid")


def test_mode_registry():
    assert AUDIT_MODES == ("off", "fast", "full")
