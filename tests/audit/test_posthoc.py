"""Post-hoc run-directory auditing (the ``repro audit <run-dir>`` path)."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.analysis.sweep import sweep_tasks
from repro.audit import audit_run_dir
from repro.core.classes import get_class
from repro.runner import make_runner
from repro.runner.tasks import HeuristicSpec, SimulateTask

LEVELS = [0.7, 0.9]
CLASSES = ["storage-constrained", "replica-constrained"]


@pytest.fixture()
def run_dir(tmp_path, web_problem, small_topology, web_trace):
    """A finalized sweep run (4 bound cells + 1 simulate cell), audit on."""
    tasks = sweep_tasks(
        web_problem,
        LEVELS,
        [get_class(c) for c in CLASSES],
        do_rounding=True,
        backend="scipy",
        audit="fast",
    )
    sim = SimulateTask(
        topology=small_topology,
        trace=web_trace,
        heuristic=HeuristicSpec(name="greedy-global", capacity=8, period_s=600.0),
        tlat_ms=150.0,
        audit="fast",
        label="sim-greedy-global",
    )
    runner = make_runner(run_dir=tmp_path / "runs", label="posthoc")
    runner.map(list(tasks) + [sim])
    return runner.artifacts.finalize()


def payload_files(run_dir, kind):
    manifest = json.loads((run_dir / "manifest.json").read_text())
    out = []
    for rec in manifest["task_records"]:
        if rec["kind"] == kind and rec.get("file"):
            out.append((rec, run_dir / rec["file"]))
    return out


def edit_payload(path, mutate):
    body = json.loads(path.read_text())
    mutate(body["payload"])
    path.write_text(json.dumps(body))


def test_clean_run_audits_ok(run_dir):
    report = audit_run_dir(run_dir)
    assert report.ok, report.render()
    for check in ("artifact", "stored-audit", "placement", "bound-gate",
                  "monotonicity", "sim-gate"):
        assert check in report.checks, f"{check} never ran"


def test_problem_factory_enables_full_recheck(run_dir, web_problem):
    def factory(meta):
        if meta.get("qos") is None:
            return None
        goal = dataclasses.replace(web_problem.goal, fraction=float(meta["qos"]))
        return dataclasses.replace(web_problem, goal=goal)

    report = audit_run_dir(run_dir, problem_factory=factory)
    assert report.ok, report.render()
    assert "cost" in report.checks


def test_corrupted_bound_payload_is_flagged(run_dir):
    _, path = payload_files(run_dir, "bound")[0]
    edit_payload(path, lambda p: p.update(lp_cost=p["lp_cost"] * 3.0 + 1.0))
    report = audit_run_dir(run_dir)
    assert not report.ok
    assert any(v.check == "bound-gate" for v in report.violations)


def test_monotonicity_violation_is_flagged(run_dir):
    cells = {
        (rec["meta"]["class"], rec["meta"]["qos"]): path
        for rec, path in payload_files(run_dir, "bound")
    }
    low = json.loads(cells["storage-constrained", 0.7].read_text())
    # Forge the tighter level's bound below the looser level's: the feasible
    # region only shrinks as QoS tightens, so this cannot happen honestly.
    forged = low["payload"]["lp_cost"] / 2.0
    edit_payload(
        cells["storage-constrained", 0.9], lambda p: p.update(lp_cost=forged)
    )
    report = audit_run_dir(run_dir)
    assert not report.ok
    assert any(v.check == "monotonicity" for v in report.violations)


def test_sim_gate_violation_is_flagged(run_dir):
    def undercut(p):
        p["storage_cost"] = 0.0
        p["creation_cost"] = 0.0
        p["update_cost"] = 0.0
        p["covered_reads"] = p["reads"]  # forged sim now "meets" every level

    _, path = payload_files(run_dir, "simulate")[0]
    edit_payload(path, undercut)
    report = audit_run_dir(run_dir)
    assert not report.ok
    assert any(v.check == "sim-gate" for v in report.violations)


def test_missing_payload_file_is_flagged(run_dir):
    _, path = payload_files(run_dir, "bound")[0]
    path.unlink()
    report = audit_run_dir(run_dir)
    assert not report.ok
    assert any(v.check == "artifact" for v in report.violations)


def test_missing_manifest_is_flagged(tmp_path):
    report = audit_run_dir(tmp_path / "nope")
    assert not report.ok
