"""Certificate-level audits on real (tiny) MC-PERF instances."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.audit import (
    audit_bound_result,
    audit_lp_solution,
    audit_placement,
    audit_rounding,
    audit_sim_result,
    exact_objective,
    sim_gate_violation,
    AuditReport,
)
from repro.core.bounds import compute_lower_bound
from repro.core.classes import get_class
from repro.core.costs import CostModel
from repro.core.formulation import build_formulation
from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.topology.generators import star_topology
from repro.workload.demand import DemandMatrix
from tests.conftest import make_trace


@pytest.fixture(scope="module")
def tiny_problem():
    """A 4-node star with a handful of requests: solves in milliseconds."""
    topo = star_topology(num_leaves=3, hub_latency_ms=100.0)
    trace = make_trace(
        [(10, 1, 0), (20, 1, 0), (30, 2, 1), (40, 3, 1), (50, 2, 0), (60, 1, 1)],
        duration_s=120.0,
        num_nodes=4,
        num_objects=2,
    )
    demand = DemandMatrix.from_trace(trace, num_intervals=2)
    return MCPerfProblem(
        topology=topo,
        demand=demand,
        # 50 ms < the 100 ms hub hop, so replicas must be placed (lp_cost > 0)
        goal=QoSGoal(tlat_ms=50.0, fraction=0.9),
        costs=CostModel.paper_defaults(),
    )


@pytest.fixture(scope="module")
def audited_result(tiny_problem):
    return compute_lower_bound(
        tiny_problem, get_class("storage-constrained").properties, audit="full"
    )


def test_honest_solve_audits_clean(audited_result):
    assert audited_result.feasible
    report = audited_result.audit
    assert report is not None
    assert report.ok, report.render()
    for check in ("status", "objective", "placement", "bound-gate"):
        assert check in report.checks


def test_full_mode_runs_exact_and_differential(audited_result):
    report = audited_result.audit
    assert report.mode == "full"
    assert "var-bound" in report.checks
    assert "constraint" in report.checks
    assert "differential" in report.checks or any(
        "differential" in s for s in report.skipped
    )


def test_audit_off_attaches_nothing(tiny_problem, monkeypatch):
    monkeypatch.delenv("REPRO_AUDIT", raising=False)
    result = compute_lower_bound(tiny_problem, get_class("storage-constrained").properties)
    assert result.audit is None


def test_env_var_turns_auditing_on(tiny_problem, monkeypatch):
    monkeypatch.setenv("REPRO_AUDIT", "fast")
    result = compute_lower_bound(tiny_problem, get_class("storage-constrained").properties)
    assert result.audit is not None
    assert result.audit.mode == "fast"
    assert result.audit.ok


def test_exact_objective_matches_float(tiny_problem):
    form = build_formulation(tiny_problem, get_class("storage-constrained").properties)
    solution = form.lp.solve(backend="scipy")
    exact = exact_objective(form.lp, solution.values)
    assert abs(float(exact) - float(solution.objective)) <= 1e-6 * (
        1.0 + abs(float(solution.objective))
    )


def test_audit_lp_solution_flags_corrupted_value(tiny_problem):
    form = build_formulation(tiny_problem, get_class("storage-constrained").properties)
    solution = form.lp.solve(backend="scipy")
    values = np.asarray(solution.values, dtype=float).copy()
    values[0] += 10.0  # blow a bound or a constraint row, and the objective
    corrupted = dataclasses.replace(solution, values=values)
    report = audit_lp_solution(form.lp, corrupted, mode="full")
    assert not report.ok


def test_audit_rounding_flags_cost_tampering(tiny_problem):
    form = build_formulation(tiny_problem, get_class("storage-constrained").properties)
    solution = form.lp.solve(backend="scipy")
    from repro.core.rounding import round_solution

    rounding = round_solution(form, solution)
    clean = audit_rounding(form, rounding, form.bound_cost(solution))
    assert clean.ok, clean.render()

    tampered = dataclasses.replace(
        rounding,
        cost=dataclasses.replace(rounding.cost, storage=rounding.cost.storage - 50.0),
    )
    report = audit_rounding(form, tampered, form.bound_cost(solution))
    assert not report.ok
    assert any(v.check in ("cost", "bound-gate") for v in report.violations)


def test_audit_placement_flags_fractional_store(tiny_problem):
    form = build_formulation(tiny_problem, get_class("storage-constrained").properties)
    solution = form.lp.solve(backend="scipy")
    from repro.core.rounding import round_solution

    rounding = round_solution(form, solution)
    store = np.asarray(rounding.store, dtype=float).copy()
    store.flat[0] = 0.5
    report = audit_placement(form, store)
    assert not report.ok
    assert any("fractional" in v.message for v in report.violations)


def test_audit_bound_result_accepts_honest_payload(tiny_problem, audited_result):
    report = audit_bound_result(
        tiny_problem, audited_result.properties, audited_result, mode="fast"
    )
    assert report.ok, report.render()


def test_audit_bound_result_flags_inflated_bound(tiny_problem, audited_result):
    forged = dataclasses.replace(audited_result, lp_cost=audited_result.lp_cost * 3.0)
    report = audit_bound_result(tiny_problem, forged.properties, forged, mode="fast")
    assert not report.ok
    assert any(v.check == "bound-gate" for v in report.violations)


def test_audit_bound_result_flags_nonfinite_bound(tiny_problem, audited_result):
    forged = dataclasses.replace(audited_result, lp_cost=float("nan"))
    report = audit_bound_result(tiny_problem, forged.properties, forged, mode="fast")
    assert not report.ok
    assert any(v.check == "artifact" for v in report.violations)


def test_audit_sim_result_flags_corruption():
    from repro.runner.tasks import HeuristicSpec, SimulateTask
    from tests.conftest import make_trace as mk

    topo = star_topology(num_leaves=3, hub_latency_ms=100.0)
    trace = mk(
        [(5, 1, 0), (15, 2, 0), (25, 3, 1), (35, 1, 1)],
        duration_s=60.0,
        num_nodes=4,
        num_objects=2,
    )
    task = SimulateTask(
        topology=topo,
        trace=trace,
        heuristic=HeuristicSpec(name="lru", capacity=2),
        cost_interval_s=30.0,
    )
    result = task.run()
    assert audit_sim_result(result).ok

    payload = task.encode(result)
    payload["storage_cost"] = -5.0
    corrupted = task.decode(payload)
    report = audit_sim_result(corrupted)
    assert not report.ok

    payload = task.encode(result)
    payload["covered_reads"] = payload["reads"] + 7
    report = audit_sim_result(task.decode(payload))
    assert not report.ok


def test_sim_gate_violation():
    report = AuditReport()
    assert sim_gate_violation(report, simulated_cost=90.0, class_bound=100.0,
                              eps=1e-3, subject="lru vs caching")
    assert not report.ok
    ok_report = AuditReport()
    assert not sim_gate_violation(ok_report, simulated_cost=110.0,
                                  class_bound=100.0, eps=1e-3, subject="x")
    assert ok_report.ok
