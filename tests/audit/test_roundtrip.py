"""Serialization round-trips and the resumed-run audit regression.

Satellite (b): ``LPSolution`` round-trips must preserve solver status and
backend exactly, audited results must survive the cache/artifact encoding,
and a resumed run must see its previously-audited cells as verified (not
silently demoted to unaudited).
"""

from __future__ import annotations

import json

import pytest

from repro.core.classes import get_class
from repro.lp.solution import LPSolution, SolveStatus
from repro.runner import make_runner
from repro.runner.tasks import BoundTask


@pytest.mark.parametrize("status", list(SolveStatus))
@pytest.mark.parametrize("backend", ["scipy", "simplex"])
def test_lp_solution_round_trip_preserves_status_and_backend(status, backend):
    solution = LPSolution(
        status=status,
        objective=12.5,
        values=[0.0, 1.0, 0.25],
        backend=backend,
        message="diag",
        duals=[0.5, -0.5],
    )
    back = LPSolution.from_dict(json.loads(json.dumps(solution.to_dict())))
    assert back.status is status
    assert back.backend == backend
    assert back.message == "diag"
    assert back.objective == solution.objective
    assert list(back.values) == list(solution.values)
    assert list(back.duals) == list(solution.duals)


def test_lp_solution_round_trip_none_duals():
    solution = LPSolution(status=SolveStatus.INFEASIBLE, backend="simplex")
    back = LPSolution.from_dict(json.loads(json.dumps(solution.to_dict())))
    assert back.status is SolveStatus.INFEASIBLE
    assert back.backend == "simplex"
    assert back.duals is None


@pytest.fixture()
def audited_result(web_problem):
    task = BoundTask(
        problem=web_problem,
        properties=get_class("storage-constrained").properties,
        backend="scipy",
        audit="fast",
    )
    return task.run()


def test_bound_result_round_trip_preserves_audit(audited_result):
    from repro.core.bounds import LowerBoundResult

    assert audited_result.audit is not None
    payload = json.loads(json.dumps(audited_result.to_dict()))
    back = LowerBoundResult.from_dict(payload)
    assert back.audit is not None
    assert back.audit.ok == audited_result.audit.ok
    assert back.audit.mode == audited_result.audit.mode
    assert back.audit.checks == audited_result.audit.checks
    assert back.status == audited_result.status
    assert back.backend_used == audited_result.backend_used


def test_rounding_result_round_trip_preserves_audit(web_problem):
    from repro.core.formulation import build_formulation
    from repro.core.rounding import RoundingResult, round_solution

    form = build_formulation(
        web_problem, get_class("storage-constrained").properties
    )
    solution = form.lp.solve(backend="scipy")
    rounding = round_solution(form, solution, audit="fast")
    assert rounding.audit is not None
    back = RoundingResult.from_dict(json.loads(json.dumps(rounding.to_dict())))
    assert back.audit is not None
    assert back.audit.ok == rounding.audit.ok
    assert back.feasible == rounding.feasible


def manifest_of(run_dir):
    [d] = [p for p in run_dir.iterdir() if p.is_dir()]
    return d, json.loads((d / "manifest.json").read_text())


def test_resumed_run_keeps_cells_audited(tmp_path, web_problem):
    """Regression: a --resume'd run must re-certify served cells, so the new
    manifest still reports them as audited instead of unverified."""
    tasks = [
        BoundTask(
            problem=web_problem,
            properties=get_class(name).properties,
            backend="scipy",
            audit="fast",
            label=name,
        )
        for name in ("storage-constrained", "replica-constrained")
    ]

    first = make_runner(run_dir=tmp_path / "first")
    first.map(tasks)
    first.finalize()
    first_dir, first_manifest = manifest_of(tmp_path / "first")
    assert first_manifest["audited"] == 2
    assert first_manifest["audit_failed"] == 0

    second = make_runner(run_dir=tmp_path / "second", resume=first_dir)
    second.map(tasks)
    second.finalize()
    assert second.resumed == 2
    assert second.audit_quarantined == 0

    _, second_manifest = manifest_of(tmp_path / "second")
    assert second_manifest["executed"] == 0
    assert second_manifest["audited"] == 2, (
        "resume served cells without re-certifying them"
    )
    assert second_manifest["audit_failed"] == 0
    for rec in second_manifest["task_records"]:
        assert rec["audit"] is not None
        assert rec["audit"]["violations"] == []
        assert rec["meta"]["class"] in (
            "storage-constrained", "replica-constrained",
        )
