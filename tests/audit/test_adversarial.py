"""Adversarial cache corruption: the cache-hit audit must catch tampering.

These tests hand-corrupt cached result files the way bit rot or a bad merge
would, then assert the runner's cache-hit audit quarantines the entry and
re-solves instead of serving poison.
"""

from __future__ import annotations

import json

import pytest

from repro.core.classes import get_class
from repro.runner import make_runner
from repro.runner.tasks import BoundTask


@pytest.fixture()
def task(web_problem):
    return BoundTask(
        problem=web_problem,
        properties=get_class("storage-constrained").properties,
        backend="scipy",
        audit="fast",
        label="adversarial",
    )


def cache_file(cache_dir, task):
    key = task.cache_key()
    path = cache_dir / key[:2] / f"{key}.json"
    assert path.exists(), "task was not cached"
    return path


def test_clean_cache_hit_re_audits_and_serves(tmp_path, task):
    cache_dir = tmp_path / "cache"
    [first] = make_runner(cache_dir=cache_dir).map([task])

    warm = make_runner(cache_dir=cache_dir)
    [second] = warm.map([task])
    assert warm.cache_hits == 1
    assert warm.audit_quarantined == 0
    assert second.lp_cost == pytest.approx(first.lp_cost)


def test_flipped_coefficient_is_quarantined_and_resolved(tmp_path, task):
    cache_dir = tmp_path / "cache"
    [honest] = make_runner(cache_dir=cache_dir).map([task])

    path = cache_file(cache_dir, task)
    entry = json.loads(path.read_text())
    entry["payload"]["lp_cost"] = entry["payload"]["lp_cost"] * 3.0 + 1.0
    path.write_text(json.dumps(entry))

    warm = make_runner(cache_dir=cache_dir)
    [result] = warm.map([task])

    assert warm.audit_quarantined == 1
    assert warm.executed == 1
    assert path.with_name(path.name + ".quarantined").exists()
    assert result.lp_cost == pytest.approx(honest.lp_cost)
    assert "audit_quarantined=1" in warm.summary()

    # The re-solve overwrote the entry, so a third run is a clean hit again.
    third = make_runner(cache_dir=cache_dir)
    [again] = third.map([task])
    assert third.cache_hits == 1
    assert third.audit_quarantined == 0
    assert again.lp_cost == pytest.approx(honest.lp_cost)


def test_corrupted_rounding_storage_is_caught(tmp_path, web_problem):
    rounded = BoundTask(
        problem=web_problem,
        properties=get_class("storage-constrained").properties,
        backend="scipy",
        do_rounding=True,
        audit="fast",
    )
    cache_dir = tmp_path / "cache"
    [honest] = make_runner(cache_dir=cache_dir).map([rounded])
    assert honest.feasible_cost is not None

    path = cache_file(cache_dir, rounded)
    entry = json.loads(path.read_text())
    entry["payload"]["feasible_cost"] = honest.feasible_cost / 10.0
    path.write_text(json.dumps(entry))

    warm = make_runner(cache_dir=cache_dir)
    [result] = warm.map([rounded])
    assert warm.audit_quarantined == 1
    assert result.feasible_cost == pytest.approx(honest.feasible_cost)


def test_truncated_json_is_a_plain_miss(tmp_path, task):
    cache_dir = tmp_path / "cache"
    make_runner(cache_dir=cache_dir).map([task])

    path = cache_file(cache_dir, task)
    path.write_text(path.read_text()[: len(path.read_text()) // 2])

    warm = make_runner(cache_dir=cache_dir)
    [result] = warm.map([task])
    # Undecodable bytes never reach the audit: decode fails, plain miss.
    assert warm.cache_hits == 0
    assert warm.audit_quarantined == 0
    assert warm.executed == 1
    assert result.feasible


def test_audit_off_serves_corrupted_entry(tmp_path, web_problem):
    """Without auditing the tampered value is served verbatim — the audit is
    what buys detection, and this pins down the contrast."""
    unaudited = BoundTask(
        problem=web_problem,
        properties=get_class("storage-constrained").properties,
        backend="scipy",
        audit="off",
    )
    cache_dir = tmp_path / "cache"
    [honest] = make_runner(cache_dir=cache_dir).map([unaudited])

    path = cache_file(cache_dir, unaudited)
    entry = json.loads(path.read_text())
    entry["payload"]["lp_cost"] = entry["payload"]["lp_cost"] * 3.0 + 1.0
    path.write_text(json.dumps(entry))

    warm = make_runner(cache_dir=cache_dir)
    [served] = warm.map([unaudited])
    assert warm.cache_hits == 1
    assert served.lp_cost != pytest.approx(honest.lp_cost)
