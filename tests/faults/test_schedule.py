"""Fault event, schedule and generator validation tests."""

import math

import pytest

from repro.faults import (
    FaultSchedule,
    LinkDegrade,
    LinkRestore,
    NodeCrash,
    NodeRecover,
    ReplicaLoss,
    correlated_outage,
    flaky_link,
    parse_faults,
    poisson_crashes,
    random_replica_loss,
)
from repro.topology.generators import star_topology


# -- events ----------------------------------------------------------------


def test_event_rejects_negative_or_non_finite_time():
    with pytest.raises(ValueError):
        NodeCrash(-1.0, 1)
    with pytest.raises(ValueError):
        NodeCrash(math.inf, 1)
    with pytest.raises(ValueError):
        NodeCrash(math.nan, 1)


def test_link_events_reject_self_loops_and_bad_factors():
    with pytest.raises(ValueError):
        LinkDegrade(0.0, 2, 2)
    with pytest.raises(ValueError):
        LinkDegrade(0.0, 1, 2, factor=0.5)
    with pytest.raises(ValueError):
        LinkDegrade(0.0, 1, 2, factor=math.nan)
    assert LinkDegrade(0.0, 1, 2).is_partition
    assert not LinkDegrade(0.0, 1, 2, factor=3.0).is_partition


def test_same_time_ties_order_recoveries_before_failures():
    sched = FaultSchedule(
        [NodeCrash(100.0, 2), NodeRecover(100.0, 1), NodeCrash(50.0, 1)]
    )
    kinds = [type(ev).__name__ for ev in sched]
    assert kinds == ["NodeCrash", "NodeRecover", "NodeCrash"]
    assert [ev.node for ev in sched] == [1, 1, 2]


# -- schedule structure ----------------------------------------------------


def test_overlapping_crash_intervals_rejected():
    with pytest.raises(ValueError, match="overlapping crash intervals"):
        FaultSchedule(
            [NodeCrash(10.0, 1), NodeCrash(20.0, 1), NodeRecover(30.0, 1)]
        )


def test_recover_without_crash_rejected():
    with pytest.raises(ValueError, match="without a preceding crash"):
        FaultSchedule([NodeRecover(10.0, 1)])


def test_restore_without_degradation_rejected():
    with pytest.raises(ValueError, match="without a degradation"):
        FaultSchedule([LinkRestore(10.0, 1, 2)])


def test_back_to_back_crash_intervals_allowed():
    sched = FaultSchedule(
        [
            NodeCrash(10.0, 1),
            NodeRecover(20.0, 1),
            NodeCrash(20.0, 1),  # recovers-first tie order makes this legal
            NodeRecover(30.0, 1),
        ]
    )
    assert sched.crash_intervals() == {1: [(10.0, 20.0), (20.0, 30.0)]}


def test_open_crash_interval_ends_at_infinity():
    sched = FaultSchedule([NodeCrash(10.0, 2)])
    assert sched.crash_intervals() == {2: [(10.0, math.inf)]}


def test_schedules_compose_with_plus():
    merged = FaultSchedule([NodeCrash(10.0, 1), NodeRecover(20.0, 1)]) + FaultSchedule(
        [NodeCrash(30.0, 2)]
    )
    assert len(merged) == 3
    # Composition re-validates: a combined overlap is still rejected.
    with pytest.raises(ValueError):
        FaultSchedule([NodeCrash(10.0, 1)]) + FaultSchedule([NodeCrash(15.0, 1)])


# -- epoch slicing boundaries ----------------------------------------------


def test_slice_rejects_bad_windows():
    sched = FaultSchedule([NodeCrash(10.0, 1)])
    with pytest.raises(ValueError):
        sched.slice(-1.0, 10.0)
    with pytest.raises(ValueError):
        sched.slice(10.0, 10.0)
    with pytest.raises(ValueError):
        sched.slice(10.0, 5.0)


def test_slice_event_exactly_at_window_start_is_included():
    sched = FaultSchedule([NodeCrash(100.0, 1), NodeRecover(150.0, 1)])
    window = sched.slice(100.0, 200.0)
    assert [(type(ev).__name__, ev.time_s) for ev in window] == [
        ("NodeCrash", 0.0),
        ("NodeRecover", 50.0),
    ]


def test_slice_event_exactly_at_window_end_is_dropped():
    sched = FaultSchedule([NodeCrash(200.0, 1), NodeRecover(250.0, 1)])
    assert sched.slice(100.0, 200.0).empty
    # ...but the next epoch's slice picks it up at its own t=0.
    nxt = sched.slice(200.0, 300.0)
    assert [(type(ev).__name__, ev.time_s) for ev in nxt] == [
        ("NodeCrash", 0.0),
        ("NodeRecover", 50.0),
    ]


def test_slice_carries_open_crash_in_as_t0_event():
    sched = FaultSchedule([NodeCrash(50.0, 2), NodeRecover(250.0, 2)])
    window = sched.slice(100.0, 200.0)
    assert window.crash_intervals() == {2: [(0.0, math.inf)]}  # stays open


def test_slice_drops_zero_length_pair_when_recovery_lands_on_boundary():
    """A fault healing exactly at the window start must not resurrect."""
    sched = FaultSchedule([NodeCrash(50.0, 1), NodeRecover(100.0, 1)])
    assert sched.slice(100.0, 200.0).empty
    link = FaultSchedule([LinkDegrade(50.0, 1, 2), LinkRestore(100.0, 1, 2)])
    assert link.slice(100.0, 200.0).empty


def test_slice_carries_open_link_degradation():
    sched = FaultSchedule([LinkDegrade(50.0, 1, 2, factor=3.0)])
    window = sched.slice(100.0, 200.0)
    assert len(window) == 1
    ev = window.events[0]
    assert isinstance(ev, LinkDegrade)
    assert ev.time_s == 0.0 and ev.factor == 3.0


def test_epoch_slices_tile_the_full_schedule():
    """Boundary epochs: slicing at every epoch edge loses no downtime."""
    sched = FaultSchedule(
        [
            NodeCrash(0.0, 1),
            NodeRecover(100.0, 1),  # heals exactly at epoch edge 100
            NodeCrash(150.0, 2),
            NodeRecover(250.0, 2),  # spans the 200 edge
            NodeCrash(300.0, 3),  # opens exactly at the final edge, never heals
        ]
    )
    epoch_s = 100.0
    down = {1: 0.0, 2: 0.0, 3: 0.0}
    for epoch in range(4):
        window = sched.slice(epoch * epoch_s, (epoch + 1) * epoch_s)
        for node, intervals in window.crash_intervals().items():
            for start, end in intervals:
                down[node] += min(end, epoch_s) - start
    assert down == {1: 100.0, 2: 100.0, 3: 100.0}


def test_validate_for_rejects_origin_faults_and_bad_ids():
    topo = star_topology(num_leaves=3, hub_latency_ms=100.0)  # origin = 0
    with pytest.raises(ValueError, match="origin"):
        FaultSchedule([NodeCrash(10.0, topo.origin)]).validate_for(topo)
    with pytest.raises(ValueError, match="origin"):
        FaultSchedule([ReplicaLoss(10.0, topo.origin, 0)]).validate_for(topo)
    with pytest.raises(ValueError, match="out of range"):
        FaultSchedule([NodeCrash(10.0, 99)]).validate_for(topo)
    with pytest.raises(ValueError, match="out of range"):
        FaultSchedule([LinkDegrade(10.0, 1, 99)]).validate_for(topo)
    # Link faults touching the origin are physical and allowed.
    FaultSchedule([LinkDegrade(10.0, topo.origin, 1)]).validate_for(topo)


# -- generators ------------------------------------------------------------


def test_poisson_crashes_deterministic_and_origin_free():
    kwargs = dict(num_nodes=6, duration_s=86400.0, mtbf_s=7200.0, mttr_s=900.0, seed=4)
    a = poisson_crashes(**kwargs)
    b = poisson_crashes(**kwargs)
    assert [ev.sort_key() for ev in a] == [ev.sort_key() for ev in b]
    assert len(a) > 0
    assert all(ev.node != 0 for ev in a)
    c = poisson_crashes(**{**kwargs, "seed": 5})
    assert [ev.sort_key() for ev in a] != [ev.sort_key() for ev in c]


def test_poisson_substreams_stable_when_nodes_added():
    """Adding a node must not reshuffle the faults of existing nodes."""
    small = poisson_crashes(num_nodes=4, duration_s=86400.0, mtbf_s=7200.0, mttr_s=900.0, seed=4)
    large = poisson_crashes(num_nodes=5, duration_s=86400.0, mtbf_s=7200.0, mttr_s=900.0, seed=4)
    keep = [ev.sort_key() for ev in large if ev.node < 4]
    assert keep == [ev.sort_key() for ev in small]


def test_flaky_link_alternates_and_clips_to_duration():
    sched = flaky_link(1, 3, duration_s=86400.0, mean_up_s=3600.0, mean_down_s=600.0, seed=2)
    kinds = [type(ev).__name__ for ev in sched]
    assert kinds[::2] == ["LinkDegrade"] * len(kinds[::2])
    assert kinds[1::2] == ["LinkRestore"] * len(kinds[1::2])
    assert all(ev.time_s < 86400.0 for ev in sched)


def test_correlated_outage_crashes_and_recovers_together():
    sched = correlated_outage([4, 5, 6], start_s=1000.0, outage_s=500.0)
    intervals = sched.crash_intervals()
    assert intervals == {n: [(1000.0, 1500.0)] for n in (4, 5, 6)}


def test_random_replica_loss_respects_excludes():
    sched = random_replica_loss(
        num_nodes=5, num_objects=10, duration_s=86400.0, rate_per_hour=2.0, seed=1
    )
    assert all(isinstance(ev, ReplicaLoss) and ev.node != 0 for ev in sched)


# -- spec grammar ----------------------------------------------------------


def test_parse_faults_composes_clauses():
    sched = parse_faults(
        "crash:node=2,at=100,down=50;loss:node=1,obj=3,at=10",
        num_nodes=4,
        num_objects=8,
        duration_s=3600.0,
    )
    kinds = sorted(type(ev).__name__ for ev in sched)
    assert kinds == ["NodeCrash", "NodeRecover", "ReplicaLoss"]


def test_parse_faults_same_seed_same_schedule():
    kwargs = dict(num_nodes=6, num_objects=8, duration_s=86400.0, seed=9)
    a = parse_faults("poisson:mtbf=7200,mttr=600;lossrate:rate=1", **kwargs)
    b = parse_faults("poisson:mtbf=7200,mttr=600;lossrate:rate=1", **kwargs)
    assert [ev.sort_key() for ev in a] == [ev.sort_key() for ev in b]


@pytest.mark.parametrize(
    "spec",
    [
        "nonsense:x=1",
        "poisson:mtbf=7200",  # missing mttr
        "poisson:mtbf=7200,mttr=600,bogus=1",  # unknown key
        "crash:node=1",  # missing at
        "crash node=1",  # malformed clause
        "",
    ],
)
def test_parse_faults_rejects_bad_specs(spec):
    with pytest.raises(ValueError):
        parse_faults(spec, num_nodes=4, num_objects=4, duration_s=3600.0)
