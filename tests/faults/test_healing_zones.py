"""Zone-aware healing: spread enforcement, anti-affinity, budgets, ordering.

The ordering regressions pin down two races in :class:`HealingPolicy`:

* a node recovering (and restoring its contents) must *cancel* queued
  repairs it satisfied, or the deferred repair fires later and
  over-replicates;
* lost-content bookkeeping must be popped on every recovery — even when
  restoration is skipped — so a later crash/recover cycle of the same node
  cannot replay a previous crash's contents.
"""

import numpy as np
import pytest

from repro.faults import (
    FaultSchedule,
    HealingPolicy,
    NodeCrash,
    NodeRecover,
    ReplicaLoss,
)
from repro.faults.healing import _Repair
from repro.heuristics import LRUCaching
from repro.heuristics.base import PlacementHeuristic
from repro.simulator import simulate
from repro.simulator.engine import Simulator
from repro.topology.generators import line_topology, star_topology
from repro.topology.graph import Topology
from tests.conftest import make_trace


class FixedPlacement(PlacementHeuristic):
    """Places a given replica set at start and never changes it."""

    routing = "global"

    def __init__(self, placements):
        self.placements = placements

    def on_start(self, ctx) -> None:
        for node, obj in self.placements:
            ctx.create_replica(node, obj)


def zoned_line(zones=(0, 0, 1, 1, 2, 2)):
    base = line_topology(num_nodes=len(zones), hop_latency_ms=40.0)
    return Topology(latency=base.latency, zones=np.asarray(zones))


def run_sim(topo, trace, heuristic, faults=None, tlat_ms=150.0):
    sim = Simulator(topo, trace, heuristic, tlat_ms, faults=faults)
    return sim, sim.run()


# -- constructor validation -------------------------------------------------


def test_parameter_validation():
    inner = FixedPlacement([])
    with pytest.raises(ValueError):
        HealingPolicy(inner, min_unique_zones=0)
    with pytest.raises(ValueError):
        HealingPolicy(inner, repair_budget=0)
    with pytest.raises(ValueError):
        HealingPolicy(inner, repair_budget=1, budget_window_s=0.0)


def test_describe_mentions_zones_and_budget():
    text = HealingPolicy(
        FixedPlacement([]), copies=2, min_unique_zones=3,
        repair_budget=5, budget_window_s=600.0,
    ).describe()
    assert "zones>=3" in text
    assert "budget=5/600s" in text


# -- zone-spread enforcement ------------------------------------------------


def test_spread_enforced_at_start():
    """One replica in the origin's zone gets topped up to three zones."""
    topo = zoned_line()
    trace = make_trace([(100, 4, 0)], num_nodes=6, num_objects=1)
    policy = HealingPolicy(FixedPlacement([(1, 0)]), copies=1, min_unique_zones=3)
    sim, result = run_sim(topo, trace, policy)
    holders = {n for n in topo.nodes() if 0 in sim.state.contents(n)}
    holders.add(topo.origin)
    assert len(topo.zones_of(holders)) >= 3
    assert result.healing_creations == 2  # zones 1 and 2 were uncovered


def test_origin_zone_counts_toward_spread():
    """A replica in a different zone than the origin already spans two."""
    topo = zoned_line()
    trace = make_trace([(100, 2, 0)], num_nodes=6, num_objects=1)
    policy = HealingPolicy(FixedPlacement([(2, 0)]), copies=1, min_unique_zones=2)
    sim, result = run_sim(topo, trace, policy)
    assert result.healing_creations == 0  # origin z0 + node2 z1 = 2 zones


def test_unreplicated_objects_not_force_replicated():
    """Spread applies to objects the inner heuristic chose to replicate."""
    topo = zoned_line()
    trace = make_trace([(100, 1, 1)], num_nodes=6, num_objects=2)
    policy = HealingPolicy(FixedPlacement([(1, 0)]), copies=1, min_unique_zones=3)
    sim, _ = run_sim(topo, trace, policy)
    assert not any(1 in sim.state.contents(n) for n in topo.nodes())


def test_local_routing_skips_spread():
    """Remote copies can't serve a local cache; spread would be waste."""
    topo = zoned_line()
    trace = make_trace([(100, 1, 0), (200, 1, 0)], num_nodes=6, num_objects=1)
    policy = HealingPolicy(LRUCaching(2), copies=1, min_unique_zones=3)
    _, result = run_sim(topo, trace, policy)
    assert result.healing_creations == 0


def test_without_zone_map_spread_degrades_to_distinct_nodes():
    topo = line_topology(num_nodes=6, hop_latency_ms=40.0)  # no zones
    trace = make_trace([(100, 4, 0)], num_nodes=6, num_objects=1)
    policy = HealingPolicy(FixedPlacement([(1, 0)]), copies=1, min_unique_zones=3)
    sim, result = run_sim(topo, trace, policy)
    holders = {n for n in topo.nodes() if 0 in sim.state.contents(n)}
    assert len(holders) == 2  # origin + 2 = the 3-"zone" floor
    assert result.healing_creations == 1


# -- anti-affine repair targets ---------------------------------------------
#
# Spread enforcement tops up zone coverage at every interval, so by the
# time a repair fires mid-epoch the only uncovered zone is usually the one
# that just lost its copy — where the lost node itself is also the nearest
# candidate.  The target *ranking* is therefore pinned at unit level.


class _StubState:
    def __init__(self, holders):
        self._holders = set(holders)

    def holders(self, obj):
        return set(self._holders)


class _StubCtx:
    """The slice of SimulationContext that _pick_target consumes."""

    def __init__(self, topo, holders):
        self.topology = topo
        self.num_nodes = topo.num_nodes
        self.state = _StubState(holders)


def test_repair_prefers_uncovered_zone_over_nearer_node():
    """Obj 0 lives in zones {0 (origin), 1}; node 3 lost its copy.  The
    nearest candidate is node 3 itself (latency 0, zone 1 = covered); the
    zone-aware pick jumps to node 4 (zone 2, uncovered) instead."""
    topo = zoned_line()  # zones (0, 0, 1, 1, 2, 2), origin 0
    policy = HealingPolicy(FixedPlacement([]), copies=2, min_unique_zones=3)
    ctx = _StubCtx(topo, holders={2})  # node 2 (zone 1) still holds obj 0
    task = _Repair(obj=0, lost_node=3, lost_at_s=0.0)
    assert policy._pick_target(ctx, task) == 4


def test_repair_reverts_to_nearest_when_spread_satisfied():
    topo = zoned_line()
    policy = HealingPolicy(FixedPlacement([]), copies=2, min_unique_zones=1)
    ctx = _StubCtx(topo, holders={2})
    task = _Repair(obj=0, lost_node=3, lost_at_s=0.0)
    assert policy._pick_target(ctx, task) == 3  # latency 0 to itself


def test_repair_ties_break_on_node_id_within_a_zone():
    topo = zoned_line()
    policy = HealingPolicy(FixedPlacement([]), copies=2, min_unique_zones=3)
    # Holder in zone 2; zones 1 is uncovered.  From lost node 5, nodes 3
    # (zone 1) is nearer than node 1 (zone 0, also covered by the origin).
    ctx = _StubCtx(topo, holders={4})
    task = _Repair(obj=0, lost_node=5, lost_at_s=0.0)
    assert policy._pick_target(ctx, task) == 3


def test_silent_loss_repair_end_to_end():
    """ReplicaLoss keeps the losing node alive, so the repair fires at the
    loss instant and restores the copy count immediately."""
    topo = zoned_line()
    trace = make_trace([(200, 1, 0)], num_nodes=6, num_objects=1)
    faults = FaultSchedule([ReplicaLoss(100.0, 3, 0)])
    policy = HealingPolicy(
        FixedPlacement([(2, 0), (3, 0)]), copies=2, min_unique_zones=1
    )
    sim, result = run_sim(topo, trace, policy, faults=faults)
    assert result.repairs == 1
    assert result.mean_repair_time_s == 0.0  # healed at the loss instant
    holders = {n for n in topo.nodes() if 0 in sim.state.contents(n)}
    assert len(holders) == 2


# -- repair-budget backpressure ---------------------------------------------


def test_budget_defers_without_burning_attempts():
    """Two simultaneous silent losses, budget 1/window: the second repair
    waits for the next window instead of consuming retry attempts."""
    topo = star_topology(num_leaves=4, hub_latency_ms=100.0)
    trace = make_trace(
        [(1100, 1, 0), (1200, 1, 1)], num_nodes=5, num_objects=2
    )
    faults = FaultSchedule([ReplicaLoss(100.0, 1, 0), ReplicaLoss(100.0, 2, 1)])
    # max_retries=0: if deferral burned an attempt, the repair would be
    # abandoned and repairs would stop at 1.
    policy = HealingPolicy(
        FixedPlacement([(1, 0), (2, 1)]),
        copies=1,
        max_retries=0,
        repair_budget=1,
        budget_window_s=1000.0,
    )
    sim, result = run_sim(topo, trace, policy, faults=faults)
    assert result.repairs == 2
    assert sim.stats.failed_heal_attempts == 0
    assert result.healing_creations == 2
    # The deferred repair completed in the next window: its repair time
    # spans the wait (lost at 100, healed at the first post-window pump).
    assert result.mean_repair_time_s * 2 >= 1000.0 - 100.0


def test_budget_caps_spread_creations_per_window():
    topo = zoned_line()
    trace = make_trace([(100, 1, 0)], num_nodes=6, num_objects=1)
    policy = HealingPolicy(
        FixedPlacement([(1, 0)]),
        copies=1,
        min_unique_zones=3,
        repair_budget=1,
        budget_window_s=10_000.0,  # longer than the run: one creation total
    )
    _, result = run_sim(topo, trace, policy)
    assert result.healing_creations == 1


# -- event-ordering regressions ---------------------------------------------


def test_recovery_cancels_queued_repair_it_satisfied():
    """The recovering-node-vs-queued-repair race: node 1 crashes while no
    target survives, recovers (restoring its copy) before the backed-off
    repair becomes due — the repair must be cancelled, not fire later and
    over-replicate."""
    topo = star_topology(num_leaves=3, hub_latency_ms=100.0)
    trace = make_trace([(500, 2, 0), (600, 3, 0)], num_nodes=4, num_objects=1)
    faults = FaultSchedule(
        [
            NodeCrash(50.0, 2),
            NodeCrash(50.0, 3),
            NodeCrash(100.0, 1),  # loses the only replica; no live target
            NodeRecover(120.0, 1),  # restores it before the repair retries
            NodeRecover(200.0, 2),
            NodeRecover(200.0, 3),
        ]
    )
    policy = HealingPolicy(
        FixedPlacement([(1, 0)]), copies=1, backoff_s=60.0
    )
    sim, result = run_sim(topo, trace, policy, faults=faults)
    holders = [n for n in topo.nodes() if 0 in sim.state.contents(n)]
    assert holders == [1], f"over-replicated to {holders}"
    assert result.repairs == 0  # the queued repair never fired
    assert result.healing_creations == 1  # only the recovery restore


def test_recovery_bookkeeping_popped_even_when_restore_skipped():
    """When the copy count is already satisfied at recovery, restoration is
    skipped — but the lost-content entry must still be popped, or a later
    crash/recover cycle of the same node would replay the stale contents."""
    topo = star_topology(num_leaves=3, hub_latency_ms=100.0)
    trace = make_trace([(500, 2, 0)], num_nodes=4, num_objects=1)
    faults = FaultSchedule([NodeCrash(100.0, 1), NodeRecover(300.0, 1)])
    # Three holders, copies=2: after the crash two live copies remain, so
    # neither the repair queue nor the recovery restore has work to do.
    policy = HealingPolicy(
        FixedPlacement([(1, 0), (2, 0), (3, 0)]), copies=2
    )
    sim, result = run_sim(topo, trace, policy, faults=faults)
    assert policy._lost_contents == {}
    assert 0 not in sim.state.contents(1)  # restoration really was skipped
    assert result.repairs == 0
    assert result.healing_creations == 0


def test_restore_off_pops_bookkeeping_too():
    topo = star_topology(num_leaves=3, hub_latency_ms=100.0)
    trace = make_trace([(500, 2, 0)], num_nodes=4, num_objects=1)
    faults = FaultSchedule([NodeCrash(100.0, 1), NodeRecover(300.0, 1)])
    policy = HealingPolicy(
        FixedPlacement([(1, 0)]), copies=1, restore_on_recovery=False
    )
    _, _ = run_sim(topo, trace, policy, faults=faults)
    assert policy._lost_contents == {}


# -- determinism across the new knobs ---------------------------------------


def test_zone_aware_runs_deterministic(small_topology, web_trace):
    from repro.faults import zone_outages

    zones = np.arange(8) % 3
    topo = Topology(
        latency=small_topology.latency,
        origin=small_topology.origin,
        populations=small_topology.populations,
        zones=zones,
    )
    faults = zone_outages(
        zones, web_trace.duration_s, mtbf_s=4 * 3600, mttr_s=900, seed=11
    )
    results = [
        simulate(
            topo,
            web_trace,
            HealingPolicy(
                FixedPlacement([(1, 0), (2, 1)]),
                copies=2,
                min_unique_zones=2,
                repair_budget=4,
                budget_window_s=1800.0,
            ),
            faults=faults,
            tlat_ms=150.0,
        )
        for _ in range(2)
    ]
    assert results[0].to_dict() == results[1].to_dict()
