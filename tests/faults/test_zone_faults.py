"""Zone-correlated fault generators, spec clauses, and schedule slicing."""

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.faults import (
    FaultSchedule,
    LinkDegrade,
    LinkRestore,
    NodeCrash,
    NodeRecover,
    parse_faults,
    poisson_crashes,
    zone_outages,
    zone_partition,
)
from repro.topology.generators import line_topology
from repro.topology.graph import Topology

ZONES = [0, 0, 1, 1, 2, 2]


def zoned_topology():
    base = line_topology(num_nodes=6, hop_latency_ms=40.0)
    return Topology(latency=base.latency, zones=np.asarray(ZONES))


class TestZoneOutages:
    def test_deterministic_in_seed(self):
        a = zone_outages(ZONES, 86400.0, 7200.0, 900.0, seed=5)
        b = zone_outages(ZONES, 86400.0, 7200.0, 900.0, seed=5)
        assert a.events == b.events
        c = zone_outages(ZONES, 86400.0, 7200.0, 900.0, seed=6)
        assert a.events != c.events

    def test_zone_members_crash_and_recover_together(self):
        sched = zone_outages(ZONES, 86400.0, 7200.0, 900.0, seed=1)
        crashes = [e for e in sched.events if isinstance(e, NodeCrash)]
        assert crashes, "expected at least one outage over a day"
        by_time = {}
        for e in crashes:
            by_time.setdefault(e.time_s, set()).add(e.node)
        zone_map = np.asarray(ZONES)
        for nodes in by_time.values():
            zones_hit = {int(zone_map[n]) for n in nodes}
            assert len(zones_hit) == 1, "one crash instant spans one zone"
            members = set(
                int(n) for n in np.flatnonzero(zone_map == zones_hit.pop())
            ) - {0}
            assert nodes == members, "the whole (non-excluded) zone goes down"

    def test_origin_excluded_by_default(self):
        sched = zone_outages(ZONES, 86400.0, 3600.0, 600.0, seed=2)
        assert all(
            e.node != 0
            for e in sched.events
            if isinstance(e, (NodeCrash, NodeRecover))
        )

    def test_substream_disjoint_from_poisson_crashes(self):
        zoned = zone_outages(ZONES, 86400.0, 7200.0, 900.0, seed=3)
        independent = poisson_crashes(6, 86400.0, 7200.0, 900.0, seed=3)
        assert zoned.events != independent.events

    def test_bad_zone_map_rejected(self):
        with pytest.raises(ValidationError):
            zone_outages([0, -1, 1], 3600.0, 600.0, 60.0)


class TestZonePartition:
    def test_partitions_only_cross_zone_links(self):
        sched = zone_partition(ZONES, 1, start_s=100.0, outage_s=50.0)
        degrades = [e for e in sched.events if isinstance(e, LinkDegrade)]
        members, outsiders = {2, 3}, {0, 1, 4, 5}
        touched = {(e.a, e.b) for e in degrades}
        assert touched == {(a, b) for a in members for b in outsiders}
        assert all(math.isinf(e.factor) for e in degrades)
        restores = [e for e in sched.events if isinstance(e, LinkRestore)]
        assert len(restores) == len(degrades)
        assert all(e.time_s == 150.0 for e in restores)

    def test_recurring_storm_generates_multiple_windows(self):
        sched = zone_partition(
            ZONES, 2, start_s=0.0, outage_s=100.0, duration_s=1000.0, every_s=250.0
        )
        starts = sorted({e.time_s for e in sched.events if isinstance(e, LinkDegrade)})
        assert starts == [0.0, 250.0, 500.0, 750.0]

    def test_recurrence_must_exceed_outage(self):
        with pytest.raises(ValueError):
            zone_partition(
                ZONES, 0, start_s=0.0, outage_s=300.0, duration_s=1000.0, every_s=100.0
            )

    def test_empty_zone_rejected(self):
        with pytest.raises(ValidationError):
            zone_partition(ZONES, 9, start_s=0.0, outage_s=10.0)


class TestZoneSpecClauses:
    def kwargs(self, **extra):
        base = dict(
            num_nodes=6, num_objects=8, duration_s=86400.0, origin=0, seed=4
        )
        base.update(extra)
        return base

    def test_zoneout_clause_parses(self):
        sched = parse_faults(
            "zoneout:mtbf=7200,mttr=900", zones=ZONES, **self.kwargs()
        )
        expected = zone_outages(ZONES, 86400.0, 7200.0, 900.0, seed=4)
        assert sched.events == expected.events

    def test_zonepart_clause_parses(self):
        sched = parse_faults(
            "zonepart:zone=1,at=600,down=300", zones=ZONES, **self.kwargs()
        )
        expected = zone_partition(
            ZONES, 1, start_s=600.0, outage_s=300.0, duration_s=86400.0
        )
        assert sched.events == expected.events

    def test_zone_clause_without_zone_map_rejected(self):
        with pytest.raises(ValidationError, match="needs a zone map"):
            parse_faults("zoneout:mtbf=7200,mttr=900", **self.kwargs())
        with pytest.raises(ValidationError, match="needs a zone map"):
            parse_faults("zonepart:zone=1,at=0,down=60", **self.kwargs())

    def test_zone_clause_composes_with_plain_clauses(self):
        sched = parse_faults(
            "poisson:mtbf=7200,mttr=900;zonepart:zone=2,at=600,down=300",
            zones=ZONES,
            **self.kwargs(),
        )
        assert any(isinstance(e, NodeCrash) for e in sched.events)
        assert any(isinstance(e, LinkDegrade) for e in sched.events)

    def test_validate_for_accepts_zoned_schedule(self):
        topo = zoned_topology()
        sched = parse_faults(
            "zoneout:mtbf=7200,mttr=900", zones=topo.zones, **self.kwargs()
        )
        assert sched.validate_for(topo) is sched


class TestScheduleSlice:
    def test_slice_rebases_and_carries_open_crash(self):
        sched = FaultSchedule(
            [NodeCrash(100.0, 3), NodeRecover(700.0, 3), NodeCrash(900.0, 2)]
        )
        window = sched.slice(500.0, 1000.0)
        kinds = [(type(e).__name__, e.time_s, e.node) for e in window.events]
        assert ("NodeCrash", 0.0, 3) in kinds, "open crash carried in at t=0"
        assert ("NodeRecover", 200.0, 3) in kinds
        assert ("NodeCrash", 400.0, 2) in kinds

    def test_slice_drops_zero_length_closed_faults(self):
        sched = FaultSchedule([NodeCrash(100.0, 1), NodeRecover(400.0, 1)])
        window = sched.slice(500.0, 900.0)
        assert len(window) == 0

    def test_sliced_epochs_cover_the_full_storm(self):
        sched = zone_partition(
            ZONES, 1, start_s=0.0, outage_s=600.0, duration_s=7200.0, every_s=1800.0
        )
        total_degrades = sum(
            1 for e in sched.events if isinstance(e, LinkDegrade)
        )
        sliced = sum(
            1
            for k in range(4)
            for e in sched.slice(k * 1800.0, (k + 1) * 1800.0).events
            if isinstance(e, LinkDegrade)
        )
        assert sliced == total_degrades
