"""End-to-end chaos campaign: supervised restarts, invariants, report artifact.

One real campaign run (baseline + ``repro serve`` subprocess under load with
an injected crash and a torn checkpoint) — the same compound scenario CI's
chaos-campaign job executes, shrunk to stay test-suite friendly.
"""

from __future__ import annotations

import json

import pytest

from repro.chaos import CampaignReport, run_campaign
from repro.errors import ValidationError

PLAN = (
    "flashcrowd:epochs=1-2,object=0,mult=8;"
    "zonepart:zone=1,at=900,down=900;"
    "crash:epoch=2;"
    "corrupt_checkpoint:at=1;"
    "slow:p=0.5,ms=120"
)


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("campaign")
    report = run_campaign(
        PLAN,
        workdir,
        epochs=4,
        epoch_interval_s=0.2,
        requests_per_epoch=200,
        num_objects=8,
        load_burst_s=0.4,
    )
    return workdir, report


def test_campaign_passes_every_invariant(campaign):
    _, report = campaign
    failed = {
        name: entry["detail"]
        for name, entry in report.invariants.items()
        if not entry["ok"]
    }
    assert report.passed, f"failed invariants: {failed}"
    assert set(report.invariants) == {
        "service_completed",
        "no_silent_loss",
        "byte_identical_recovery",
        "slo_met",
        "audit_clean",
        "overload_adaptation",
    }


def test_campaign_supervised_the_injected_crash(campaign):
    _, report = campaign
    assert report.restarts >= 1
    assert len(report.launches) == report.restarts + 1
    assert report.launches[0]["exit"] == 57
    assert report.launches[-1]["exit"] == 0
    # Restart launches carry the plan minus its one-shot faults.
    assert "crash:epoch" not in (report.launches[-1]["chaos"] or "")


def test_campaign_recovery_is_byte_identical(campaign):
    _, report = campaign
    assert report.baseline_digest
    assert report.baseline_digest == report.recovered_digest


def test_campaign_accounts_every_request(campaign):
    _, report = campaign
    assert report.load["issued"] > 0
    assert report.load["lost"] == 0
    assert sum(report.brownout.values()) > 0


def test_campaign_writes_report_artifact(campaign):
    workdir, report = campaign
    payload = json.loads((workdir / "report.json").read_text())
    assert payload == report.to_dict()
    assert payload["passed"] is True
    assert (workdir / "serve-1.log").exists()
    # Human-readable rendering mentions every invariant.
    rendered = report.render()
    for name in report.invariants:
        assert name in rendered


def test_campaign_rejects_a_malformed_plan(tmp_path):
    with pytest.raises(ValidationError, match="drop:p=2.0"):
        run_campaign("drop:p=2.0", tmp_path)
    assert not (tmp_path / "report.json").exists()


def test_report_fails_closed_with_no_invariants():
    assert not CampaignReport(spec="x").passed
