"""Chaos-plan grammar: parsing, layer routing, shims, deterministic draws."""

from __future__ import annotations

import pytest

from repro.chaos import (
    ChaosPlan,
    TaskChaos,
    chaos_draw,
    parse_plan,
    plan_from_service_env,
    plan_from_task_env,
)
from repro.errors import ValidationError
from repro.service.chaos import ServiceChaos

COMPOUND = (
    "crash:p=0.05,seed=9;"
    "drop:p=0.2;"
    "slow:p=0.1,ms=50,epochs=1-3;"
    "crash:epoch=2;"
    "crash:checkpoint=3;"
    "corrupt_checkpoint:at=1,mode=snapshot;"
    "zoneout:zone=1,at=100,down=50;"
    "crash:node=2,at=10,down=5;"
    "flashcrowd:epochs=0-1,object=2,mult=5"
)


# -- parsing and routing ----------------------------------------------------


def test_compound_plan_routes_every_layer():
    plan = parse_plan(COMPOUND)
    assert plan.task_fail == 0.05 and plan.task_seed == 9
    assert plan.drop == 0.2 and plan.drop_window is None
    assert plan.slow == 0.1 and plan.slow_ms == 50.0
    assert plan.slow_window == (1, 3)
    assert plan.crash_at_epoch == 2
    assert plan.crash_checkpoint_at == 3
    assert plan.corrupt_at == 1 and plan.corrupt_mode == "snapshot"
    assert plan.fault_spec() == "zoneout:zone=1,at=100,down=50;crash:node=2,at=10,down=5"
    assert plan.workload_spec() == "flashcrowd:epochs=0-1,object=2,mult=5"


def test_shorthand_expands_to_primary_key():
    assert parse_plan("crash=0.5").task_fail == 0.5
    assert parse_plan("drop=0.25").drop == 0.25
    assert parse_plan("slow=0.1").slow == 0.1
    assert parse_plan("corrupt_checkpoint=2").corrupt_at == 2
    assert parse_plan("flashcrowd=8").workload_clauses == ("flashcrowd:mult=8",)


def test_crash_clause_disambiguates_by_key():
    assert parse_plan("crash:p=0.3").task_fail == 0.3
    assert parse_plan("crash:epoch=4").crash_at_epoch == 4
    assert parse_plan("crash:checkpoint=1").crash_checkpoint_at == 1
    # node= routes to the topology fault layer verbatim.
    plan = parse_plan("crash:node=3,at=10,down=5")
    assert plan.fault_clauses == ("crash:node=3,at=10,down=5",)
    assert plan.task_fail == 0.0 and plan.crash_at_epoch == -1


def test_epoch_window_single_value_and_range():
    assert parse_plan("drop:p=0.1,epochs=2").drop_window == (2, 2)
    assert parse_plan("drop:p=0.1,epochs=2-5").drop_window == (2, 5)


@pytest.mark.parametrize(
    "spec, fragment",
    [
        ("", "empty chaos plan"),
        ("frob=1", "frob=1"),
        ("nonsense:x=1", "nonsense:x=1"),
        ("crash", "crash"),
        ("crash:wat=1", "crash:wat=1"),
        ("drop:p=2.0", "drop:p=2.0"),
        ("slow:p=0.1,ms=abc", "ms='abc'"),
        ("slow:p=0.1,epochs=3-1", "epochs window"),
        ("drop:p=0.1,bogus=2", "bogus"),
        ("corrupt_checkpoint:at=1,mode=sideways", "mode"),
        ("flashcrowd:epochs=1-2,object=0,mult=-3", "mult"),
    ],
)
def test_bad_clause_raises_naming_the_clause(spec, fragment):
    with pytest.raises(ValidationError) as excinfo:
        parse_plan(spec)
    assert fragment in str(excinfo.value)


def test_validation_error_is_a_value_error():
    with pytest.raises(ValueError):
        parse_plan("drop:p=2.0")


# -- layer projections ------------------------------------------------------


def test_unaddressed_layers_project_to_none():
    plan = parse_plan("zoneout:zone=1,at=100,down=50")
    assert plan.task_chaos() is None
    assert plan.service_chaos() is None
    assert plan.workload_spec() is None
    assert plan.service_spec() is None


def test_service_projection_carries_all_fields():
    chaos = parse_plan(COMPOUND).service_chaos()
    assert isinstance(chaos, ServiceChaos)
    assert chaos.drop == 0.2
    assert chaos.slow == 0.1 and chaos.slow_ms == 50.0
    assert chaos.slow_window == (1, 3)
    assert chaos.crash_at_epoch == 2
    assert chaos.crash_checkpoint_at == 3
    assert chaos.corrupt_checkpoint_at == 1
    assert chaos.corrupt_mode == "snapshot"


def test_task_projection():
    chaos = parse_plan("crash:p=0.4,seed=11").task_chaos()
    assert chaos == TaskChaos(fail=0.4, seed=11)


def test_service_spec_keeps_only_service_and_checkpoint_clauses():
    spec = parse_plan(COMPOUND).service_spec()
    plan = parse_plan(spec)
    assert plan.drop == 0.2 and plan.slow == 0.1
    assert plan.crash_at_epoch == 2 and plan.corrupt_at == 1
    assert plan.task_fail == 0.0
    assert plan.fault_clauses == () and plan.workload_clauses == ()


def test_without_one_shots_strips_crashes_and_corruption_only():
    healed = parse_plan(COMPOUND).without_one_shots()
    assert healed.crash_at_epoch == -1
    assert healed.crash_checkpoint_at == -1
    assert healed.corrupt_at == -1
    # Probabilistic and non-service clauses survive.
    assert healed.task_fail == 0.05
    assert healed.drop == 0.2 and healed.slow == 0.1
    assert healed.fault_clauses != () and healed.workload_clauses != ()


def test_without_one_shots_of_pure_one_shot_plan_is_empty():
    healed = parse_plan("crash:epoch=2;corrupt_checkpoint:at=1").without_one_shots()
    assert healed == ChaosPlan()


def test_describe_is_json_safe_and_round_trips_clauses():
    plan = parse_plan(COMPOUND)
    described = plan.describe()
    assert described["clauses"] == list(plan.clauses)
    assert parse_plan(";".join(described["clauses"])) == plan


# -- deterministic draws ----------------------------------------------------


def test_chaos_draw_deterministic_and_sensitive_to_every_input():
    assert chaos_draw(1, "site", 0) == chaos_draw(1, "site", 0)
    assert 0.0 <= chaos_draw(1, "site", 0) < 1.0
    assert chaos_draw(1, "site", 0) != chaos_draw(2, "site", 0)
    assert chaos_draw(1, "site", 0) != chaos_draw(1, "other", 0)
    assert chaos_draw(1, "site", 0) != chaos_draw(1, "site", 1)


def test_windowed_injection_only_fires_inside_the_window():
    chaos = parse_plan("drop:p=1.0,epochs=2-3").service_chaos()
    assert not chaos.should_drop(0, epoch=1)
    assert chaos.should_drop(0, epoch=2)
    assert chaos.should_drop(0, epoch=3)
    assert not chaos.should_drop(0, epoch=4)
    # Unknown epoch with a window configured: fail closed (no injection).
    assert not chaos.should_drop(0, epoch=None)


# -- legacy-grammar shims ---------------------------------------------------


def test_task_env_legacy_and_plan_grammars_agree():
    legacy = plan_from_task_env("fail=0.25,seed=3")
    modern = plan_from_task_env("crash:p=0.25,seed=3")
    assert legacy.task_chaos() == modern.task_chaos() == TaskChaos(0.25, 3)


def test_task_env_fail_zero_is_inert():
    assert plan_from_task_env("fail=0,seed=3").task_chaos() is None


@pytest.mark.parametrize("raw", ["fail=lots", "nope=1", "fail=1.5", "fail"])
def test_task_env_rejects_garbage(raw):
    with pytest.raises(ValidationError):
        plan_from_task_env(raw)


def test_service_env_legacy_and_plan_grammars_agree():
    legacy = plan_from_service_env(
        "drop=0.1,slow=0.2,slow_ms=250,crash_at_epoch=2,crash_checkpoint_at=1,seed=5"
    )
    modern = plan_from_service_env(
        "drop:p=0.1,seed=5;slow:p=0.2,ms=250;crash:epoch=2;crash:checkpoint=1"
    )
    assert legacy.service_chaos() == modern.service_chaos()
    assert legacy.service_chaos().seed == 5


def test_service_env_rejects_non_service_clauses():
    with pytest.raises(ValidationError, match="not a service-layer clause"):
        plan_from_service_env("zoneout:zone=1,at=10,down=5")
    with pytest.raises(ValidationError, match="not a service-layer clause"):
        plan_from_service_env("crash:p=0.5")


def test_service_env_empty_legacy_spec_is_inert():
    assert plan_from_service_env("drop=0,slow=0").service_chaos() is None
