"""Tests for provisioned-cost accounting and the sizing searches."""

import pytest

from repro.heuristics.caching import LRUCaching
from repro.heuristics.qiu import QiuGreedyPlacement
from repro.simulator.engine import simulate
from repro.simulator.metrics import heuristic_cost
from repro.simulator.sizing import min_capacity_for_goal, min_replicas_for_goal
from repro.topology.generators import star_topology
from repro.workload.generators import group_workload
from tests.conftest import make_trace


def far_star():
    return star_topology(num_leaves=2, hub_latency_ms=200.0)


@pytest.fixture(scope="module")
def sim_result():
    topo = far_star()
    trace = make_trace([(10, 1, 0), (20, 1, 0)], num_nodes=3, num_objects=2)
    return simulate(topo, trace, LRUCaching(1), tlat_ms=150.0)


def test_raw_mode(sim_result):
    cost = heuristic_cost(sim_result, mode="raw")
    assert cost.storage == pytest.approx(sim_result.storage_cost)
    assert cost.creation == pytest.approx(sim_result.creation_cost)
    assert cost.total == pytest.approx(sim_result.total_cost)


def test_sc_mode_charges_provisioned_capacity(sim_result):
    cost = heuristic_cost(
        sim_result, mode="sc", num_nodes=2, num_intervals=24, capacity=3
    )
    assert cost.storage == pytest.approx(2 * 24 * 3)
    assert cost.creation == pytest.approx(sim_result.creation_cost)


def test_rc_mode_charges_replication_factor(sim_result):
    cost = heuristic_cost(
        sim_result, mode="rc", num_intervals=24, replicas=2, num_objects=10
    )
    assert cost.storage == pytest.approx(24 * 10 * 2)


def test_mode_parameter_validation(sim_result):
    with pytest.raises(ValueError):
        heuristic_cost(sim_result, mode="sc")
    with pytest.raises(ValueError):
        heuristic_cost(sim_result, mode="sc", num_intervals=24)
    with pytest.raises(ValueError):
        heuristic_cost(sim_result, mode="rc", num_intervals=24)
    with pytest.raises(ValueError):
        heuristic_cost(sim_result, mode="nonsense")


@pytest.fixture(scope="module")
def dense_setting():
    topo = star_topology(num_leaves=4, hub_latency_ms=200.0)
    trace = group_workload(num_nodes=5, num_objects=10, requests_scale=0.002, seed=1)
    return topo, trace


def test_min_capacity_search_finds_minimum(dense_setting):
    topo, trace = dense_setting
    sizing = min_capacity_for_goal(
        lambda c: LRUCaching(c), topo, trace, tlat_ms=150.0, fraction=0.8,
        warmup_s=trace.duration_s / 8,
    )
    assert sizing.feasible
    assert sizing.value is not None
    assert sizing.result.meets(0.8)
    if sizing.value > 0:
        smaller = simulate(
            topo, trace, LRUCaching(sizing.value - 1), tlat_ms=150.0,
            warmup_s=trace.duration_s / 8,
        )
        assert not smaller.meets(0.8)


def test_min_capacity_infeasible_goal(dense_setting):
    topo, trace = dense_setting
    sizing = min_capacity_for_goal(
        lambda c: LRUCaching(c), topo, trace, tlat_ms=150.0, fraction=0.99999
    )
    assert not sizing.feasible
    assert sizing.value is None


def test_min_replicas_search(dense_setting):
    topo, trace = dense_setting
    sizing = min_replicas_for_goal(
        lambda r: QiuGreedyPlacement(r, period_s=trace.duration_s / 8),
        topo,
        trace,
        tlat_ms=150.0,
        fraction=0.6,
        per_user=False,  # star leaves are isolated; judge the overall QoS
        warmup_s=trace.duration_s / 8,
    )
    assert sizing.feasible
    assert 0 < sizing.value <= 4


def test_sizing_zero_suffices_when_origin_near():
    topo = star_topology(num_leaves=2, hub_latency_ms=100.0)
    trace = make_trace([(10, 1, 0), (20, 2, 0)], num_nodes=3, num_objects=1)
    sizing = min_capacity_for_goal(
        lambda c: LRUCaching(c), topo, trace, tlat_ms=150.0, fraction=1.0
    )
    assert sizing.feasible
    assert sizing.value == 0


def test_sizing_str(dense_setting):
    topo, trace = dense_setting
    sizing = min_capacity_for_goal(
        lambda c: LRUCaching(c), topo, trace, tlat_ms=150.0, fraction=0.99999
    )
    assert "no feasible size" in str(sizing)
