"""Epoch-driven continuous placement: handoff, migration, shedding, SLO.

Ends with the PR's acceptance contract: a seeded fault storm where plain
placement (and plain copy-count healing) violates a 99 % availability SLO
while zone-aware healing on the *same* schedule meets it in every epoch,
with replicas spread across the required zones and migration accounted
separately from serve cost.
"""

import numpy as np
import pytest

from repro.faults import (
    AvailabilitySLO,
    FaultSchedule,
    HealingPolicy,
    zone_partition,
)
from repro.heuristics import LRUCaching, QiuGreedyPlacement
from repro.heuristics.base import PlacementHeuristic
from repro.simulator import run_continuous, shed_to_capacity
from repro.simulator.continuous import ContinuousResult, EpochReport
from repro.topology.graph import Topology
from repro.workload.drift import drifting_traces


class FixedPlacement(PlacementHeuristic):
    routing = "global"

    def __init__(self, placements):
        self.placements = placements

    def on_start(self, ctx) -> None:
        for node, obj in self.placements:
            ctx.create_replica(node, obj)


# -- shed_to_capacity -------------------------------------------------------


class TestShedToCapacity:
    def test_none_capacity_keeps_everything(self):
        kept, shed = shed_to_capacity([(2, 1), (1, 0)], None)
        assert kept == [(1, 0), (2, 1)]
        assert shed == 0

    def test_sheds_lowest_value_first(self):
        value = {(1, 0): 5.0, (1, 1): 1.0, (1, 2): 3.0}
        kept, shed = shed_to_capacity([(1, 0), (1, 1), (1, 2)], 2, value)
        assert kept == [(1, 0), (1, 2)]
        assert shed == 1

    def test_value_ties_drop_highest_object_id(self):
        kept, shed = shed_to_capacity([(1, 0), (1, 1), (1, 2)], 2)
        assert kept == [(1, 0), (1, 1)]
        assert shed == 1

    def test_per_node_capacity_independent(self):
        placement = [(1, 0), (1, 1), (2, 0)]
        kept, shed = shed_to_capacity(placement, 1, {(1, 1): 9.0})
        assert kept == [(1, 1), (2, 0)]
        assert shed == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            shed_to_capacity([(1, 0)], -1)


# -- the epoch loop ---------------------------------------------------------


def three_zone_topology():
    """6 nodes in zones {0}, {1,2}, {3,4,5}: 20 ms within a zone, 120 ms
    across — so a 60 ms threshold needs an intra-zone replica."""
    n = 6
    zones = np.array([0, 1, 1, 2, 2, 2])
    lat = np.full((n, n), 120.0)
    for a in range(n):
        for b in range(n):
            if zones[a] == zones[b]:
                lat[a][b] = 20.0
        lat[a][a] = 0.0
    return Topology(
        latency=lat,
        origin=0,
        populations=np.array([1.0, 1.0, 1.0, 5.0, 5.0, 5.0]),
        zones=zones,
    )


def steady_traces(epochs=3, drift=0.0, seed=3):
    return drifting_traces(
        6,
        8,
        epochs=epochs,
        epoch_s=3600.0,
        requests_per_epoch=600,
        drift=drift,
        populations=[0.5, 1.0, 1.0, 8.0, 8.0, 8.0],
        seed=seed,
    )


def qiu_factory():
    return QiuGreedyPlacement(1, period_s=600.0, tlat_ms=60.0)


def test_epoch_zero_migration_counts_the_initial_fill():
    topo = three_zone_topology()
    result = run_continuous(
        topo,
        steady_traces(epochs=1),
        qiu_factory,
        tlat_ms=150.0,
        object_size_bytes=4.0,
    )
    assert len(result.epochs) == 1
    assert result.epochs[0].migration_bytes == 4.0 * result.epochs[0].placement_size


def test_no_drift_no_faults_migration_converges_to_zero():
    topo = three_zone_topology()
    result = run_continuous(
        topo, steady_traces(epochs=3, drift=0.0), qiu_factory, tlat_ms=150.0
    )
    assert result.epochs[0].migration_bytes > 0
    for epoch in result.epochs[1:]:
        assert epoch.migration_bytes == 0.0, "steady state must not migrate"


def test_drift_forces_migration():
    """Demand sliding from zone 1 toward zone 2 moves the placement with it."""
    topo = three_zone_topology()

    def traces(drift):
        return drifting_traces(
            6, 8, epochs=3, epoch_s=3600.0, requests_per_epoch=600,
            drift=drift, populations=[0.5, 8.0, 8.0, 1.0, 1.0, 1.0], seed=3,
        )

    def responsive():
        return QiuGreedyPlacement(
            1, period_s=600.0, tlat_ms=60.0, history_window=1
        )

    steady = run_continuous(topo, traces(0.0), responsive, tlat_ms=150.0)
    drifting = run_continuous(topo, traces(0.5), responsive, tlat_ms=150.0)
    later = lambda r: sum(e.migration_bytes for e in r.epochs[1:])
    assert later(steady) == 0.0
    assert later(drifting) > 0.0


def test_adopted_replicas_charge_no_creation_cost():
    """The carried placement is adopted, not re-created: a steady run's
    later epochs spend (almost) no creations on what they inherited."""
    topo = three_zone_topology()
    result = run_continuous(
        topo, steady_traces(epochs=2, drift=0.0), qiu_factory, tlat_ms=150.0
    )
    first, second = result.epochs
    assert first.creations >= first.placement_size
    assert second.creations == 0, "inherited replicas are free"


def test_capacity_shedding_reported_and_bounded():
    topo = three_zone_topology()
    result = run_continuous(
        topo,
        steady_traces(epochs=2, drift=0.0),
        lambda: FixedPlacement([(1, o) for o in range(4)]),
        tlat_ms=150.0,
        capacity=2,
    )
    assert result.epochs[0].shed_replicas == 0  # nothing carried yet
    assert result.epochs[1].shed_replicas == 2  # 4 carried, capacity 2
    assert result.epochs[1].placement_size <= 4


def test_empty_trace_list_rejected():
    with pytest.raises(ValueError):
        run_continuous(three_zone_topology(), [], qiu_factory, tlat_ms=150.0)


def test_mismatched_object_universe_rejected():
    traces = steady_traces(epochs=1) + drifting_traces(
        6, 5, epochs=1, epoch_s=3600.0, requests_per_epoch=100
    )
    with pytest.raises(ValueError):
        run_continuous(three_zone_topology(), traces, qiu_factory, tlat_ms=150.0)


def test_result_round_trips_through_dict():
    topo = three_zone_topology()
    result = run_continuous(
        topo,
        steady_traces(epochs=2),
        qiu_factory,
        tlat_ms=150.0,
        slo=AvailabilitySLO(0.99),
    )
    back = ContinuousResult.from_dict(result.to_dict())
    assert back.to_dict() == result.to_dict()
    assert back.serve_cost == result.serve_cost
    assert back.slo_target == 0.99
    assert isinstance(back.epochs[0], EpochReport)
    assert back.final_placement == result.final_placement


# -- the acceptance contract ------------------------------------------------


def storm():
    """Zone 1 is partitioned for 20 minutes in every hour-long epoch."""
    zones = three_zone_topology().zones
    return zone_partition(
        zones, 1, start_s=1200.0, outage_s=1200.0,
        duration_s=3 * 3600.0, every_s=3600.0,
    )


def continuous_under_storm(heuristic_factory):
    return run_continuous(
        three_zone_topology(),
        steady_traces(epochs=3, drift=0.1),
        heuristic_factory,
        tlat_ms=150.0,
        faults=storm(),
        slo=AvailabilitySLO(0.99),
    )


@pytest.fixture(scope="module")
def acceptance():
    baseline = continuous_under_storm(qiu_factory)
    plain_heal = continuous_under_storm(
        lambda: HealingPolicy(qiu_factory(), copies=1)
    )
    zone_aware = continuous_under_storm(
        lambda: HealingPolicy(qiu_factory(), copies=1, min_unique_zones=3)
    )
    return baseline, plain_heal, zone_aware

def test_baseline_violates_the_slo_under_the_storm(acceptance):
    baseline, _, _ = acceptance
    assert baseline.slo_target == 0.99
    assert baseline.slo_violations >= 1
    assert baseline.worst_epoch_availability < 0.99
    assert baseline.final_unique_zones < 3


def test_plain_copy_count_healing_does_not_save_the_slo(acceptance):
    """Copy-count healing without zone awareness re-replicates inside the
    already-covered zones; the partitioned zone still starves."""
    _, plain_heal, _ = acceptance
    assert plain_heal.slo_violations >= 1


def test_zone_aware_healing_meets_the_slo_on_the_same_schedule(acceptance):
    baseline, _, zone_aware = acceptance
    assert zone_aware.slo_violations == 0
    assert zone_aware.worst_epoch_availability >= 0.99
    assert zone_aware.final_unique_zones >= 3
    # Spread costs replicas: serve cost rises, and the extra placements
    # show up as migration traffic — reported separately, not folded in.
    assert zone_aware.migration_bytes > baseline.migration_bytes
    assert zone_aware.serve_cost > baseline.serve_cost


def test_migration_reported_separately_from_serve_cost(acceptance):
    _, _, zone_aware = acceptance
    assert zone_aware.migration_bytes > 0
    for epoch in zone_aware.epochs:
        assert epoch.migration_bytes >= 0
        assert epoch.serve_cost == pytest.approx(
            sum(e.serve_cost for e in zone_aware.epochs if e.index == epoch.index)
        )
    # Serve cost is finite and does not include the byte counter.
    assert zone_aware.serve_cost != zone_aware.migration_bytes


def test_acceptance_runs_are_deterministic(acceptance):
    _, _, zone_aware = acceptance
    again = continuous_under_storm(
        lambda: HealingPolicy(qiu_factory(), copies=1, min_unique_zones=3)
    )
    assert again.to_dict() == zone_aware.to_dict()


def test_audit_passes_on_acceptance_results(acceptance):
    from repro.audit import audit_continuous_result

    for result in acceptance:
        report = audit_continuous_result(result, mode="full")
        assert report.ok, report.render()


def test_audit_flags_corrupted_continuous_result(acceptance):
    from repro.audit import audit_continuous_result

    baseline, _, _ = acceptance
    corrupted = ContinuousResult.from_dict(baseline.to_dict())
    corrupted.epochs[0].availability = 1.5
    report = audit_continuous_result(corrupted, mode="fast")
    assert not report.ok


def test_local_routing_heuristic_runs_through_the_loop():
    """Caching heuristics (local routing) survive adoption epochs too."""
    topo = three_zone_topology()
    result = run_continuous(
        topo,
        steady_traces(epochs=2, drift=0.2),
        lambda: LRUCaching(4),
        tlat_ms=150.0,
        faults=storm(),
    )
    assert len(result.epochs) == 2
    assert result.reads > 0
