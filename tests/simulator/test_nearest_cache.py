"""Property tests for the nearest-live-replica serve cache (ISSUE 4).

``ReplicaState.best_latency`` answers fault-free global-scope reads from an
incrementally maintained cache; ``scan_latency`` is the full-scan oracle
with identical semantics.  These tests drive random replicate/evict/crash/
recover sequences and assert the two never diverge — including ``inf``
latencies under partitions, where the faulty scan path takes over.
"""

import math

import numpy as np
import pytest

from repro.faults.events import LinkDegrade, LinkRestore, NodeCrash, NodeRecover
from repro.faults.runtime import FaultState
from repro.perf import PERF
from repro.simulator.state import ReplicaState
from repro.topology.generators import line_topology


def check_all_pairs(state):
    """Cached answer == oracle answer for every (requester, object) pair."""
    for node in state.topology.nodes():
        for obj in range(state.num_objects):
            fast = state.best_latency(node, obj)
            slow = state.scan_latency(node, obj)
            assert fast == slow, (node, obj, fast, slow)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_cache_matches_scan_under_random_churn(small_topology, seed):
    rng = np.random.default_rng(seed)
    num_objects = 10
    state = ReplicaState(small_topology, num_objects)
    t = 0.0
    for _ in range(200):
        t += 1.0
        op = rng.random()
        node = int(rng.integers(small_topology.num_nodes))
        obj = int(rng.integers(num_objects))
        if op < 0.55:
            state.create(node, obj, t)
        elif op < 0.85:
            state.drop(node, obj, t)
        else:
            state.lose_all(node, t)
        # Spot-check a random pair every op, full cross-check periodically.
        q_node = int(rng.integers(small_topology.num_nodes))
        q_obj = int(rng.integers(num_objects))
        assert state.best_latency(q_node, q_obj) == state.scan_latency(q_node, q_obj)
    check_all_pairs(state)


def test_create_updates_cache_incrementally(small_topology):
    """A warm column folds new holders in without a recompute."""
    state = ReplicaState(small_topology, 4)
    check_all_pairs(state)  # warm every column
    repairs = PERF.get("sim.cache.repair")
    state.create(3, 1, 1.0)
    state.create(5, 1, 2.0)
    check_all_pairs(state)
    # No column recompute happened: creates only np.minimum-fold into it.
    assert PERF.get("sim.cache.repair") == repairs


def test_drop_invalidates_and_repairs_lazily(small_topology):
    state = ReplicaState(small_topology, 4)
    state.create(3, 1, 1.0)
    check_all_pairs(state)
    repairs = PERF.get("sim.cache.repair")
    state.drop(3, 1, 2.0)
    check_all_pairs(state)
    # Exactly the dropped object's column was recomputed.
    assert PERF.get("sim.cache.repair") == repairs + 1


def test_holder_reads_are_zero_and_origin_is_free():
    topo = line_topology(num_nodes=4, hop_latency_ms=100.0)
    state = ReplicaState(topo, 2)
    assert state.best_latency(topo.origin, 0) == 0.0
    state.create(3, 0, 1.0)
    assert state.best_latency(3, 0) == 0.0  # own replica
    assert state.best_latency(2, 0) == 100.0  # nearest holder, not the origin
    assert state.best_latency(1, 0) == 100.0  # origin closer than holder
    assert state.scan_latency(2, 0) == 100.0


def test_explicit_holders_bypass_cache(small_topology):
    """Per-call candidate sets (periodic planners) always take the scan."""
    state = ReplicaState(small_topology, 2)
    state.create(3, 0, 1.0)
    lat = small_topology.latency
    expected = min(float(lat[2][small_topology.origin]), float(lat[2][5]))
    assert state.best_latency(2, 0, holders={5}) == expected
    # The cache answer (real holders) can differ and must be unaffected.
    assert state.best_latency(2, 0) == state.scan_latency(2, 0)


def test_local_scope_ignores_remote_holders(small_topology):
    state = ReplicaState(small_topology, 2)
    state.create(3, 0, 1.0)
    origin_ms = float(small_topology.latency[2][small_topology.origin])
    assert state.best_latency(2, 0, scope="local") == origin_ms
    state.create(2, 0, 2.0)
    assert state.best_latency(2, 0, scope="local") == 0.0


def test_unknown_scope_rejected(small_topology):
    state = ReplicaState(small_topology, 1)
    with pytest.raises(ValueError, match="routing scope"):
        state.best_latency(0, 0, scope="regional")


# -- fault interaction -------------------------------------------------------


def faulty_reference(state, faults, node, obj):
    """Brute-force oracle for the liveness-masked serve path."""
    if not faults.is_alive(node):
        return math.inf
    best = faults.lat(node, state.topology.origin)
    for m in state.holders(obj):
        best = min(best, faults.lat(node, m))
    if state.holds(node, obj):
        best = 0.0
    return best


def test_faulty_path_masks_dead_and_partitioned(small_topology):
    state = ReplicaState(small_topology, 3)
    faults = FaultState(small_topology)
    state.faults = faults
    state.create(3, 0, 1.0)
    state.create(5, 0, 1.0)

    faults.apply(NodeCrash(10.0, node=3))
    state.invalidate_serve_cache()
    assert state.best_latency(3, 0) == math.inf  # dead requester
    for node in small_topology.nodes():
        for obj in range(3):
            assert state.best_latency(node, obj) == faulty_reference(
                state, faults, node, obj
            )

    # Partition a requester from everything: only inf remains if every path
    # crosses the cut.  Degrade the direct origin link instead and check the
    # reference still agrees (partial degradation case).
    faults.apply(LinkDegrade(20.0, a=2, b=small_topology.origin, factor=math.inf))
    state.invalidate_serve_cache()
    for node in small_topology.nodes():
        assert state.best_latency(node, 0) == faulty_reference(state, faults, node, 0)

    faults.apply(LinkRestore(30.0, a=2, b=small_topology.origin))
    faults.apply(NodeRecover(30.0, node=3))
    state.invalidate_serve_cache()
    for node in small_topology.nodes():
        for obj in range(3):
            assert state.best_latency(node, obj) == faulty_reference(
                state, faults, node, obj
            )


def test_cache_recovers_after_faults_clear(small_topology):
    """Dropping back to the fault-free fast path after invalidation is exact."""
    state = ReplicaState(small_topology, 3)
    state.create(3, 1, 1.0)
    check_all_pairs(state)  # warm columns
    faults = FaultState(small_topology)
    state.faults = faults
    faults.apply(NodeCrash(5.0, node=3))
    state.lose_all(3, 5.0)  # the engine drops a crashed node's replicas
    state.invalidate_serve_cache()
    faults.apply(NodeRecover(6.0, node=3))
    state.faults = None  # back to the fault-free regime
    fast_before = PERF.get("sim.serve.fast")
    check_all_pairs(state)
    assert PERF.get("sim.serve.fast") > fast_before


def test_random_churn_with_fault_windows(small_topology):
    """Alternate fault-free (cached) and faulty (scan) windows randomly."""
    rng = np.random.default_rng(42)
    num_objects = 6
    state = ReplicaState(small_topology, num_objects)
    faults = FaultState(small_topology)
    down = None
    t = 0.0
    for step in range(150):
        t += 1.0
        node = int(rng.integers(small_topology.num_nodes))
        obj = int(rng.integers(num_objects))
        if rng.random() < 0.6:
            state.create(node, obj, t)
        else:
            state.drop(node, obj, t)
        if step % 25 == 10:  # enter a fault window
            down = int(rng.integers(1, small_topology.num_nodes))
            faults.apply(NodeCrash(t, node=down))
            state.faults = faults
            state.lose_all(down, t)
            state.invalidate_serve_cache()
        elif step % 25 == 20 and down is not None:  # leave it
            faults.apply(NodeRecover(t, node=down))
            state.faults = None
            down = None
        if state.faults is None:
            q = int(rng.integers(small_topology.num_nodes))
            assert state.best_latency(q, obj) == state.scan_latency(q, obj)
        else:
            for q in range(small_topology.num_nodes):
                assert state.best_latency(q, obj) == faulty_reference(
                    state, faults, q, obj
                )
    if state.faults is None:
        check_all_pairs(state)


# -- latency_order / closest_node -------------------------------------------


def test_latency_order_matches_bruteforce(small_topology):
    order = small_topology.latency_order()
    lat = small_topology.latency
    for node in small_topology.nodes():
        expected = sorted(small_topology.nodes(), key=lambda m: (lat[node][m], m))
        assert list(order[node]) == expected
    # Cached: same array object on repeat calls.
    assert small_topology.latency_order() is order


def test_closest_node_agrees_across_candidate_sizes(small_topology):
    """The order-walk fast path (>4 candidates) matches the min() path."""
    rng = np.random.default_rng(7)
    lat = small_topology.latency
    for _ in range(50):
        size = int(rng.integers(1, small_topology.num_nodes + 1))
        candidates = list(
            rng.choice(small_topology.num_nodes, size=size, replace=False)
        )
        node = int(rng.integers(small_topology.num_nodes))
        expected = min(candidates, key=lambda m: (lat[node][m], m))
        assert small_topology.closest_node(node, candidates) == int(expected)
