"""Tests for the simulator's update-message cost (extension (12))."""

import pytest

from repro.heuristics.base import PlacementHeuristic
from repro.simulator.engine import simulate
from repro.topology.generators import star_topology
from tests.conftest import make_trace


class PinEverywhere(PlacementHeuristic):
    """Places every object on every leaf at the start."""

    routing = "global"

    def on_start(self, ctx):
        for node in range(ctx.num_nodes):
            if node == ctx.topology.origin:
                continue
            for obj in range(ctx.num_objects):
                ctx.create_replica(node, obj)


def far_star(leaves=2):
    return star_topology(num_leaves=leaves, hub_latency_ms=200.0)


def test_writes_charged_per_replica():
    topo = far_star(2)
    trace = make_trace(
        [(10, 1, 0), (20, 1, 0, True), (30, 2, 0, True)], num_nodes=3, num_objects=1
    )
    result = simulate(topo, trace, PinEverywhere(), tlat_ms=150.0, delta=0.5)
    # 2 writes x 2 replicas x 0.5 each.
    assert result.update_cost == pytest.approx(2.0)
    assert result.total_cost == pytest.approx(
        result.storage_cost + result.creation_cost + 2.0
    )


def test_writes_free_when_delta_zero():
    topo = far_star(2)
    trace = make_trace([(10, 1, 0, True)], num_nodes=3, num_objects=1)
    result = simulate(topo, trace, PinEverywhere(), tlat_ms=150.0)
    assert result.update_cost == 0.0


def test_writes_to_unreplicated_objects_cost_nothing():
    topo = far_star(2)
    trace = make_trace([(10, 1, 0, True)], num_nodes=3, num_objects=1)

    class Nothing(PlacementHeuristic):
        routing = "local"

    result = simulate(topo, trace, Nothing(), tlat_ms=150.0, delta=1.0)
    assert result.update_cost == 0.0


def test_update_cost_tracks_replica_count_over_time():
    topo = far_star(2)
    # write before placement, then after one replica exists.
    trace = make_trace(
        [(5, 1, 0, True), (10, 1, 0), (20, 1, 0, True)], num_nodes=3, num_objects=1
    )
    from repro.heuristics.caching import LRUCaching

    result = simulate(topo, trace, LRUCaching(1), tlat_ms=150.0, delta=1.0)
    # first write: 0 replicas; second write: 1 replica (cached on the miss).
    assert result.update_cost == pytest.approx(1.0)
