"""Property-based invariants of the trace simulator.

Whatever the heuristic does, physics must hold: QoS fractions live in
[0, 1], costs are non-negative and additive, every post-warmup read is
counted exactly once, and storage cost equals the exact integral of
replica-holding time.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.heuristics.caching import LFUCaching, LRUCaching
from repro.heuristics.cooperative import CooperativeLRUCaching
from repro.heuristics.greedy_global import GreedyGlobalPlacement
from repro.heuristics.qiu import QiuGreedyPlacement
from repro.simulator.engine import simulate
from repro.topology.generators import as_level_topology
from tests.conftest import make_trace


@st.composite
def sim_cases(draw):
    num_requests = draw(st.integers(min_value=1, max_value=60))
    requests = []
    for idx in range(num_requests):
        time_s = draw(st.floats(min_value=0.0, max_value=999.0))
        node = draw(st.integers(min_value=0, max_value=5))
        obj = draw(st.integers(min_value=0, max_value=4))
        is_write = draw(st.booleans())
        requests.append((time_s, node, obj, is_write))
    kind = draw(st.sampled_from(["lru", "lfu", "coop", "greedy", "qiu"]))
    capacity = draw(st.integers(min_value=0, max_value=5))
    warmup = draw(st.sampled_from([0.0, 100.0]))
    return requests, kind, capacity, warmup


def build_heuristic(kind, capacity):
    if kind == "lru":
        return LRUCaching(capacity)
    if kind == "lfu":
        return LFUCaching(capacity)
    if kind == "coop":
        return CooperativeLRUCaching(capacity)
    if kind == "greedy":
        return GreedyGlobalPlacement(capacity, period_s=250.0, tlat_ms=150.0)
    return QiuGreedyPlacement(min(capacity, 3), period_s=250.0, tlat_ms=150.0)


@settings(max_examples=60, deadline=None)
@given(sim_cases())
def test_simulator_invariants(case):
    requests, kind, capacity, warmup = case
    topo = as_level_topology(num_nodes=6, seed=1)
    trace = make_trace(requests, duration_s=1000.0, num_nodes=6, num_objects=5)
    heuristic = build_heuristic(kind, capacity)
    result = simulate(
        topo, trace, heuristic, tlat_ms=150.0, warmup_s=warmup,
        cost_interval_s=100.0, delta=0.1,
    )

    # Read accounting: every post-warmup read counted once.
    expected_reads = sum(
        1 for t, _n, _k, w in requests if not w and t >= warmup
    )
    assert result.reads == expected_reads
    assert 0 <= result.covered_reads <= result.reads
    assert 0.0 <= result.qos <= 1.0
    for q in result.qos_per_node.values():
        assert 0.0 <= q <= 1.0

    # Cost physics.
    assert result.storage_cost >= -1e-9
    assert result.creation_cost == pytest.approx(result.creations * 1.0)
    assert result.update_cost >= -1e-9
    assert result.total_cost == pytest.approx(
        result.storage_cost + result.creation_cost + result.update_cost
    )

    # Peak occupancy respects capacity for the caching family.
    if kind in ("lru", "lfu", "coop"):
        assert result.peak_occupancy.max(initial=0) <= max(capacity, 0)


@settings(max_examples=25, deadline=None)
@given(
    hold=st.floats(min_value=1.0, max_value=900.0),
    interval=st.sampled_from([50.0, 100.0, 250.0]),
)
def test_storage_cost_is_exact_time_integral(hold, interval):
    from repro.heuristics.base import PlacementHeuristic

    class HoldOnce(PlacementHeuristic):
        routing = "local"

        def __init__(self, until):
            self.until = until
            self.placed = False
            self.dropped = False

        def on_access(self, request, served_ms, ctx):
            if not self.placed:
                ctx.create_replica(request.node, request.obj)
                self.placed = True
            elif not self.dropped and ctx.now_s >= self.until:
                ctx.drop_replica(1, 0)
                self.dropped = True

    topo = as_level_topology(num_nodes=4, seed=2)
    # first access places at t=0; second access at t=hold drops.
    trace = make_trace([(0.0, 1, 0), (hold, 1, 0)], duration_s=1000.0, num_nodes=4, num_objects=1)
    h = HoldOnce(until=hold)
    result = simulate(topo, trace, h, tlat_ms=150.0, cost_interval_s=interval)
    if topo.origin == 1:
        return  # replica on the origin is a no-op
    assert result.storage_cost == pytest.approx(hold / interval, rel=1e-9)
