"""Fault injection, availability accounting and healing — engine integration.

Includes the acceptance scenario for the fault subsystem: cooperative
caching on the WEB workload under Poisson crashes, where wrapping the
heuristic in a :class:`~repro.faults.HealingPolicy` restores QoS to within
2 % of the fault-free run at a quantified re-replication cost.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.faults import (
    FaultSchedule,
    HealingPolicy,
    LinkDegrade,
    LinkRestore,
    NodeCrash,
    NodeRecover,
    ReplicaLoss,
    poisson_crashes,
)
from repro.heuristics import CooperativeLRUCaching, LRUCaching
from repro.heuristics.base import PlacementHeuristic
from repro.simulator import availability_report, simulate
from repro.simulator.engine import Simulator
from repro.topology.generators import line_topology, star_topology
from tests.conftest import make_trace


class FixedPlacement(PlacementHeuristic):
    """Places a given replica set at start and never changes it."""

    routing = "global"

    def __init__(self, placements):
        self.placements = placements  # [(node, obj), ...]

    def on_start(self, ctx) -> None:
        for node, obj in self.placements:
            ctx.create_replica(node, obj)


def results_equal(a, b) -> bool:
    """Field-by-field equality of two SimulationResults (ndarray-aware)."""
    da, db = dataclasses.asdict(a), dataclasses.asdict(b)
    assert da.keys() == db.keys()
    for key in da:
        va, vb = da[key], db[key]
        if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
            if not np.array_equal(va, vb):
                return False
        elif va != vb:
            return False
    return True


@pytest.fixture(scope="module")
def sim_kwargs(web_trace):
    interval = web_trace.duration_s / 8
    return dict(
        tlat_ms=150.0, warmup_s=interval, cost_interval_s=interval
    )


# -- the fault-free path must be untouched ---------------------------------


def test_empty_schedule_bit_identical_to_no_faults(small_topology, web_trace, sim_kwargs):
    plain = simulate(small_topology, web_trace, CooperativeLRUCaching(8), **sim_kwargs)
    empty = simulate(
        small_topology, web_trace, CooperativeLRUCaching(8), faults=FaultSchedule(), **sim_kwargs
    )
    assert results_equal(plain, empty)
    assert str(plain) == str(empty)  # no availability suffix on fault-free runs


def test_seeded_fault_runs_fully_deterministic(small_topology, web_trace, sim_kwargs):
    faults = poisson_crashes(
        num_nodes=8, duration_s=web_trace.duration_s, mtbf_s=12 * 3600, mttr_s=900, seed=11
    )
    runs = [
        simulate(
            small_topology,
            web_trace,
            HealingPolicy(CooperativeLRUCaching(8), copies=2),
            faults=faults,
            **sim_kwargs,
        )
        for _ in range(2)
    ]
    assert results_equal(runs[0], runs[1])


# -- the acceptance scenario ------------------------------------------------


def test_healing_restores_web_qos_within_two_percent(small_topology, web_trace, sim_kwargs):
    """LRU + cooperative caching on WEB under Poisson crashes: the healer
    recovers QoS to within 2 % of fault-free, at a quantified creation cost."""
    faults = poisson_crashes(
        num_nodes=8, duration_s=web_trace.duration_s, mtbf_s=12 * 3600, mttr_s=900, seed=11
    )
    fault_free = simulate(small_topology, web_trace, CooperativeLRUCaching(8), **sim_kwargs)
    faulty = simulate(
        small_topology, web_trace, CooperativeLRUCaching(8), faults=faults, **sim_kwargs
    )
    healed = simulate(
        small_topology,
        web_trace,
        HealingPolicy(CooperativeLRUCaching(8), copies=2),
        faults=faults,
        **sim_kwargs,
    )
    # The faults actually hurt (else the scenario proves nothing)...
    assert faulty.node_downtime_s > 0
    assert faulty.unavailable_reads > 0
    assert faulty.qos < fault_free.qos - 0.015
    # ...healing recovers to within 2 % of fault-free...
    assert healed.qos >= fault_free.qos - 0.02
    assert healed.qos > faulty.qos
    # ...at a quantified, non-zero re-replication cost.
    assert healed.repairs > 0
    assert healed.healing_creations > 0
    assert healed.healing_cost == pytest.approx(healed.healing_creations * 1.0)
    assert healed.mean_repair_time_s > 0
    # Healing spends creations; the spend is visible in the cost accounting.
    assert healed.creation_cost > faulty.creation_cost


# -- availability semantics -------------------------------------------------


def test_crashed_node_reads_unavailable_and_excluded_from_qos():
    """Reads issued by a crashed node are unavailable, not QoS misses, and
    a node with zero served reads must not report a perfect per-node QoS."""
    topo = star_topology(num_leaves=3, hub_latency_ms=100.0)
    trace = make_trace(
        [(100, 1, 0), (200, 2, 0), (300, 3, 0), (400, 3, 1)],
        num_nodes=4,
        num_objects=2,
    )
    faults = FaultSchedule([NodeCrash(50.0, 3)])  # node 3 down for the whole run
    result = simulate(topo, trace, LRUCaching(2), faults=faults, tlat_ms=150.0)
    assert result.unavailable_reads == 2
    assert result.reads == 2
    assert result.availability == pytest.approx(0.5)
    assert 3 not in result.qos_per_node  # down all run: excluded, not 1.0
    assert set(result.qos_per_node) == {1, 2}
    assert result.min_node_qos == min(result.qos_per_node.values())


def test_global_routing_reroutes_around_dead_replica_holder():
    """When the only replica's node dies, a global-routing read falls back
    to the origin: served (available) but outside the latency threshold."""
    topo = line_topology(num_nodes=4, hop_latency_ms=100.0)  # origin = node 0
    trace = make_trace([(100, 3, 0), (200, 3, 0)], num_nodes=4, num_objects=1)
    placement = FixedPlacement([(2, 0)])  # one hop (100 ms) from node 3

    alive = simulate(topo, trace, placement, tlat_ms=150.0)
    assert alive.covered_reads == 2  # served by the node-2 replica

    faults = FaultSchedule([NodeCrash(150.0, 2)])
    faulty = simulate(topo, trace, FixedPlacement([(2, 0)]), faults=faults, tlat_ms=150.0)
    # First read still hits node 2; the second falls back to the origin
    # (300 ms > threshold) — served, so available, but uncovered.
    assert faulty.reads == 2
    assert faulty.unavailable_reads == 0
    assert faulty.covered_reads == 1


def test_partitioned_node_reads_are_unavailable():
    topo = line_topology(num_nodes=3, hop_latency_ms=100.0)
    trace = make_trace([(100, 2, 0), (500, 2, 0)], num_nodes=3, num_objects=1)
    faults = FaultSchedule(
        [LinkDegrade(200.0, 2, 0), LinkDegrade(200.0, 2, 1)]  # cut node 2 off
    )
    # No replicas anywhere: node 2 must reach the origin, which the
    # partition severs — so the second read cannot be served at all.
    result = simulate(topo, trace, FixedPlacement([]), faults=faults, tlat_ms=150.0)
    assert result.reads == 1  # the pre-partition read
    assert result.unavailable_reads == 1


def test_partitioned_node_still_serves_from_its_own_replica():
    """A partition cuts remote paths, not a node's own live replica."""
    topo = line_topology(num_nodes=3, hop_latency_ms=100.0)
    trace = make_trace([(100, 2, 0), (500, 2, 0)], num_nodes=3, num_objects=1)
    faults = FaultSchedule(
        [LinkDegrade(200.0, 2, 0), LinkDegrade(200.0, 2, 1)]
    )
    # LRU caches obj 0 at node 2 on the first read (a 200 ms origin fetch);
    # the local replica then keeps serving through the partition.
    result = simulate(topo, trace, LRUCaching(1), faults=faults, tlat_ms=150.0)
    assert result.reads == 2
    assert result.unavailable_reads == 0
    assert result.covered_reads == 1  # the post-partition local hit


def test_link_degradation_scales_served_latency():
    topo = line_topology(num_nodes=2, hop_latency_ms=100.0)
    trace = make_trace([(100, 1, 0), (500, 1, 0)], num_nodes=2, num_objects=1)
    faults = FaultSchedule(
        [LinkDegrade(200.0, 0, 1, factor=4.0), LinkRestore(900.0, 0, 1)]
    )
    plain = simulate(topo, trace, FixedPlacement([]), faults=None, tlat_ms=150.0)
    slow = simulate(topo, trace, FixedPlacement([]), faults=faults, tlat_ms=150.0)
    assert plain.covered_reads == 2  # 100 ms origin fetches
    assert slow.covered_reads == 1  # second read at 400 ms misses the threshold
    assert slow.mean_latency_ms > plain.mean_latency_ms


def test_replica_loss_charges_storage_up_to_loss_instant():
    topo = line_topology(num_nodes=2, hop_latency_ms=100.0)
    trace = make_trace([(1, 1, 0)], num_nodes=2, num_objects=1, duration_s=1000.0)
    kwargs = dict(tlat_ms=150.0, cost_interval_s=1000.0, alpha=1.0, beta=0.0)
    full = simulate(topo, trace, FixedPlacement([(1, 0)]), **kwargs)
    lost = simulate(
        topo,
        trace,
        FixedPlacement([(1, 0)]),
        faults=FaultSchedule([ReplicaLoss(500.0, 1, 0)]),
        **kwargs,
    )
    assert full.storage_cost == pytest.approx(1.0)  # one object-interval
    assert lost.storage_cost == pytest.approx(0.5)  # charged up to the loss


def test_node_downtime_accounts_open_intervals():
    topo = star_topology(num_leaves=3, hub_latency_ms=100.0)
    trace = make_trace([(10, 1, 0)], num_nodes=4, num_objects=1, duration_s=1000.0)
    faults = FaultSchedule(
        [NodeCrash(100.0, 2), NodeRecover(300.0, 2), NodeCrash(800.0, 3)]
    )
    result = simulate(topo, trace, LRUCaching(1), faults=faults, tlat_ms=150.0)
    assert result.node_downtime_s == pytest.approx(200.0 + 200.0)


# -- heuristic failure hooks ------------------------------------------------


def test_lru_forgets_replicas_lost_in_a_crash():
    """After crash + recover, the LRU must re-fetch (its state was wiped),
    not phantom-hit a replica that no longer exists."""
    topo = star_topology(num_leaves=2, hub_latency_ms=200.0)
    trace = make_trace(
        [(10, 1, 0), (20, 1, 0), (600, 1, 0)], num_nodes=3, num_objects=1
    )
    faults = FaultSchedule([NodeCrash(100.0, 1), NodeRecover(500.0, 1)])
    result = simulate(topo, trace, LRUCaching(1), faults=faults, tlat_ms=150.0)
    # miss+create, hit, then (post-crash) miss+create again.
    assert result.creations == 2
    assert result.covered_reads == 1


def test_healing_restores_recovered_node_contents():
    """restore_on_recovery re-warms a recovered local cache, so the first
    post-recovery read hits without a new demand-driven fetch."""
    topo = star_topology(num_leaves=2, hub_latency_ms=200.0)
    trace = make_trace(
        [(10, 1, 0), (20, 1, 0), (600, 1, 0)], num_nodes=3, num_objects=1
    )
    faults = FaultSchedule([NodeCrash(100.0, 1), NodeRecover(500.0, 1)])
    result = simulate(
        topo, trace, HealingPolicy(LRUCaching(1)), faults=faults, tlat_ms=150.0
    )
    assert result.healing_creations == 1  # the restore at t=500
    assert result.covered_reads == 2  # both post-warm reads hit


def test_healing_abandons_repairs_when_no_target_survives():
    """With every candidate target down, repairs retry with backoff and are
    abandoned after max_retries — and never charge a creation."""
    topo = star_topology(num_leaves=3, hub_latency_ms=200.0)
    # Post-crash reads come from the origin so the repair queue keeps being
    # pumped (a dead node's reads never reach the heuristic).
    trace = make_trace(
        [(10, 1, 0)] + [(t, 0, 1) for t in range(100, 3600, 100)],
        num_nodes=4,
        num_objects=2,
    )
    # Node 1 holds obj 0; then every non-origin node crashes for good.
    faults = FaultSchedule(
        [NodeCrash(50.0, 2), NodeCrash(60.0, 3), NodeCrash(70.0, 1)]
    )
    healer = HealingPolicy(
        CooperativeLRUCaching(2), copies=1, max_retries=3, backoff_s=100.0
    )
    sim = Simulator(topo, trace, healer, tlat_ms=150.0, faults=faults)
    result = sim.run()
    assert result.repairs == 0
    assert result.healing_creations == 0
    assert sim.stats.failed_heal_attempts > 0
    assert sim.stats.abandoned_repairs > 0


def test_availability_report_renders_counters(small_topology, web_trace, sim_kwargs):
    faults = poisson_crashes(
        num_nodes=8, duration_s=web_trace.duration_s, mtbf_s=12 * 3600, mttr_s=900, seed=11
    )
    result = simulate(
        small_topology,
        web_trace,
        HealingPolicy(CooperativeLRUCaching(8), copies=2),
        faults=faults,
        **sim_kwargs,
    )
    report = availability_report(result)
    assert "availability" in report
    assert str(result.repairs) in report
    assert f"{result.availability:.5f}" in report
    assert "availability=" in str(result)  # faulty runs advertise availability


def test_origin_targeting_schedule_rejected_at_simulate(small_topology, web_trace):
    faults = FaultSchedule([NodeCrash(10.0, small_topology.origin)])
    with pytest.raises(ValueError, match="origin"):
        simulate(small_topology, web_trace, LRUCaching(2), faults=faults, tlat_ms=150.0)
