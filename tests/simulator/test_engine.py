"""Tests for the trace-replay engine."""

import numpy as np
import pytest

from repro.heuristics.base import PlacementHeuristic
from repro.heuristics.caching import LRUCaching
from repro.simulator.engine import Simulator, simulate
from repro.topology.generators import line_topology, star_topology
from tests.conftest import make_trace


class NullHeuristic(PlacementHeuristic):
    """Places nothing: every read goes to the origin."""

    routing = "local"


class PeriodProbe(PlacementHeuristic):
    """Records on_interval invocations for boundary tests."""

    routing = "global"

    def __init__(self, period_s, clairvoyant=False):
        self.period_s = period_s
        self.clairvoyant = clairvoyant
        self.calls = []

    def on_interval(self, index, ctx, past_demand, next_demand):
        self.calls.append((index, past_demand.copy(), None if next_demand is None else next_demand.copy()))


def far_star():
    return star_topology(num_leaves=2, hub_latency_ms=200.0)


def test_null_heuristic_counts_misses():
    topo = far_star()
    trace = make_trace([(10, 1, 0), (20, 2, 1)], num_nodes=3, num_objects=2)
    result = simulate(topo, trace, NullHeuristic(), tlat_ms=150.0)
    assert result.reads == 2
    assert result.covered_reads == 0
    assert result.qos == 0.0
    assert result.total_cost == 0.0


def test_origin_within_threshold_counts_covered():
    topo = star_topology(num_leaves=1, hub_latency_ms=100.0)
    trace = make_trace([(10, 1, 0)], num_nodes=2, num_objects=1)
    result = simulate(topo, trace, NullHeuristic(), tlat_ms=150.0)
    assert result.covered_reads == 1


def test_miss_then_hit_with_lru():
    topo = far_star()
    trace = make_trace([(10, 1, 0), (20, 1, 0), (30, 1, 0)], num_nodes=3, num_objects=1)
    result = simulate(topo, trace, LRUCaching(capacity=1), tlat_ms=150.0)
    assert result.covered_reads == 2  # first access misses, inserts, then hits
    assert result.creations == 1


def test_qos_per_node_tracking():
    topo = far_star()
    trace = make_trace([(10, 1, 0), (20, 1, 0), (30, 2, 1)], num_nodes=3, num_objects=2)
    result = simulate(topo, trace, LRUCaching(capacity=1), tlat_ms=150.0)
    assert result.qos_per_node[1] == pytest.approx(0.5)
    assert result.qos_per_node[2] == pytest.approx(0.0)
    assert result.min_node_qos == 0.0
    assert not result.meets(0.5, per_user=True)
    assert result.meets(0.33, per_user=False)


def test_warmup_excluded_from_qos_but_not_cost():
    topo = far_star()
    trace = make_trace([(10, 1, 0), (2000, 1, 0)], duration_s=3600.0, num_nodes=3, num_objects=1)
    result = simulate(topo, trace, LRUCaching(1), tlat_ms=150.0, warmup_s=1000.0)
    assert result.reads == 1  # only the post-warmup read counts
    assert result.covered_reads == 1
    assert result.creations == 1  # the warmup miss still warmed the cache


def test_storage_cost_accrues_until_end():
    topo = far_star()
    trace = make_trace([(0, 1, 0)], duration_s=7200.0, num_nodes=3, num_objects=1)
    result = simulate(
        topo, trace, LRUCaching(1), tlat_ms=150.0, cost_interval_s=3600.0
    )
    assert result.storage_cost == pytest.approx(2.0)  # held for 2 hours
    assert result.creation_cost == pytest.approx(1.0)


def test_period_boundaries_fire_in_order():
    topo = far_star()
    trace = make_trace(
        [(100, 1, 0), (3700, 1, 0), (7300, 1, 0)], duration_s=10800.0, num_nodes=3, num_objects=1
    )
    probe = PeriodProbe(period_s=3600.0)
    simulate(topo, trace, probe, tlat_ms=150.0)
    assert [c[0] for c in probe.calls] == [0, 1, 2]
    # period 0 sees empty past demand; period 1 sees period 0's access.
    assert probe.calls[0][1].sum() == 0
    assert probe.calls[1][1][1, 0] == 1


def test_clairvoyant_receives_next_demand():
    topo = far_star()
    trace = make_trace([(100, 1, 0)], duration_s=7200.0, num_nodes=3, num_objects=1)
    probe = PeriodProbe(period_s=3600.0, clairvoyant=True)
    simulate(topo, trace, probe, tlat_ms=150.0)
    assert probe.calls[0][2] is not None
    assert probe.calls[0][2][1, 0] == 1


def test_non_clairvoyant_gets_no_future():
    topo = far_star()
    trace = make_trace([(100, 1, 0)], duration_s=3600.0, num_nodes=3, num_objects=1)
    probe = PeriodProbe(period_s=3600.0, clairvoyant=False)
    simulate(topo, trace, probe, tlat_ms=150.0)
    assert probe.calls[0][2] is None


def test_writes_do_not_count_as_reads():
    topo = far_star()
    trace = make_trace([(10, 1, 0, True), (20, 1, 0)], num_nodes=3, num_objects=1)
    result = simulate(topo, trace, NullHeuristic(), tlat_ms=150.0)
    assert result.reads == 1


def test_assignment_routes_via_access_node():
    # chain 0-1-2-3; site 3 assigned to node 2.
    topo = line_topology(num_nodes=4, hop_latency_ms=100.0)
    trace = make_trace([(10, 3, 0), (20, 3, 0)], num_nodes=4, num_objects=1)
    assignment = np.array([0, 1, 2, 2])

    class PinAtTwo(PlacementHeuristic):
        routing = "local"

        def on_start(self, ctx):
            ctx.create_replica(2, 0)

    result = simulate(
        topo, trace, PinAtTwo(), tlat_ms=150.0, assignment=assignment
    )
    # each read: 100ms leg to node 2 + 0ms local hit = 100 <= 150.
    assert result.covered_reads == 2
    assert result.mean_latency_ms == pytest.approx(100.0)


def test_assignment_miss_goes_through_access_node_to_origin():
    topo = line_topology(num_nodes=4, hop_latency_ms=100.0)
    trace = make_trace([(10, 3, 0)], num_nodes=4, num_objects=1)
    assignment = np.array([0, 1, 2, 2])
    result = simulate(topo, trace, NullHeuristic(), tlat_ms=150.0, assignment=assignment)
    # 100 (3->2) + 200 (2->origin) = 300ms.
    assert result.mean_latency_ms == pytest.approx(300.0)
    assert result.covered_reads == 0


def test_trace_bigger_than_topology_rejected():
    topo = far_star()
    trace = make_trace([(10, 5, 0)], num_nodes=6, num_objects=1)
    with pytest.raises(ValueError):
        Simulator(topo, trace, NullHeuristic(), tlat_ms=150.0)


def test_result_str():
    topo = far_star()
    trace = make_trace([(10, 1, 0)], num_nodes=3, num_objects=1)
    result = simulate(topo, trace, NullHeuristic(), tlat_ms=150.0)
    assert "QoS" in str(result)
