"""Tests for replica state and cost integration."""

import numpy as np
import pytest

from repro.simulator.state import ReplicaState
from repro.topology.generators import line_topology, star_topology


def make_state(alpha=1.0, beta=1.0, interval_s=3600.0, num_objects=3):
    topo = star_topology(num_leaves=2, hub_latency_ms=200.0)
    return ReplicaState(topo, num_objects, alpha=alpha, beta=beta, interval_s=interval_s)


def test_origin_always_holds_everything():
    state = make_state()
    assert state.holds(0, 0)
    assert state.holds(0, 2)
    assert not state.create(0, 1, 0.0)  # no-op at the origin
    assert state.creations == 0


def test_create_and_holds():
    state = make_state()
    assert state.create(1, 0, 0.0)
    assert state.holds(1, 0)
    assert not state.holds(2, 0)
    assert state.holders(0) == {1}


def test_duplicate_create_is_noop():
    state = make_state()
    state.create(1, 0, 0.0)
    assert not state.create(1, 0, 10.0)
    assert state.creations == 1


def test_create_out_of_range_object():
    state = make_state()
    with pytest.raises(IndexError):
        state.create(1, 99, 0.0)


def test_storage_cost_integrates_time():
    state = make_state(alpha=2.0, interval_s=100.0)
    state.create(1, 0, 0.0)
    state.drop(1, 0, 250.0)
    assert state.storage_cost == pytest.approx(2.0 * 250.0 / 100.0)


def test_drop_absent_returns_false():
    state = make_state()
    assert not state.drop(1, 0, 10.0)


def test_drop_before_create_rejected():
    state = make_state()
    state.create(1, 0, 100.0)
    with pytest.raises(ValueError):
        state.drop(1, 0, 50.0)


def test_finalize_accrues_open_replicas_idempotently():
    state = make_state(interval_s=100.0)
    state.create(1, 0, 0.0)
    state.finalize(100.0)
    assert state.storage_cost == pytest.approx(1.0)
    state.finalize(100.0)  # no double counting
    assert state.storage_cost == pytest.approx(1.0)


def test_creation_cost_and_counters():
    state = make_state(beta=3.0)
    state.create(1, 0, 0.0)
    state.create(2, 0, 0.0)
    assert state.creation_cost == pytest.approx(6.0)
    assert state.creations == 2
    state.drop(1, 0, 10.0)
    assert state.drops == 1


def test_peak_occupancy_and_replica_tracking():
    state = make_state()
    state.create(1, 0, 0.0)
    state.create(1, 1, 0.0)
    state.drop(1, 0, 10.0)
    assert state.peak_occupancy[1] == 2
    assert state.occupancy(1) == 1
    state.create(2, 1, 0.0)
    assert state.max_replicas_per_object[1] == 2


def test_contents_returns_copy():
    state = make_state()
    state.create(1, 0, 0.0)
    contents = state.contents(1)
    contents.add(99)
    assert state.contents(1) == {0}


def test_best_latency_local_scope():
    topo = line_topology(num_nodes=3, hop_latency_ms=100.0)
    state = ReplicaState(topo, 1)
    assert state.best_latency(2, 0, scope="local") == pytest.approx(200.0)
    state.create(2, 0, 0.0)
    assert state.best_latency(2, 0, scope="local") == pytest.approx(0.0)
    # a replica at node 1 does NOT help local routing on node 2
    state.drop(2, 0, 1.0)
    state.create(1, 0, 1.0)
    assert state.best_latency(2, 0, scope="local") == pytest.approx(200.0)


def test_best_latency_global_scope():
    topo = line_topology(num_nodes=3, hop_latency_ms=100.0)
    state = ReplicaState(topo, 1)
    state.create(1, 0, 0.0)
    assert state.best_latency(2, 0, scope="global") == pytest.approx(100.0)
    assert state.covered(2, 0, tlat_ms=150.0, scope="global")
    assert not state.covered(2, 0, tlat_ms=50.0, scope="global")


def test_best_latency_unknown_scope():
    state = make_state()
    with pytest.raises(ValueError):
        state.best_latency(1, 0, scope="quantum")


def test_interval_validation():
    topo = star_topology(num_leaves=1)
    with pytest.raises(ValueError):
        ReplicaState(topo, 1, interval_s=0.0)
