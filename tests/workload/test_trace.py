"""Tests for Request/Trace containers."""

import pytest

from repro.workload.trace import Request, Trace
from tests.conftest import make_trace


def test_request_validation():
    with pytest.raises(ValueError):
        Request(-1.0, 0, 0)
    with pytest.raises(ValueError):
        Request(0.0, -1, 0)
    with pytest.raises(ValueError):
        Request(0.0, 0, -2)


def test_request_ordering_by_time():
    a = Request(1.0, 3, 3)
    b = Request(2.0, 0, 0)
    assert a < b


def test_trace_sorts_requests():
    t = make_trace([(30, 0, 0), (10, 1, 1), (20, 2, 2)])
    assert [r.time_s for r in t] == [10.0, 20.0, 30.0]


def test_trace_rejects_out_of_range():
    with pytest.raises(ValueError, match="duration"):
        make_trace([(5000, 0, 0)], duration_s=3600.0)
    with pytest.raises(ValueError, match="num_nodes"):
        make_trace([(1, 9, 0)], num_nodes=4)
    with pytest.raises(ValueError, match="num_objects"):
        make_trace([(1, 0, 9)], num_objects=4)


def test_trace_rejects_bad_universe():
    with pytest.raises(ValueError):
        Trace(requests=[], duration_s=0.0, num_nodes=1, num_objects=1)
    with pytest.raises(ValueError):
        Trace(requests=[], duration_s=1.0, num_nodes=0, num_objects=1)


def test_read_write_counts():
    t = make_trace([(1, 0, 0), (2, 0, 1, True), (3, 1, 0)])
    assert len(t) == 3
    assert t.num_reads == 2
    assert t.num_writes == 1


def test_between_half_open():
    t = make_trace([(10, 0, 0), (20, 1, 1), (30, 2, 2)])
    window = t.between(10, 30)
    assert [r.time_s for r in window] == [10.0, 20.0]


def test_between_empty_window():
    t = make_trace([(10, 0, 0)])
    assert t.between(11, 12) == []


def test_for_node_and_object():
    t = make_trace([(1, 0, 0), (2, 1, 0), (3, 0, 1)])
    assert len(t.for_node(0)) == 2
    assert len(t.for_object(0)) == 2


def test_filter_returns_new_trace():
    t = make_trace([(1, 0, 0), (2, 1, 1)])
    f = t.filter(lambda r: r.node == 0)
    assert len(f) == 1
    assert len(t) == 2


def test_remap_nodes():
    t = make_trace([(1, 0, 0), (2, 1, 1), (3, 2, 2)])
    m = t.remap_nodes({0: 3, 1: 3})
    nodes = [r.node for r in m]
    assert nodes == [3, 3, 2]


def test_remap_can_grow_universe():
    t = make_trace([(1, 0, 0)], num_nodes=2)
    m = t.remap_nodes({0: 4}, num_nodes=5)
    assert m.num_nodes == 5
    assert m.requests[0].node == 4


def test_merge():
    a = make_trace([(1, 0, 0)], duration_s=100.0, num_nodes=2, num_objects=2)
    b = make_trace([(2, 3, 3)], duration_s=200.0, num_nodes=4, num_objects=4)
    m = Trace.merge([a, b])
    assert len(m) == 2
    assert m.duration_s == 200.0
    assert m.num_nodes == 4


def test_merge_empty_rejected():
    with pytest.raises(ValueError):
        Trace.merge([])


def test_repr():
    t = make_trace([(1, 0, 0)], name="demo")
    assert "demo" in repr(t)
