"""Tests for the log-import adapters."""

import io
import json

import pytest

from repro.workload.adapters import trace_from_csv, trace_from_jsonl

CSV = """time,node,object,op
0.5,paris,/index.html,get
1.5,tokyo,/index.html,GET
2.0,paris,/video.mp4,write
3.25,nyc,/index.html,
"""


def test_csv_parses_rows_and_labels():
    imported = trace_from_csv(io.StringIO(CSV))
    trace = imported.trace
    assert len(trace) == 4
    assert trace.num_nodes == 3
    assert trace.num_objects == 2
    assert imported.node_ids["paris"] == 0
    assert imported.object_ids["/index.html"] == 0
    assert imported.node_label(1) == "tokyo"
    assert imported.object_label(1) == "/video.mp4"


def test_csv_write_ops_detected():
    trace = trace_from_csv(io.StringIO(CSV)).trace
    assert trace.num_writes == 1
    assert trace.num_reads == 3


def test_csv_duration_default_covers_last_request():
    trace = trace_from_csv(io.StringIO(CSV)).trace
    assert trace.duration_s == pytest.approx(4.25)


def test_csv_explicit_duration():
    trace = trace_from_csv(io.StringIO(CSV), duration_s=100.0).trace
    assert trace.duration_s == 100.0


def test_csv_without_header():
    body = "0.5,a,x\n1.0,b,y\n"
    trace = trace_from_csv(io.StringIO(body), has_header=False).trace
    assert len(trace) == 2


def test_csv_short_row_rejected():
    with pytest.raises(ValueError, match="need time,node,object"):
        trace_from_csv(io.StringIO("time,node,object\n1.0,a\n"))


def test_csv_negative_time_rejected():
    with pytest.raises(ValueError, match="negative"):
        trace_from_csv(io.StringIO("time,node,object\n-1.0,a,x\n"))


def test_csv_empty_rejected():
    with pytest.raises(ValueError, match="no requests"):
        trace_from_csv(io.StringIO("time,node,object\n"))


def test_csv_from_file(tmp_path):
    path = tmp_path / "log.csv"
    path.write_text(CSV)
    trace = trace_from_csv(path).trace
    assert len(trace) == 4


def test_jsonl_parses_records():
    lines = "\n".join(
        json.dumps(r)
        for r in [
            {"time": 1.0, "node": "a", "object": "x", "op": "get"},
            {"time": 2.0, "node": "b", "object": "x", "op": "put"},
        ]
    )
    imported = trace_from_jsonl(io.StringIO(lines))
    assert len(imported.trace) == 2
    assert imported.trace.num_writes == 1


def test_jsonl_custom_fields():
    lines = json.dumps({"ts": 5.0, "site": "s1", "file": "f1"})
    imported = trace_from_jsonl(
        io.StringIO(lines), time_field="ts", node_field="site", object_field="file",
        op_field=None,
    )
    assert imported.trace.num_reads == 1


def test_jsonl_missing_field():
    with pytest.raises(ValueError, match="missing field"):
        trace_from_jsonl(io.StringIO(json.dumps({"time": 1.0, "node": "a"})))


def test_imported_trace_feeds_demand_matrix():
    from repro.workload.demand import DemandMatrix

    imported = trace_from_csv(io.StringIO(CSV))
    dm = DemandMatrix.from_trace(imported.trace, num_intervals=2)
    assert dm.total_reads == 3
    assert dm.writes.sum() == 1
