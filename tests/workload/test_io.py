"""Trace serialization round-trips."""

import json

import pytest

from repro.workload.generators import web_workload
from repro.workload.io import load_trace, save_trace, trace_from_dict, trace_to_dict
from tests.conftest import make_trace


def test_dict_round_trip():
    t = make_trace([(1, 0, 0), (2, 1, 1, True)], name="rt")
    back = trace_from_dict(trace_to_dict(t))
    assert back.name == "rt"
    assert len(back) == 2
    assert back.requests[1].is_write
    assert back.num_nodes == t.num_nodes


def test_file_round_trip(tmp_path):
    t = web_workload(num_nodes=3, num_objects=10, requests_scale=0.001, seed=1)
    path = tmp_path / "trace.json"
    save_trace(t, path)
    back = load_trace(path)
    assert len(back) == len(t)
    assert [r.obj for r in back] == [r.obj for r in t]


def test_dict_is_json_serializable():
    t = make_trace([(1, 0, 0)])
    json.dumps(trace_to_dict(t))


def test_version_check():
    data = trace_to_dict(make_trace([(1, 0, 0)]))
    data["version"] = 42
    with pytest.raises(ValueError, match="version"):
        trace_from_dict(data)


def test_inconsistent_columns_rejected():
    data = trace_to_dict(make_trace([(1, 0, 0)]))
    data["nodes"] = []
    with pytest.raises(ValueError, match="inconsistent"):
        trace_from_dict(data)


# -- load-time validation (repro.errors.ValidationError) ----------------------


def corrupt(mutate):
    data = trace_to_dict(make_trace([(1, 0, 0), (2, 1, 1)]))
    mutate(data)
    return data


def test_nan_time_rejected():
    from repro.errors import ValidationError

    data = corrupt(lambda d: d["times"].__setitem__(1, float("nan")))
    with pytest.raises(ValidationError, match="request 1"):
        trace_from_dict(data)


def test_negative_time_rejected():
    from repro.errors import ValidationError

    data = corrupt(lambda d: d["times"].__setitem__(0, -5.0))
    with pytest.raises(ValidationError, match="negative or non-finite"):
        trace_from_dict(data)


def test_nonpositive_duration_rejected():
    from repro.errors import ValidationError

    data = corrupt(lambda d: d.update(duration_s=0.0))
    with pytest.raises(ValidationError, match="duration"):
        trace_from_dict(data)


def test_nan_duration_rejected():
    from repro.errors import ValidationError

    data = corrupt(lambda d: d.update(duration_s=float("nan")))
    with pytest.raises(ValidationError, match="duration"):
        trace_from_dict(data)


def test_nonpositive_counts_rejected():
    from repro.errors import ValidationError

    for field in ("num_nodes", "num_objects"):
        data = corrupt(lambda d: d.update({field: 0}))
        with pytest.raises(ValidationError, match="must be positive"):
            trace_from_dict(data)


def test_empty_trace_rejected():
    from repro.errors import ValidationError

    data = corrupt(
        lambda d: d.update(times=[], nodes=[], objects=[], writes=[])
    )
    with pytest.raises(ValidationError, match="no requests"):
        trace_from_dict(data)


def test_out_of_range_node_rejected():
    from repro.errors import ValidationError

    data = corrupt(lambda d: d["nodes"].__setitem__(0, 99))
    with pytest.raises(ValidationError, match="node 99"):
        trace_from_dict(data)


def test_out_of_range_object_rejected():
    from repro.errors import ValidationError

    data = corrupt(lambda d: d["objects"].__setitem__(1, -1))
    with pytest.raises(ValidationError, match="object -1"):
        trace_from_dict(data)
