"""Trace serialization round-trips."""

import json

import pytest

from repro.workload.generators import web_workload
from repro.workload.io import load_trace, save_trace, trace_from_dict, trace_to_dict
from tests.conftest import make_trace


def test_dict_round_trip():
    t = make_trace([(1, 0, 0), (2, 1, 1, True)], name="rt")
    back = trace_from_dict(trace_to_dict(t))
    assert back.name == "rt"
    assert len(back) == 2
    assert back.requests[1].is_write
    assert back.num_nodes == t.num_nodes


def test_file_round_trip(tmp_path):
    t = web_workload(num_nodes=3, num_objects=10, requests_scale=0.001, seed=1)
    path = tmp_path / "trace.json"
    save_trace(t, path)
    back = load_trace(path)
    assert len(back) == len(t)
    assert [r.obj for r in back] == [r.obj for r in t]


def test_dict_is_json_serializable():
    t = make_trace([(1, 0, 0)])
    json.dumps(trace_to_dict(t))


def test_version_check():
    data = trace_to_dict(make_trace([(1, 0, 0)]))
    data["version"] = 42
    with pytest.raises(ValueError, match="version"):
        trace_from_dict(data)


def test_inconsistent_columns_rejected():
    data = trace_to_dict(make_trace([(1, 0, 0)]))
    data["nodes"] = []
    with pytest.raises(ValueError, match="inconsistent"):
        trace_from_dict(data)
