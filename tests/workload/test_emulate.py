"""Workload emulation: grammar, determinism, and mass conservation.

The two property tests at the bottom are the contract the chaos campaign
leans on: for any composition of clauses the emulator is (a) bit-identical
call-to-call for a fixed seed and (b) mass-conserving — every epoch's trace
holds *exactly* the request count the arithmetic envelope prescribes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.workload.emulate import (
    emulated_traces,
    emulation_envelope,
    parse_emulation,
)

NODES = 4
OBJECTS = 6
EPOCHS = 5
EPOCH_S = 1800.0
REQUESTS = 80


def fingerprint(traces):
    return [
        [(r.time_s, r.node, r.obj, r.is_write) for r in trace.requests]
        for trace in traces
    ]


def make(spec, **kwargs):
    args = dict(
        epochs=EPOCHS,
        epoch_s=EPOCH_S,
        requests_per_epoch=REQUESTS,
        spec=spec,
        seed=7,
    )
    args.update(kwargs)
    return emulated_traces(NODES, OBJECTS, **args)


# -- grammar ----------------------------------------------------------------


def test_parse_composes_all_clause_kinds():
    plan = parse_emulation(
        "diurnal:amp=0.4,period=6,phase=1;"
        "flashcrowd:epochs=1-2,object=3,mult=10;"
        "burst:epochs=0-1,zone=1,mult=5;"
        "writes:fraction=0.3,epochs=2-4;"
        "clock_skew:ms=250,seed=9"
    )
    assert plan.diurnal.amp == 0.4
    assert plan.flashes[0].obj == 3 and plan.flashes[0].mult == 10
    assert plan.bursts[0].zone == 1
    assert plan.writes[0].fraction == 0.3
    assert plan.skew.ms == 250 and plan.skew.seed == 9


@pytest.mark.parametrize(
    "spec",
    [
        "",
        "nonsense:x=1",
        "diurnal:amp=1.5",
        "diurnal:period=0",
        "flashcrowd:epochs=3-1",
        "flashcrowd:mult=0",
        "burst:epochs=1-2,mult=3",  # needs nodes= or zone=
        "burst:epochs=1-2,nodes=a+b",
        "writes:fraction=1.2",
        "clock_skew:ms=-5",
        "diurnal:amp=0.5,bogus=1",
        "diurnal amp=0.5",
    ],
)
def test_parse_rejects_bad_specs(spec):
    with pytest.raises(ValidationError):
        parse_emulation(spec)


def test_flashcrowd_object_out_of_range_rejected():
    with pytest.raises(ValidationError, match="out of range"):
        make(f"flashcrowd:epochs=0-1,object={OBJECTS},mult=5")


def test_burst_node_out_of_range_rejected():
    with pytest.raises(ValidationError, match="names node"):
        make(f"burst:epochs=0-1,nodes={NODES},mult=5")


def test_burst_zone_needs_a_zone_map():
    spec = "burst:epochs=0-1,zone=1,mult=5"
    with pytest.raises(ValidationError, match="zone map"):
        make(spec, zones=None)
    with pytest.raises(ValidationError, match="empty"):
        make(spec, zones=[0] * NODES)
    make(spec, zones=[0, 0, 1, 1])  # a populated zone works


# -- clause semantics -------------------------------------------------------


def test_flash_crowd_lands_on_its_target_object():
    spec = "flashcrowd:epochs=1-2,object=2,mult=12"
    plain = make("diurnal:amp=0")  # no-op shaping: pure drift substrate
    flashed = make(spec)
    extra = round(REQUESTS / OBJECTS * 12)
    for epoch in (1, 2):
        hits = sum(1 for r in flashed[epoch].requests if r.obj == 2)
        base_hits = sum(1 for r in plain[epoch].requests if r.obj == 2)
        assert hits == base_hits + extra
    assert len(flashed[0].requests) == REQUESTS  # outside the window


def test_write_window_overrides_fraction_inside_window_only():
    traces = make("writes:fraction=1.0,epochs=1-2")
    assert all(r.is_write for r in traces[1].requests)
    assert all(r.is_write for r in traces[2].requests)
    assert not any(r.is_write for r in traces[0].requests)


def test_burst_shifts_demand_toward_the_named_nodes():
    spec = f"burst:epochs=0-{EPOCHS - 1},nodes=0,mult=50"
    plain = make("diurnal:amp=0")
    burst = make(spec)
    plain_share = sum(1 for t in plain for r in t.requests if r.node == 0)
    burst_share = sum(1 for t in burst for r in t.requests if r.node == 0)
    assert burst_share > plain_share
    # Volume is untouched: bursts reweight demand, they do not add any.
    assert [len(t.requests) for t in burst] == [len(t.requests) for t in plain]


def test_no_op_plan_matches_the_drift_substrate_distribution():
    """A clause-free epoch is the drifting workload, modulo apportionment.

    ``drifting_traces`` rounds per-object counts independently (totals can
    miss ``requests_per_epoch`` by a few), the emulator apportions by
    largest remainder (totals are exact) — so the two agree to within one
    request per object, and only the emulator conserves mass exactly.
    """
    from repro.workload.drift import drifting_traces

    plain = drifting_traces(
        NODES,
        OBJECTS,
        epochs=EPOCHS,
        epoch_s=EPOCH_S,
        requests_per_epoch=REQUESTS,
        seed=7,
    )
    emulated = make("diurnal:amp=0")
    for epoch in range(EPOCHS):
        assert len(emulated[epoch].requests) == REQUESTS
        for obj in range(OBJECTS):
            plain_count = sum(1 for r in plain[epoch].requests if r.obj == obj)
            emu_count = sum(1 for r in emulated[epoch].requests if r.obj == obj)
            assert abs(plain_count - emu_count) <= 1


# -- properties: determinism and mass conservation --------------------------

CLAUSE = st.one_of(
    st.builds(
        "diurnal:amp={:.3f},period={},phase={}".format,
        st.floats(min_value=0.0, max_value=0.9),
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=0, max_value=6),
    ),
    st.builds(
        "flashcrowd:epochs={}-{},object={},mult={:.2f}".format,
        st.just(1),
        st.integers(min_value=1, max_value=EPOCHS - 1),
        st.integers(min_value=0, max_value=OBJECTS - 1),
        st.floats(min_value=0.5, max_value=40.0),
    ),
    st.builds(
        "burst:epochs=0-{},nodes={},mult={:.2f}".format,
        st.integers(min_value=0, max_value=EPOCHS - 1),
        st.integers(min_value=0, max_value=NODES - 1),
        st.floats(min_value=0.5, max_value=20.0),
    ),
    st.builds(
        "writes:fraction={:.2f},epochs=0-{}".format,
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=EPOCHS - 1),
    ),
    st.builds(
        "clock_skew:ms={},seed={}".format,
        st.integers(min_value=0, max_value=2000),
        st.integers(min_value=0, max_value=99),
    ),
)

PLANS = st.lists(CLAUSE, min_size=1, max_size=4).map(";".join)


@settings(max_examples=40, deadline=None)
@given(spec=PLANS, seed=st.integers(min_value=0, max_value=2**16))
def test_emulator_is_deterministic_per_seed(spec, seed):
    assert fingerprint(make(spec, seed=seed)) == fingerprint(make(spec, seed=seed))


@settings(max_examples=40, deadline=None)
@given(spec=PLANS, seed=st.integers(min_value=0, max_value=2**16))
def test_emulator_conserves_mass_against_the_envelope(spec, seed):
    traces = make(spec, seed=seed)
    envelope = emulation_envelope(
        parse_emulation(spec),
        epochs=EPOCHS,
        requests_per_epoch=REQUESTS,
        num_objects=OBJECTS,
    )
    assert [len(t.requests) for t in traces] == envelope
    # Clock skew wraps timestamps inside the epoch — never loses a request.
    for trace in traces:
        assert all(0.0 <= r.time_s < EPOCH_S for r in trace.requests)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_different_seeds_give_different_traces(seed):
    a = make("diurnal:amp=0.3", seed=seed)
    b = make("diurnal:amp=0.3", seed=seed + 1)
    assert fingerprint(a) != fingerprint(b)
