"""Streamed demand-matrix construction and object restriction."""

import numpy as np
import pytest

from repro.workload.demand import DemandMatrix
from repro.workload.generators import (
    WorkloadSpec,
    synthetic_request_stream,
    web_workload,
)


def _trace_chunks(trace, chunk_size):
    """Chunk a materialized trace into the stream-batch format."""
    reqs = trace.requests
    for start in range(0, len(reqs), chunk_size):
        batch = reqs[start : start + chunk_size]
        yield (
            np.array([q.node for q in batch]),
            np.array([q.time_s for q in batch]),
            np.array([q.obj for q in batch]),
            np.array([q.is_write for q in batch]),
        )


def test_from_stream_matches_from_trace():
    trace = web_workload(num_nodes=8, num_objects=20, requests_scale=0.02, seed=3)
    dense = DemandMatrix.from_trace(trace, 5)
    streamed = DemandMatrix.from_stream(
        _trace_chunks(trace, 37),
        num_nodes=trace.num_nodes,
        num_objects=trace.num_objects,
        num_intervals=5,
        duration_s=trace.duration_s,
    )
    assert np.array_equal(streamed.reads, dense.reads)
    assert np.array_equal(streamed.writes, dense.writes)
    assert streamed.interval_s == dense.interval_s


def test_from_stream_empty():
    dm = DemandMatrix.from_stream(
        iter(()), num_nodes=4, num_objects=3, num_intervals=2, duration_s=100.0
    )
    assert dm.total_reads == 0.0 and dm.reads.shape == (4, 2, 3)


def test_synthetic_request_stream_counts_and_determinism():
    spec = WorkloadSpec(
        num_nodes=6,
        num_objects=10,
        counts=np.arange(10, dtype=np.int64) * 7,
        write_fraction=0.25,
        seed=9,
    )
    total = int(spec.counts.sum())
    chunks = list(synthetic_request_stream(spec, chunk_size=50))
    assert sum(len(c[0]) for c in chunks) == total
    assert all(len(c[0]) <= 50 for c in chunks)

    dm1 = DemandMatrix.from_stream(
        synthetic_request_stream(spec, chunk_size=50),
        num_nodes=6, num_objects=10, num_intervals=4, duration_s=spec.duration_s,
    )
    dm2 = DemandMatrix.from_stream(
        synthetic_request_stream(spec, chunk_size=50),
        num_nodes=6, num_objects=10, num_intervals=4, duration_s=spec.duration_s,
    )
    assert np.array_equal(dm1.reads, dm2.reads)
    assert np.array_equal(dm1.writes, dm2.writes)
    assert float((dm1.reads + dm1.writes).sum()) == pytest.approx(total)
    # Object 0 has zero popularity weight: never drawn.
    assert (dm1.reads[:, :, 0] + dm1.writes[:, :, 0]).sum() == 0.0


def test_synthetic_request_stream_zero_total():
    spec = WorkloadSpec(num_nodes=3, num_objects=2, counts=np.zeros(2, dtype=np.int64))
    assert list(synthetic_request_stream(spec)) == []


def test_restrict_objects():
    rng = np.random.default_rng(0)
    reads = rng.integers(0, 5, size=(4, 3, 6)).astype(float)
    writes = rng.integers(0, 2, size=(4, 3, 6)).astype(float)
    dm = DemandMatrix(reads=reads, writes=writes, interval_s=60.0)
    sub = dm.restrict_objects([4, 1])
    assert sub.reads.shape == (4, 3, 2)
    assert np.array_equal(sub.reads[:, :, 0], reads[:, :, 4])
    assert np.array_equal(sub.writes[:, :, 1], writes[:, :, 1])
    assert sub.interval_s == 60.0
    # The slice is a copy, not a view.
    sub.reads[0, 0, 0] += 1
    assert dm.reads[0, 0, 4] == reads[0, 0, 4]
