"""Tests for the demand matrix (trace bucketing and aggregations)."""

import numpy as np
import pytest

from repro.workload.demand import DemandMatrix
from tests.conftest import make_trace


def test_from_trace_buckets_by_interval():
    t = make_trace([(0, 0, 0), (1799, 0, 0), (1800, 0, 0), (3599, 1, 1)], duration_s=3600.0)
    dm = DemandMatrix.from_trace(t, num_intervals=2)
    assert dm.reads[0, 0, 0] == 2
    assert dm.reads[0, 1, 0] == 1
    assert dm.reads[1, 1, 1] == 1
    assert dm.interval_s == 1800.0


def test_from_trace_separates_writes():
    t = make_trace([(0, 0, 0), (1, 0, 0, True)])
    dm = DemandMatrix.from_trace(t, num_intervals=1)
    assert dm.reads[0, 0, 0] == 1
    assert dm.writes[0, 0, 0] == 1


def test_from_trace_edge_time_lands_in_last_interval():
    t = make_trace([(3599.999, 0, 0)], duration_s=3600.0)
    dm = DemandMatrix.from_trace(t, num_intervals=4)
    assert dm.reads[0, 3, 0] == 1


def test_validation():
    with pytest.raises(ValueError):
        DemandMatrix(reads=np.zeros((2, 2)))  # not 3-d
    with pytest.raises(ValueError):
        DemandMatrix(reads=-np.ones((1, 1, 1)))
    with pytest.raises(ValueError):
        DemandMatrix(reads=np.zeros((1, 1, 1)), writes=np.zeros((2, 1, 1)))
    with pytest.raises(ValueError):
        DemandMatrix(reads=np.zeros((1, 1, 1)), interval_s=0.0)
    with pytest.raises(ValueError):
        DemandMatrix.from_trace(make_trace([(0, 0, 0)]), num_intervals=0)


def test_shape_properties():
    dm = DemandMatrix(reads=np.zeros((3, 4, 5)))
    assert (dm.num_nodes, dm.num_intervals, dm.num_objects) == (3, 4, 5)


def test_aggregations():
    reads = np.zeros((2, 2, 3))
    reads[0, 0, 0] = 2
    reads[1, 1, 2] = 3
    dm = DemandMatrix(reads=reads)
    assert dm.total_reads == 5
    assert dm.reads_per_node().tolist() == [2, 3]
    assert dm.reads_per_object().tolist() == [2, 0, 3]
    assert dm.reads_per_interval().tolist() == [2, 3]


def test_active_objects():
    reads = np.zeros((1, 1, 4))
    reads[0, 0, 1] = 1
    writes = np.zeros_like(reads)
    writes[0, 0, 3] = 1
    dm = DemandMatrix(reads=reads, writes=writes)
    assert dm.active_objects().tolist() == [1, 3]


def test_first_access_interval():
    reads = np.zeros((2, 3, 2))
    reads[0, 1, 0] = 1
    reads[0, 2, 0] = 1
    reads[1, 0, 1] = 1
    dm = DemandMatrix(reads=reads)
    first = dm.first_access_interval()
    assert first[0, 0] == 1
    assert first[1, 1] == 0
    assert first[0, 1] == -1  # never accessed


def test_accessed_mask():
    reads = np.zeros((1, 2, 1))
    reads[0, 1, 0] = 2
    dm = DemandMatrix(reads=reads)
    assert dm.accessed()[0, 1, 0]
    assert not dm.accessed()[0, 0, 0]


def test_coarsen_merges_intervals():
    reads = np.zeros((1, 4, 1))
    reads[0] = [[1], [2], [3], [4]]
    dm = DemandMatrix(reads=reads, interval_s=100.0)
    c = dm.coarsen(2)
    assert c.num_intervals == 2
    assert c.reads[0, 0, 0] == 3
    assert c.reads[0, 1, 0] == 7
    assert c.interval_s == 200.0


def test_coarsen_uneven_factor():
    dm = DemandMatrix(reads=np.ones((1, 5, 1)))
    c = dm.coarsen(2)
    assert c.num_intervals == 3
    assert c.total_reads == dm.total_reads


def test_coarsen_validation():
    with pytest.raises(ValueError):
        DemandMatrix(reads=np.ones((1, 2, 1))).coarsen(0)


def test_restrict_nodes():
    reads = np.zeros((3, 1, 1))
    reads[2, 0, 0] = 5
    dm = DemandMatrix(reads=reads)
    sub = dm.restrict_nodes([2, 0])
    assert sub.num_nodes == 2
    assert sub.reads[0, 0, 0] == 5


def test_repr_mentions_shape():
    dm = DemandMatrix(reads=np.ones((2, 3, 4)))
    assert "nodes=2" in repr(dm)
