"""Tests for the WEB / GROUP workload generators."""

import numpy as np
import pytest

from repro.workload.generators import (
    WorkloadSpec,
    group_workload,
    synthetic_workload,
    web_workload,
)
from repro.workload.stats import characterize, object_counts


def test_web_matches_paper_anchors_at_full_scale():
    trace = web_workload(num_nodes=5, num_objects=1000, requests_scale=1.0, seed=1)
    stats = characterize(trace)
    assert stats.max_object_count == 36_000
    assert stats.min_object_count == 1
    assert stats.num_requests == pytest.approx(300_000, rel=0.15)


def test_web_scaled_keeps_heavy_tail():
    trace = web_workload(num_nodes=5, num_objects=100, requests_scale=0.02, seed=1)
    counts = object_counts(trace)
    assert counts.max() >= 100 * counts[counts > 0].min()


def test_web_deterministic():
    a = web_workload(num_nodes=4, num_objects=20, requests_scale=0.01, seed=9)
    b = web_workload(num_nodes=4, num_objects=20, requests_scale=0.01, seed=9)
    assert [(r.time_s, r.node, r.obj) for r in a] == [(r.time_s, r.node, r.obj) for r in b]


def test_web_rejects_bad_scale():
    with pytest.raises(ValueError):
        web_workload(requests_scale=0.0)


def test_group_all_objects_popular():
    trace = group_workload(num_nodes=5, num_objects=30, requests_scale=0.01, seed=2)
    counts = object_counts(trace)
    assert (counts > 0).all()
    # Uniform band: max/min ratio bounded by ~36000/8500 plus sampling noise.
    assert counts.max() / counts.min() < 8.0


def test_group_full_scale_band():
    trace = group_workload(num_nodes=3, num_objects=40, requests_scale=1.0, seed=2)
    counts = object_counts(trace)
    assert counts.min() >= 8_000
    assert counts.max() <= 36_500


def test_group_rejects_bad_scale():
    with pytest.raises(ValueError):
        group_workload(requests_scale=-1.0)


def test_populations_skew_demand():
    pops = [10.0, 1.0, 1.0, 1.0]
    trace = web_workload(num_nodes=4, num_objects=50, populations=pops, requests_scale=0.05, seed=3)
    per_node = characterize(trace).reads_per_node
    assert per_node[0] > 3 * per_node[1]


def test_requests_within_duration():
    trace = group_workload(num_nodes=3, num_objects=10, requests_scale=0.001, duration_s=1000.0)
    assert all(0 <= r.time_s < 1000.0 for r in trace)


def test_write_fraction():
    spec = WorkloadSpec(
        num_nodes=2,
        num_objects=5,
        counts=np.full(5, 200),
        write_fraction=0.5,
        seed=4,
    )
    trace = synthetic_workload(spec)
    frac = trace.num_writes / len(trace)
    assert 0.4 < frac < 0.6


def test_diurnal_concentrates_midday():
    spec = WorkloadSpec(
        num_nodes=1,
        num_objects=3,
        counts=np.full(3, 2000),
        diurnal=True,
        seed=5,
    )
    trace = synthetic_workload(spec)
    mid = sum(1 for r in trace if 0.25 < r.time_s / trace.duration_s < 0.75)
    assert mid / len(trace) > 0.55


def test_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(num_nodes=0, num_objects=1, counts=np.array([1]))
    with pytest.raises(ValueError):
        WorkloadSpec(num_nodes=1, num_objects=2, counts=np.array([1]))
    with pytest.raises(ValueError):
        WorkloadSpec(num_nodes=1, num_objects=1, counts=np.array([-1]))
    with pytest.raises(ValueError):
        WorkloadSpec(num_nodes=1, num_objects=1, counts=np.array([1]), write_fraction=2.0)
    with pytest.raises(ValueError):
        WorkloadSpec(
            num_nodes=2, num_objects=1, counts=np.array([1]), populations=np.array([0.0, 0.0])
        )


def test_zero_count_objects_skipped():
    spec = WorkloadSpec(num_nodes=1, num_objects=3, counts=np.array([5, 0, 5]), seed=0)
    trace = synthetic_workload(spec)
    assert object_counts(trace)[1] == 0
    assert len(trace) == 10


def test_trace_names():
    assert web_workload(num_nodes=2, num_objects=5, requests_scale=0.001).name == "WEB"
    assert group_workload(num_nodes=2, num_objects=5, requests_scale=0.001).name == "GROUP"


def test_flash_crowd_spikes_target_object():
    from repro.workload.generators import flash_crowd_workload

    trace = flash_crowd_workload(
        num_nodes=5, num_objects=20, base_scale=0.02, flash_object=3,
        flash_start_frac=0.5, flash_duration_frac=0.25, flash_multiplier=30.0,
        seed=4,
    )
    from repro.workload.stats import object_counts

    counts = object_counts(trace)
    # the flash object dominates even the rank-1 background object
    assert counts[3] > counts[0]
    # and its extra traffic is concentrated in the flash window
    in_window = sum(
        1
        for r in trace
        if r.obj == 3 and 0.5 <= r.time_s / trace.duration_s < 0.75
    )
    assert in_window > 0.8 * (counts[3] - counts.mean())


def test_flash_crowd_validation():
    from repro.workload.generators import flash_crowd_workload
    import pytest as _pytest

    with _pytest.raises(ValueError):
        flash_crowd_workload(num_objects=5, flash_object=9)
    with _pytest.raises(ValueError):
        flash_crowd_workload(flash_start_frac=1.2)
    with _pytest.raises(ValueError):
        flash_crowd_workload(flash_start_frac=0.9, flash_duration_frac=0.5)
    with _pytest.raises(ValueError):
        flash_crowd_workload(flash_multiplier=0.0)


def test_flash_crowd_deterministic():
    from repro.workload.generators import flash_crowd_workload

    a = flash_crowd_workload(num_nodes=3, num_objects=10, base_scale=0.01, seed=5)
    b = flash_crowd_workload(num_nodes=3, num_objects=10, base_scale=0.01, seed=5)
    assert len(a) == len(b)
    assert [(r.time_s, r.node, r.obj) for r in a][:50] == [
        (r.time_s, r.node, r.obj) for r in b
    ][:50]
