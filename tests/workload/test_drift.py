"""Drifting workload generation and epoch slicing."""

import numpy as np
import pytest

from repro.workload.drift import drifting_traces, epoch_slices
from repro.workload.generators import WorkloadSpec, synthetic_workload
from repro.workload.trace import Trace


def per_object_counts(trace):
    counts = np.zeros(trace.num_objects, dtype=np.int64)
    for r in trace.requests:
        counts[r.obj] += 1
    return counts


def per_node_counts(trace):
    counts = np.zeros(trace.num_nodes, dtype=np.int64)
    for r in trace.requests:
        counts[r.node] += 1
    return counts


class TestDriftingTraces:
    def test_one_trace_per_epoch_with_constant_volume(self):
        traces = drifting_traces(
            4, 8, epochs=3, epoch_s=600.0, requests_per_epoch=200, seed=1
        )
        assert len(traces) == 3
        for i, t in enumerate(traces):
            assert t.duration_s == 600.0
            assert t.name == f"drift[{i}]"
            # Rounding the Zipf split can shave a request or two.
            assert abs(len(t.requests) - 200) <= t.num_objects

    def test_deterministic_in_seed(self):
        a = drifting_traces(4, 8, epochs=2, epoch_s=600.0, requests_per_epoch=100, seed=5)
        b = drifting_traces(4, 8, epochs=2, epoch_s=600.0, requests_per_epoch=100, seed=5)
        c = drifting_traces(4, 8, epochs=2, epoch_s=600.0, requests_per_epoch=100, seed=6)
        for x, y in zip(a, b):
            assert x.requests == y.requests
        assert a[0].requests != c[0].requests

    def test_epochs_draw_distinct_substreams(self):
        a, b = drifting_traces(
            4, 8, epochs=2, epoch_s=600.0, requests_per_epoch=100, drift=0.0, seed=2
        )
        assert a.requests != b.requests, "same distribution, different draw"

    def test_zero_drift_keeps_the_distribution_fixed(self):
        traces = drifting_traces(
            4, 8, epochs=3, epoch_s=600.0, requests_per_epoch=4000, drift=0.0, seed=3
        )
        first = per_object_counts(traces[0])
        for t in traces[1:]:
            # Same Zipf ranking every epoch: per-object counts match up to
            # sampling noise on 4000 draws.
            assert np.abs(per_object_counts(t) - first).max() < 200

    def test_drift_rotates_the_popularity_ranking(self):
        traces = drifting_traces(
            4, 8, epochs=2, epoch_s=600.0, requests_per_epoch=4000, drift=0.5, seed=3
        )
        hot0 = int(np.argmax(per_object_counts(traces[0])))
        hot1 = int(np.argmax(per_object_counts(traces[1])))
        # drift=0.5 over 8 objects shifts the ranking by 4 positions.
        assert hot1 == (hot0 + 4) % 8

    def test_drift_blends_node_populations(self):
        traces = drifting_traces(
            4, 8, epochs=2, epoch_s=600.0, requests_per_epoch=4000,
            drift=0.5, populations=[8.0, 0.0, 0.0, 0.0], seed=4,
        )
        assert per_node_counts(traces[0])[0] == pytest.approx(4000, abs=8)
        later = per_node_counts(traces[1])
        # Half the weight rolled from node 0 onto node 1.
        assert later[0] > 0 and later[1] > 0
        assert later[0] + later[1] == pytest.approx(4000, abs=8)

    def test_parameter_validation(self):
        ok = dict(epochs=1, epoch_s=600.0, requests_per_epoch=10)
        with pytest.raises(ValueError):
            drifting_traces(4, 8, **{**ok, "epochs": 0})
        with pytest.raises(ValueError):
            drifting_traces(4, 8, **{**ok, "requests_per_epoch": 0})
        with pytest.raises(ValueError):
            drifting_traces(4, 8, drift=1.5, **ok)
        with pytest.raises(ValueError):
            drifting_traces(4, 8, populations=[1.0, 2.0], **ok)


class TestEpochSlices:
    def trace(self, duration=1000.0):
        spec = WorkloadSpec(
            num_nodes=4, num_objects=4, counts=np.array([40, 30, 20, 10]),
            duration_s=duration, seed=9, name="long",
        )
        return synthetic_workload(spec)

    def test_slices_cover_every_request_rebased(self):
        trace = self.trace()
        slices = epoch_slices(trace, 300.0)
        assert [s.duration_s for s in slices] == [300.0, 300.0, 300.0, 100.0]
        assert sum(len(s.requests) for s in slices) == len(trace.requests)
        for s in slices:
            assert all(0.0 <= r.time_s < s.duration_s or
                       r.time_s == s.duration_s for r in s.requests)
        assert [s.name for s in slices] == [f"long[{i}]" for i in range(4)]

    def test_slice_order_preserves_the_original_stream(self):
        trace = self.trace()
        slices = epoch_slices(trace, 400.0)
        rebuilt = [
            (r.time_s + i * 400.0, r.node, r.obj)
            for i, s in enumerate(slices)
            for r in s.requests
        ]
        original = [(r.time_s, r.node, r.obj) for r in trace.requests]
        assert rebuilt == original

    def test_epoch_longer_than_trace_yields_single_slice(self):
        trace = self.trace(duration=500.0)
        slices = epoch_slices(trace, 900.0)
        assert len(slices) == 1
        assert slices[0].duration_s == 500.0

    def test_nonpositive_epoch_rejected(self):
        with pytest.raises(ValueError):
            epoch_slices(self.trace(), 0.0)
