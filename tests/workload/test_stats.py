"""Tests for workload characterization and inter-arrival statistics."""

import math

import numpy as np
import pytest

from repro.workload.stats import (
    characterize,
    fit_zipf_exponent,
    min_interarrival,
    object_counts,
)
from tests.conftest import make_trace


def test_object_counts_ignores_writes():
    t = make_trace([(1, 0, 0), (2, 0, 0, True), (3, 0, 1)])
    counts = object_counts(t)
    assert counts.tolist() == [1, 1, 0, 0]  # the write to object 0 is not a read


def test_fit_zipf_recovers_exponent():
    ranks = np.arange(1, 201, dtype=float)
    counts = np.round(10_000 * ranks ** -1.3).astype(int)
    fitted = fit_zipf_exponent(counts)
    assert fitted == pytest.approx(1.3, abs=0.1)


def test_fit_zipf_needs_three_points():
    assert fit_zipf_exponent(np.array([5, 0, 0])) is None


def test_characterize_summary():
    t = make_trace([(1, 0, 0), (2, 1, 0), (3, 0, 1, True)], name="demo")
    stats = characterize(t)
    assert stats.name == "demo"
    assert stats.num_reads == 2
    assert stats.num_writes == 1
    assert stats.active_objects == 1  # both reads hit object 0; object 1 only written
    assert stats.max_object_count == 2
    assert stats.reads_per_node.tolist() == [1, 1, 0, 0]
    assert "demo" in str(stats)


def test_min_interarrival_global():
    t = make_trace([(0, 0, 0), (10, 1, 0), (13, 2, 0)])
    m1, m2 = min_interarrival(t)
    assert m1 == pytest.approx(3.0)
    assert m2 == pytest.approx(10.0)


def test_min_interarrival_single_gap():
    t = make_trace([(0, 0, 0), (5, 0, 0)])
    m1, m2 = min_interarrival(t)
    assert m1 == pytest.approx(5.0)
    assert math.isinf(m2)


def test_min_interarrival_no_gaps():
    t = make_trace([(1, 0, 0)])
    m1, m2 = min_interarrival(t)
    assert math.isinf(m1) and math.isinf(m2)


def test_min_interarrival_respects_interaction_spheres():
    # Nodes 0 and 1 interact; node 2 is isolated.  The 1-second gap between
    # node-2 accesses must not leak into node 0/1 spheres.
    t = make_trace([(0, 0, 0), (100, 1, 0), (200, 2, 0), (201, 2, 0)], num_nodes=3)
    interaction = np.array([[1, 1, 0], [1, 1, 0], [0, 0, 1]])
    m1, _ = min_interarrival(t, interaction)
    assert m1 == pytest.approx(1.0)  # node 2's own sphere has the 1s gap
    no2 = np.array([[1, 1, 0], [1, 1, 0], [0, 0, 0]])
    m1b, _ = min_interarrival(t, no2)
    assert m1b == pytest.approx(100.0)


def test_min_interarrival_duplicate_timestamps_skipped():
    t = make_trace([(5, 0, 0), (5, 1, 0), (8, 0, 0)])
    m1, _ = min_interarrival(t)
    assert m1 == pytest.approx(3.0)
