"""Tests for Zipf popularity utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.zipf import (
    ZipfSampler,
    zipf_counts,
    zipf_exponent_for_anchors,
    zipf_mandelbrot_counts,
    zipf_weights,
)


def test_weights_monotone_decreasing():
    w = zipf_weights(10, 1.0)
    assert all(a >= b for a, b in zip(w, w[1:]))


def test_weights_flat_for_zero_exponent():
    assert np.allclose(zipf_weights(5, 0.0), 1.0)


def test_weights_validation():
    with pytest.raises(ValueError):
        zipf_weights(0, 1.0)
    with pytest.raises(ValueError):
        zipf_weights(5, -1.0)


def test_exponent_for_anchors():
    s = zipf_exponent_for_anchors(1000, 36_000, 1)
    # 36000 = 1000^s  ->  s = log(36000)/log(1000) ~ 1.52
    assert s == pytest.approx(1.518, abs=0.01)


def test_exponent_anchor_validation():
    with pytest.raises(ValueError):
        zipf_exponent_for_anchors(1, 10, 1)
    with pytest.raises(ValueError):
        zipf_exponent_for_anchors(10, 1, 10)


def test_zipf_counts_hits_anchors():
    counts = zipf_counts(100, max_count=1000, min_count=1)
    assert counts[0] == 1000
    assert counts[-1] == 1
    assert all(a >= b for a, b in zip(counts, counts[1:]))


def test_zipf_counts_single_object():
    assert zipf_counts(1, max_count=7).tolist() == [7]


def test_mandelbrot_hits_three_anchors():
    counts = zipf_mandelbrot_counts(1000, max_count=36_000, min_count=1, total=300_000)
    assert counts[0] == 36_000
    assert counts[-1] == 1
    assert counts.sum() == pytest.approx(300_000, rel=0.1)


def test_mandelbrot_monotone():
    counts = zipf_mandelbrot_counts(500, max_count=10_000, min_count=1, total=80_000)
    assert all(a >= b for a, b in zip(counts, counts[1:]))


def test_mandelbrot_without_total_falls_back():
    a = zipf_mandelbrot_counts(50, max_count=100, min_count=1)
    b = zipf_counts(50, max_count=100, min_count=1)
    assert np.array_equal(a, b)


def test_mandelbrot_inconsistent_total_rejected():
    with pytest.raises(ValueError):
        zipf_mandelbrot_counts(10, max_count=5, min_count=1, total=1000)


def test_mandelbrot_extreme_totals_clamp():
    # A total near the steepest-possible curve is served with the minimum shift.
    counts = zipf_mandelbrot_counts(100, max_count=1000, min_count=1, total=1005)
    assert counts[0] == 1000
    assert counts.min() >= 1


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=300),
    max_count=st.integers(min_value=10, max_value=10_000),
)
def test_mandelbrot_properties(n, max_count):
    total = int(n * np.sqrt(max_count))  # somewhere between min and max
    total = min(max(total, max_count, n), n * max_count)
    counts = zipf_mandelbrot_counts(n, max_count=max_count, min_count=1, total=total)
    assert counts[0] == max_count
    assert counts.min() >= 1
    assert len(counts) == n
    assert all(a >= b for a, b in zip(counts, counts[1:]))


def test_sampler_distribution_skews_to_low_ranks():
    sampler = ZipfSampler(100, exponent=1.2, seed=0)
    draws = sampler.sample(5000)
    assert draws.min() >= 0 and draws.max() < 100
    # rank 0 should be sampled far more often than rank 50
    counts = np.bincount(draws, minlength=100)
    assert counts[0] > counts[50] * 3


def test_sampler_pmf_sums_to_one():
    sampler = ZipfSampler(20, exponent=0.8)
    assert sum(sampler.pmf(k) for k in range(20)) == pytest.approx(1.0)


def test_sampler_reproducible():
    a = ZipfSampler(50, 1.0, seed=42).sample(100)
    b = ZipfSampler(50, 1.0, seed=42).sample(100)
    assert np.array_equal(a, b)


def test_sampler_rejects_negative_size():
    with pytest.raises(ValueError):
        ZipfSampler(10, 1.0, seed=0).sample(-1)
