"""Resumable runs: only failed/pending tasks re-execute on --resume."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.runner import ExperimentRunner, ResumeState, RetryPolicy, RunWriter
from repro.runner.resilience import TaskFailure
from tests.runner.test_resilience import probe


def run_once(tmp_path, tasks, **runner_kwargs):
    runner = ExperimentRunner(
        artifacts=RunWriter(root=tmp_path / "runs", label="resume-test"),
        policy=RetryPolicy(on_error="skip"),
        **runner_kwargs,
    )
    results = runner.map(tasks)
    run_dir = runner.finalize()
    return runner, results, Path(run_dir)


def test_resume_reexecutes_only_the_failed_task(tmp_path):
    tasks = [
        probe(tmp_path, "a"),
        probe(tmp_path, "broken", fail_times=10),
        probe(tmp_path, "c"),
    ]
    first, results, run_dir = run_once(tmp_path, tasks)
    assert isinstance(results[1], TaskFailure)
    assert first.failed == 1

    manifest = json.loads((run_dir / "manifest.json").read_text())
    assert manifest["ok"] == 2 and manifest["failed"] == 1

    # The fault "healed": same idents (same digests), failure knob removed.
    healed = [probe(tmp_path, "a"), probe(tmp_path, "broken"), probe(tmp_path, "c")]
    second = ExperimentRunner(
        artifacts=RunWriter(root=tmp_path / "runs", label="resume-test"),
        policy=RetryPolicy(on_error="skip"),
        resume=ResumeState(run_dir),
    )
    resumed = second.map(healed)
    assert second.executed == 1  # only the previously-failed task re-ran
    assert second.resumed == 2
    assert second.failed == 0
    assert [r["ident"] for r in resumed] == ["a", "broken", "c"]
    # Served results are the first run's payloads, not re-executions.
    assert resumed[0] == {"ident": "a", "attempts": 1}

    final = json.loads((Path(second.finalize()) / "manifest.json").read_text())
    assert final["ok"] == 3 and final["failed"] == 0 and final["pending"] == 0


def test_resume_summary_counts(tmp_path):
    tasks = [probe(tmp_path, "x"), probe(tmp_path, "y", fail_times=10)]
    _first, _results, run_dir = run_once(tmp_path, tasks)
    second = ExperimentRunner(
        policy=RetryPolicy(on_error="skip"), resume=ResumeState(run_dir)
    )
    second.map([probe(tmp_path, "x"), probe(tmp_path, "y")])
    assert "resumed=1" in second.summary()
    assert "failed=0" in second.summary()


def test_resume_state_serves_only_ok_rows(tmp_path):
    writer = RunWriter(root=tmp_path / "runs", label="partial")
    ids = writer.plan(
        [("probe", "probe[ok]", "k-ok"), ("probe", "probe[bad]", "k-bad"),
         ("probe", "probe[never]", "k-never")]
    )
    writer.record(
        index=ids[0], kind="probe", label="probe[ok]", key="k-ok",
        cached=False, seconds=1.5, status="ok", attempts=1,
        payload={"ident": "ok", "attempts": 1},
    )
    writer.record(
        index=ids[1], kind="probe", label="probe[bad]", key="k-bad",
        cached=False, seconds=0.2, status="failed", attempts=2,
        error="boom", failure={"error": "boom"},
    )
    # ids[2] stays pending — as if the run crashed here.

    state = ResumeState(writer.run_dir)
    assert len(state) == 1
    assert state.load("k-ok", "probe") == {"ident": "ok", "attempts": 1}
    assert state.load("k-bad", "probe") is None
    assert state.load("k-never", "probe") is None
    assert state.seconds("k-ok") == 1.5
    assert state.counts() == {"ok": 1, "failed": 1, "pending": 1}


def test_resume_state_missing_dir_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        ResumeState(tmp_path / "no-such-run")


def test_resume_without_manifest_uses_payload_files(tmp_path):
    run_dir = tmp_path / "orphan"
    (run_dir / "tasks").mkdir(parents=True)
    (run_dir / "tasks" / "000-abc.json").write_text(
        json.dumps({"kind": "probe", "key": "k1", "payload": {"ident": "a", "attempts": 1}})
    )
    (run_dir / "tasks" / "001-def.json").write_text(
        json.dumps({"kind": "probe", "key": "k2", "failure": {"error": "boom"}})
    )
    state = ResumeState(run_dir)
    assert state.load("k1", "probe") == {"ident": "a", "attempts": 1}
    assert state.load("k2", "probe") is None  # failures never resume as results


def test_resumed_tasks_report_original_seconds(tmp_path):
    writer = RunWriter(root=tmp_path / "runs", label="timed")
    task = probe(tmp_path, "slowpoke")
    writer.record(
        kind="probe", label=task.label, key=task.cache_key(),
        cached=False, seconds=3.25, status="ok", attempts=1,
        payload={"ident": "slowpoke", "attempts": 1},
    )
    run_dir = writer.finalize()

    second = ExperimentRunner(
        artifacts=RunWriter(root=tmp_path / "runs", label="timed-2"),
        resume=ResumeState(run_dir),
    )
    result = second.map([task])[0]
    assert result == {"ident": "slowpoke", "attempts": 1}
    assert second.resumed == 1
    manifest = json.loads((Path(second.finalize()) / "manifest.json").read_text())
    record = manifest["task_records"][0]
    assert record["cached"] is True
    assert record["seconds"] == 3.25
