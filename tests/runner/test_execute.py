"""The scheduler: ordering, parallel equivalence, caching, artifacts."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core.bounds import compute_lower_bound
from repro.core.classes import get_class
from repro.runner import ExperimentRunner, make_runner, run_tasks
from repro.runner.tasks import BoundTask, HeuristicSpec, SimulateTask


LEVELS = [0.7, 0.8, 0.9]
CLASSES = ["caching", "replica-constrained"]


def bound_tasks(problem, reuse=True):
    from repro.analysis.sweep import sweep_tasks

    return sweep_tasks(
        problem,
        LEVELS,
        [get_class(c) for c in CLASSES],
        do_rounding=False,
        backend="scipy",
        reuse_formulation=reuse,
    )


def costs(results):
    return [(r.feasible, r.lp_cost) for r in results]


def direct_costs(problem):
    """The pre-runner ground truth: fresh build + solve per (class, level)."""
    out = []
    for cls in CLASSES:
        for level in LEVELS:
            leveled = dataclasses.replace(
                problem, goal=dataclasses.replace(problem.goal, fraction=level)
            )
            result = compute_lower_bound(
                leveled,
                get_class(cls).properties,
                do_rounding=False,
                backend="scipy",
            )
            out.append((result.feasible, result.lp_cost))
    return out


def test_jobs1_matches_direct_path(web_problem):
    results = run_tasks(bound_tasks(web_problem))
    expected = direct_costs(web_problem)
    got = costs(results)
    assert [f for f, _ in got] == [f for f, _ in expected]
    for (_, a), (_, b) in zip(got, expected):
        if a is None or b is None:
            assert a == b
        else:
            assert a == pytest.approx(b, rel=1e-9)


def test_jobs2_matches_jobs1(web_problem):
    tasks = bound_tasks(web_problem)
    serial = run_tasks(tasks, ExperimentRunner(jobs=1))
    parallel = run_tasks(tasks, ExperimentRunner(jobs=2))
    assert costs(serial) == costs(parallel)


def test_results_come_back_in_task_order(web_problem):
    tasks = bound_tasks(web_problem)
    results = run_tasks(tasks, ExperimentRunner(jobs=2))
    # Task i is class CLASSES[i // len(LEVELS)] at LEVELS[i % len(LEVELS)]:
    # bounds within one class are non-decreasing in the QoS level.
    for c in range(len(CLASSES)):
        per_class = results[c * len(LEVELS) : (c + 1) * len(LEVELS)]
        feasible = [r.lp_cost for r in per_class if r.feasible]
        assert feasible == sorted(feasible)


def test_chunks_group_by_reuse_key(web_problem):
    tasks = bound_tasks(web_problem, reuse=True)
    runner = ExperimentRunner(jobs=1)
    chunks = runner._chunks(tasks, list(range(len(tasks))))
    assert [len(c) for c in chunks] == [len(LEVELS)] * len(CLASSES)

    no_reuse = bound_tasks(web_problem, reuse=False)
    singletons = runner._chunks(no_reuse, list(range(len(no_reuse))))
    assert [len(c) for c in singletons] == [1] * len(no_reuse)


def test_warm_cache_executes_nothing(web_problem, tmp_path):
    tasks = bound_tasks(web_problem)

    cold = make_runner(jobs=1, cache_dir=tmp_path / "cache")
    first = run_tasks(tasks, cold)
    assert cold.executed == len(tasks)
    assert cold.cache_hits == 0

    warm = make_runner(jobs=2, cache_dir=tmp_path / "cache")
    second = run_tasks(tasks, warm)
    assert warm.executed == 0
    assert warm.cache_hits == len(tasks)
    assert warm.cache_misses == 0
    assert costs(first) == costs(second)


def test_cache_key_ignores_label_but_not_level(web_problem):
    goal = dataclasses.replace(web_problem.goal, fraction=0.8)
    leveled = dataclasses.replace(web_problem, goal=goal)
    a = BoundTask(problem=leveled, label="one")
    b = BoundTask(problem=leveled, label="two")
    assert a.cache_key() == b.cache_key()
    other_level = dataclasses.replace(
        web_problem, goal=dataclasses.replace(goal, fraction=0.9)
    )
    c = BoundTask(problem=other_level)
    assert a.cache_key() != c.cache_key()


def test_run_artifacts_manifest(web_problem, tmp_path):
    tasks = bound_tasks(web_problem)
    runner = make_runner(
        jobs=1, cache_dir=tmp_path / "cache", run_dir=tmp_path / "runs", label="sweep"
    )
    run_tasks(tasks, runner)
    run_dir = runner.finalize({"note": "test"})
    assert run_dir is not None

    manifest = json.loads((tmp_path / "runs").glob("*/manifest.json").__next__().read_text())
    assert manifest["tasks"] == len(tasks)
    assert manifest["executed"] == len(tasks)
    assert manifest["cache_hits"] == 0
    assert manifest["jobs"] == 1
    assert manifest["note"] == "test"
    assert len(manifest["task_records"]) == len(tasks)

    from pathlib import Path

    task_files = sorted(Path(run_dir).glob("tasks/*.json"))
    assert len(task_files) == len(tasks)
    assert (Path(run_dir) / "timing.txt").exists()


def test_simulate_task_matches_direct_simulate(small_topology, web_trace):
    from repro.heuristics import LRUCaching
    from repro.simulator.engine import simulate

    spec = HeuristicSpec(name="lru", capacity=8)
    task = SimulateTask(
        topology=small_topology,
        trace=web_trace,
        heuristic=spec,
        tlat_ms=150.0,
        warmup_s=600.0,
        cost_interval_s=3600.0,
        label="simulate[lru]",
    )
    via_runner = run_tasks([task], ExperimentRunner(jobs=1))[0]
    direct = simulate(
        small_topology,
        web_trace,
        LRUCaching(capacity=8),
        tlat_ms=150.0,
        warmup_s=600.0,
        cost_interval_s=3600.0,
    )
    assert via_runner.total_cost == direct.total_cost
    assert via_runner.qos == direct.qos


def test_jobs_must_be_positive():
    with pytest.raises(ValueError):
        ExperimentRunner(jobs=0)


def test_undecodable_cache_entry_is_a_miss(web_problem, tmp_path):
    """A stale/corrupt cached payload re-executes instead of crashing."""
    from repro.runner.cache import ResultCache

    task = bound_tasks(web_problem)[0]
    cache = ResultCache(tmp_path / "cache")
    cache.store(task.cache_key(), task.kind, {"garbage": True}, 0.1)

    runner = ExperimentRunner(cache=cache)
    result = runner.map([task])[0]
    assert runner.executed == 1
    assert runner.cache_hits == 0
    assert result.feasible is not None  # a real LowerBoundResult, not garbage
    # The re-executed result overwrote the bad entry.
    assert "garbage" not in cache.load(task.cache_key(), task.kind)

    warm = ExperimentRunner(cache=cache)
    warm.map([task])
    assert warm.cache_hits == 1


def test_cache_hits_surface_original_solve_seconds(web_problem, tmp_path):
    """A served task's manifest row shows the stored solve time, not 0.0."""
    from pathlib import Path

    from repro.runner.cache import ResultCache

    task = bound_tasks(web_problem)[0]
    cache = ResultCache(tmp_path / "cache")
    cache.store(task.cache_key(), task.kind, task.encode(task.run()), 3.25)

    runner = make_runner(cache_dir=tmp_path / "cache", run_dir=tmp_path / "runs")
    runner.map([task])
    assert runner.cache_hits == 1
    manifest = json.loads(
        (Path(runner.finalize()) / "manifest.json").read_text()
    )
    record = manifest["task_records"][0]
    assert record["cached"] is True
    assert record["seconds"] == 3.25
    assert manifest["seconds"] >= 3.25
