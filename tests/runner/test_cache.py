"""The on-disk cache: round trips, safe misses, atomic writes."""

from __future__ import annotations

import json

from repro.runner.cache import ResultCache
from repro.runner.digest import SCHEMA_VERSION, digest_of


def test_store_load_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = digest_of("entry")
    payload = {"feasible": True, "lp_cost": 12.5, "nested": {"a": [1, 2]}}
    cache.store(key, "bound", payload, seconds=0.25)
    assert cache.load(key, "bound") == payload
    assert len(cache) == 1


def test_missing_key_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.load(digest_of("absent"), "bound") is None


def test_kind_mismatch_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    key = digest_of("entry")
    cache.store(key, "bound", {"x": 1}, seconds=0.0)
    assert cache.load(key, "simulate") is None
    assert cache.load(key, "bound") == {"x": 1}


def test_schema_mismatch_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    key = digest_of("entry")
    cache.store(key, "bound", {"x": 1}, seconds=0.0)
    path = cache._path(key)
    entry = json.loads(path.read_text())
    entry["schema"] = SCHEMA_VERSION + "-stale"
    path.write_text(json.dumps(entry))
    assert cache.load(key, "bound") is None


def test_corrupt_file_is_a_miss_and_recoverable(tmp_path):
    cache = ResultCache(tmp_path)
    key = digest_of("entry")
    cache.store(key, "bound", {"x": 1}, seconds=0.0)
    cache._path(key).write_text("{not json")
    assert cache.load(key, "bound") is None
    cache.store(key, "bound", {"x": 2}, seconds=0.0)
    assert cache.load(key, "bound") == {"x": 2}


def test_store_leaves_no_temp_files(tmp_path):
    cache = ResultCache(tmp_path)
    for i in range(5):
        cache.store(digest_of("k", i), "bound", {"i": i}, seconds=0.0)
    leftovers = list(tmp_path.rglob("*.tmp"))
    assert leftovers == []
    assert len(cache) == 5
