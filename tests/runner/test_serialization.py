"""to_dict/from_dict round trips must survive real JSON encoding.

Every result that crosses the cache or run-artifact boundary is encoded with
``to_dict``, serialized by ``json.dump`` and decoded with ``from_dict`` — so
the round trips here go through an actual JSON string, not just the dicts.
"""

from __future__ import annotations

import json

import numpy as np


from repro.core.bounds import LowerBoundResult, compute_lower_bound
from repro.core.classes import get_class
from repro.heuristics import LRUCaching
from repro.lp.solution import LPSolution
from repro.simulator.engine import SimulationResult, simulate


def json_round_trip(payload):
    return json.loads(json.dumps(payload))


def test_lower_bound_result_round_trip(web_problem):
    import dataclasses

    relaxed = dataclasses.replace(
        web_problem, goal=dataclasses.replace(web_problem.goal, fraction=0.7)
    )
    result = compute_lower_bound(
        relaxed, get_class("caching").properties, do_rounding=True
    )
    assert result.feasible
    decoded = LowerBoundResult.from_dict(json_round_trip(result.to_dict()))
    assert decoded.feasible == result.feasible
    assert decoded.lp_cost == result.lp_cost
    assert decoded.feasible_cost == result.feasible_cost
    assert decoded.status == result.status
    assert decoded.properties == result.properties
    assert decoded.num_variables == result.num_variables
    assert decoded.num_constraints == result.num_constraints
    assert decoded.rounding is not None
    assert decoded.rounding.cost.total == result.rounding.cost.total
    assert decoded.rounding.feasible == result.rounding.feasible
    assert decoded.rounding.qos == result.rounding.qos
    np.testing.assert_array_equal(decoded.rounding.store, result.rounding.store)


def test_infeasible_lower_bound_round_trip(web_problem):
    import dataclasses

    hard = dataclasses.replace(
        web_problem, goal=dataclasses.replace(web_problem.goal, fraction=0.999999)
    )
    result = compute_lower_bound(hard, get_class("caching").properties)
    decoded = LowerBoundResult.from_dict(json_round_trip(result.to_dict()))
    assert decoded.feasible == result.feasible
    assert decoded.reason == result.reason
    assert decoded.lp_cost == result.lp_cost


def test_lp_solution_round_trip():
    from repro.lp.solution import SolveStatus

    solution = LPSolution(
        status=SolveStatus.OPTIMAL,
        objective=41.5,
        values=np.array([0.0, 0.5, 1.0]),
        backend="scipy",
        message="ok",
    )
    decoded = LPSolution.from_dict(json_round_trip(solution.to_dict()))
    assert decoded.status is SolveStatus.OPTIMAL
    assert decoded.objective == solution.objective
    assert decoded.backend == solution.backend
    assert decoded.message == solution.message
    np.testing.assert_array_equal(decoded.values, solution.values)


def test_sweep_result_round_trip(web_problem):
    from repro.analysis.sweep import SweepResult, qos_sweep

    sweep = qos_sweep(
        web_problem, levels=[0.9, 0.95], classes=["caching"], do_rounding=False
    )
    decoded = SweepResult.from_dict(json_round_trip(sweep.to_dict()))
    assert decoded.levels == sweep.levels
    assert decoded.classes == sweep.classes
    for cls in sweep.classes:
        assert decoded.series(cls) == sweep.series(cls)
        assert decoded.max_feasible_level(cls) == sweep.max_feasible_level(cls)


def test_simulation_result_round_trip(small_topology, web_trace):
    result = simulate(
        small_topology,
        web_trace,
        LRUCaching(capacity=8),
        tlat_ms=150.0,
        warmup_s=600.0,
        cost_interval_s=3600.0,
    )
    decoded = SimulationResult.from_dict(json_round_trip(result.to_dict()))
    assert decoded.heuristic == result.heuristic
    assert decoded.total_cost == result.total_cost
    assert decoded.qos == result.qos
    assert decoded.min_node_qos == result.min_node_qos
    assert decoded.qos_per_node == result.qos_per_node
    assert decoded.meets(0.9) == result.meets(0.9)
    if result.peak_occupancy is not None:
        np.testing.assert_array_equal(decoded.peak_occupancy, result.peak_occupancy)
