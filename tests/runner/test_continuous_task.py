"""ContinuousTask through the runner: keys, caching, manifests, audit."""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.runner import make_runner
from repro.runner.tasks import ContinuousTask, HeuristicSpec
from repro.simulator.continuous import ContinuousResult
from repro.topology.generators import line_topology
from repro.topology.graph import Topology


def zoned_topology():
    base = line_topology(num_nodes=6, hop_latency_ms=40.0)
    return Topology(
        latency=base.latency,
        origin=base.origin,
        populations=base.populations,
        zones=np.asarray([0, 0, 1, 1, 2, 2]),
    )


def small_task(**overrides):
    params = dict(
        topology=zoned_topology(),
        heuristic=HeuristicSpec("qiu", replicas=1, period_s=600.0, tlat_ms=80.0),
        epochs=2,
        epoch_s=1800.0,
        requests_per_epoch=300,
        num_objects=8,
        drift=0.2,
        workload_seed=3,
        slo=0.9,
        faults="zonepart:zone=1,at=300,down=300",
        label="continuous-test",
    )
    params.update(overrides)
    return ContinuousTask(**params)


class TestCacheKey:
    def test_stable_across_identical_tasks(self):
        assert small_task().cache_key() == small_task().cache_key()

    @pytest.mark.parametrize(
        "field, value",
        [
            ("epochs", 3),
            ("drift", 0.3),
            ("workload_seed", 4),
            ("fault_seed", 1),
            ("faults", None),
            ("slo", 0.99),
            ("shed_capacity", 2),
            ("object_size_bytes", 2.0),
        ],
    )
    def test_semantic_fields_change_the_key(self, field, value):
        assert small_task(**{field: value}).cache_key() != small_task().cache_key()

    def test_heuristic_knobs_change_the_key(self):
        healed = small_task(
            heuristic=HeuristicSpec(
                "qiu", replicas=1, period_s=600.0, tlat_ms=80.0,
                heal=True, heal_zones=3,
            )
        )
        assert healed.cache_key() != small_task().cache_key()

    def test_label_and_audit_are_not_semantic(self):
        assert (
            small_task(label="other", audit="full").cache_key()
            == small_task().cache_key()
        )


class TestRunAndSerialize:
    def test_run_is_deterministic(self):
        a, b = small_task().run(), small_task().run()
        assert isinstance(a, ContinuousResult)
        assert a.to_dict() == b.to_dict()
        assert len(a.epochs) == 2
        assert a.slo_target == 0.9

    def test_encode_decode_round_trip(self):
        result = small_task().run()
        back = ContinuousTask.decode(ContinuousTask.encode(result))
        assert back.to_dict() == result.to_dict()

    def test_summarize_exposes_the_availability_digest(self):
        result = small_task().run()
        digest = ContinuousTask.summarize(result)
        assert digest["availability"] == result.availability
        assert digest["unavailable_reads"] == result.unavailable_reads
        assert digest["slo_target"] == 0.9
        assert digest["slo_violations"] == result.slo_violations

    def test_bad_fault_spec_raises_validation_error(self):
        task = small_task(faults="zonepart:zone=9,at=0,down=60")
        with pytest.raises(ValidationError):
            task.run()

    def test_zone_clause_requires_a_zone_map(self):
        base = line_topology(num_nodes=6, hop_latency_ms=40.0)
        task = small_task(topology=base)
        with pytest.raises(ValidationError, match="needs a zone map"):
            task.run()


class TestThroughTheRunner:
    def test_cache_round_trip_and_manifest_availability(self, tmp_path):
        task = small_task()
        cold = make_runner(
            jobs=1, cache_dir=tmp_path / "cache", run_dir=tmp_path / "runs"
        )
        first = cold.map([task])[0]
        run_dir = Path(cold.finalize())
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["cache_hits"] == 0
        block = manifest["availability"]
        assert block["tasks"] == 1
        assert block["slo_judged"] == 1
        assert block["min_availability"] == pytest.approx(first.availability)
        assert block["unavailable_reads"] == first.unavailable_reads
        assert block["slo_violations"] == first.slo_violations

        warm = make_runner(
            jobs=1, cache_dir=tmp_path / "cache", run_dir=tmp_path / "runs"
        )
        second = warm.map([task])[0]
        warm_manifest = json.loads(
            (Path(warm.finalize()) / "manifest.json").read_text()
        )
        assert warm_manifest["cache_hits"] == 1
        assert second.to_dict() == first.to_dict()

    def test_audit_full_passes_on_a_real_run(self, tmp_path):
        task = small_task(audit="full")
        runner = make_runner(jobs=1, cache_dir=tmp_path / "cache")
        result = runner.map([task])[0]
        assert isinstance(result, ContinuousResult)

    def test_unjudged_task_counts_no_slo(self, tmp_path):
        task = small_task(slo=None)
        runner = make_runner(
            jobs=1, cache_dir=tmp_path / "cache", run_dir=tmp_path / "runs"
        )
        runner.map([task])
        manifest = json.loads(
            (Path(runner.finalize()) / "manifest.json").read_text()
        )
        block = manifest["availability"]
        assert block["slo_judged"] == 0
        assert block["slo_violations"] == 0

    def test_describe_names_the_zone_and_slo_knobs(self):
        desc = small_task().describe()
        assert desc["heuristic"] == "qiu"
        assert desc["slo"] == 0.9
        assert desc["faults"] == "zonepart:zone=1,at=300,down=300"
        assert "heal_zones" in desc

    def test_task_is_picklable(self):
        import pickle

        task = small_task()
        clone = pickle.loads(pickle.dumps(task))
        assert clone.cache_key() == task.cache_key()
