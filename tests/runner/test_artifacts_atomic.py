"""Atomic artifact writes, interrupted-result handling, torn-manifest audit."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.runner import make_runner
from repro.runner.artifacts import atomic_write_text
from repro.runner.cache import ResultCache
from repro.runner.tasks import ContinuousTask, HeuristicSpec
from repro.simulator.continuous import install_stop_check
from repro.topology.generators import line_topology
from repro.topology.graph import Topology


# -- atomic_write_text --------------------------------------------------------


def test_atomic_write_creates_and_replaces(tmp_path):
    target = tmp_path / "manifest.json"
    atomic_write_text(target, "first")
    assert target.read_text() == "first"
    atomic_write_text(target, "second")
    assert target.read_text() == "second"
    assert not list(tmp_path.glob("*.tmp"))


def test_atomic_write_failure_leaves_no_droppings(tmp_path):
    with pytest.raises(OSError):
        atomic_write_text(tmp_path / "missing" / "out.txt", "data")
    assert not list(tmp_path.glob("*.tmp"))
    assert not (tmp_path / "out.txt").exists()


def test_manifest_written_atomically_through_runner(tmp_path):
    """Every manifest on disk parses — there is no observable torn state."""
    runner = make_runner(run_dir=str(tmp_path / "runs"), label="atomic")
    task = small_task()
    runner.map([task])
    runner.finalize()
    manifests = list((tmp_path / "runs").glob("*/manifest.json"))
    assert manifests
    payload = json.loads(manifests[0].read_text())
    assert payload["task_records"][0]["status"] == "ok"
    assert not list((tmp_path / "runs").glob("*/*.tmp"))


# -- interrupted results ------------------------------------------------------


def zoned_topology():
    base = line_topology(num_nodes=6, hop_latency_ms=40.0)
    return Topology(
        latency=base.latency,
        origin=base.origin,
        populations=base.populations,
        zones=np.asarray([0, 0, 1, 1, 2, 2]),
    )


def small_task(**overrides):
    params = dict(
        topology=zoned_topology(),
        heuristic=HeuristicSpec("qiu", replicas=1, period_s=600.0, tlat_ms=80.0),
        epochs=3,
        epoch_s=1800.0,
        requests_per_epoch=150,
        num_objects=8,
        workload_seed=3,
    )
    params.update(overrides)
    return ContinuousTask(**params)


def test_interrupted_result_is_never_cached(tmp_path):
    """A drained partial result must not poison the content-addressed cache."""
    cache_dir = tmp_path / "cache"
    run_dir = tmp_path / "runs"
    task = small_task()

    calls = []

    def stop_after_one():
        calls.append(None)
        return len(calls) > 1

    install_stop_check(stop_after_one)
    try:
        runner = make_runner(cache_dir=str(cache_dir), run_dir=str(run_dir), label="int")
        result = runner.map([task])[0]
        runner.finalize()
    finally:
        install_stop_check(None)

    assert result.interrupted is True
    assert len(result.epochs) == 1
    cache = ResultCache(str(cache_dir))
    assert cache.load(task.cache_key(), task.kind) is None, (
        "interrupted partial result was cached under the full task digest"
    )
    manifest = json.loads(next(run_dir.glob("*/manifest.json")).read_text())
    assert manifest["task_records"][0]["status"] == "interrupted"

    # A clean rerun completes, and only the complete result is cached.
    runner2 = make_runner(cache_dir=str(cache_dir), label="int2")
    full = runner2.map([task])[0]
    runner2.finalize()
    assert full.interrupted is False
    assert len(full.epochs) == 3
    assert cache.load(task.cache_key(), task.kind) is not None


# -- torn manifest diagnostics ------------------------------------------------


def test_audit_torn_manifest_exits_2(tmp_path, capsys):
    run_dir = tmp_path / "run"
    run_dir.mkdir()
    (run_dir / "manifest.json").write_text('{"task_records": [{"kind": "bou')
    rc = main(["audit", str(run_dir)])
    err = capsys.readouterr().err
    assert rc == 2
    assert "corrupt" in err
    assert "torn or truncated" in err


def test_audit_missing_manifest_still_exit_1(tmp_path, capsys):
    run_dir = tmp_path / "empty-run"
    run_dir.mkdir()
    rc = main(["audit", str(run_dir)])
    capsys.readouterr()
    assert rc == 1  # audit verdict, not an integrity pre-flight failure
