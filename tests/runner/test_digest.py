"""The content digest must be stable, canonical and collision-sensitive."""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.core.goals import GoalScope, QoSGoal
from repro.core.properties import HeuristicProperties
from repro.runner.digest import digest_of, short_digest


def test_digest_is_deterministic():
    assert digest_of("x", 1, 2.5) == digest_of("x", 1, 2.5)


def test_digest_discriminates_values_and_types():
    assert digest_of(1) != digest_of(2)
    assert digest_of(1) != digest_of(1.0)
    assert digest_of("1") != digest_of(1)
    assert digest_of(None) != digest_of(0)
    assert digest_of(True) != digest_of(1)


def test_digest_of_ndarray_covers_dtype_shape_and_data():
    a = np.arange(6, dtype=np.float64)
    assert digest_of(a) == digest_of(a.copy())
    assert digest_of(a) != digest_of(a.astype(np.float32))
    assert digest_of(a) != digest_of(a.reshape(2, 3))
    b = a.copy()
    b[0] = 42.0
    assert digest_of(a) != digest_of(b)


def test_digest_of_dict_is_order_insensitive():
    assert digest_of({"a": 1, "b": 2}) == digest_of({"b": 2, "a": 1})


def test_digest_of_dataclass_uses_field_values():
    goal = QoSGoal(tlat_ms=150.0, fraction=0.95, scope=GoalScope.PER_USER)
    same = QoSGoal(tlat_ms=150.0, fraction=0.95, scope=GoalScope.PER_USER)
    other = dataclasses.replace(goal, fraction=0.99)
    assert digest_of(goal) == digest_of(same)
    assert digest_of(goal) != digest_of(other)


def test_digest_of_properties_discriminates_enums():
    base = HeuristicProperties()
    reactive = dataclasses.replace(base, reactive=True)
    assert digest_of(base) != digest_of(reactive)


def test_digest_rejects_unhashable_types():
    with pytest.raises(TypeError):
        digest_of(object())


def _digest_in_worker(payload):
    return digest_of(payload)


def test_digest_is_stable_across_processes():
    """Cache keys computed by workers must match the parent's keys."""
    payload = {
        "goal": QoSGoal(tlat_ms=150.0, fraction=0.99),
        "demand": np.arange(12, dtype=np.float64).reshape(3, 4),
        "flags": (True, None, "scipy"),
    }
    local = digest_of(payload)
    with ProcessPoolExecutor(max_workers=1) as pool:
        remote = pool.submit(_digest_in_worker, payload).result()
    assert local == remote


def test_short_digest_prefixes_full_digest():
    full = digest_of("abc")
    assert full.startswith(short_digest("abc"))
    assert len(short_digest("abc")) == 12
