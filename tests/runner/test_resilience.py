"""Fault-tolerant execution: retries, timeouts, crash isolation, degradation."""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict

import numpy as np
import pytest

from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.runner import ExperimentRunner, ResultCache, make_runner
from repro.runner.digest import digest_of
from repro.runner.resilience import (
    RetryPolicy,
    TaskFailure,
    TaskTimeoutError,
    WorkerCrashError,
    call_with_timeout,
    chaos_should_fail,
    run_with_policy,
)
from repro.runner.tasks import BoundTask
from repro.topology.generators import star_topology
from repro.workload.demand import DemandMatrix


@dataclass(frozen=True)
class ProbeTask:
    """A tiny controllable task: fails N times, stalls, or kills its worker.

    Attempts are counted through files under ``log_dir`` so the count
    survives worker-process boundaries.  The fault knobs are deliberately
    not part of the cache key: a "healed" probe (same ident, faults removed)
    digests identically, which is exactly how --resume is exercised.
    """

    ident: str
    log_dir: str
    fail_times: int = 0
    sleep_s: float = 0.0
    kill: bool = False
    kill_once: bool = False

    kind = "probe"

    def cache_key(self) -> str:
        return digest_of("probe-task", self.ident)

    def reuse_key(self) -> None:
        return None

    @property
    def label(self) -> str:
        return f"probe[{self.ident}]"

    def _attempts_so_far(self) -> int:
        prefix = f"{self.ident}.attempt."
        return sum(1 for name in os.listdir(self.log_dir) if name.startswith(prefix))

    def run(self) -> Dict[str, object]:
        prior = self._attempts_so_far()
        marker = os.path.join(self.log_dir, f"{self.ident}.attempt.{prior}")
        with open(marker, "w") as fh:
            fh.write(str(os.getpid()))
        if self.kill or (self.kill_once and prior == 0):
            os._exit(1)
        if prior < self.fail_times:
            raise RuntimeError(f"probe {self.ident} injected failure #{prior + 1}")
        if self.sleep_s:
            time.sleep(self.sleep_s)
        return {"ident": self.ident, "attempts": prior + 1}

    @staticmethod
    def encode(result: Dict[str, object]) -> Dict[str, object]:
        return dict(result)

    @staticmethod
    def decode(payload: Dict[str, object]) -> Dict[str, object]:
        if "ident" not in payload:
            raise KeyError("ident")
        return dict(payload)


def probe(tmp_path, ident, **kwargs) -> ProbeTask:
    return ProbeTask(ident=ident, log_dir=str(tmp_path), **kwargs)


def tiny_bound_problem() -> MCPerfProblem:
    topo = star_topology(num_leaves=2, hub_latency_ms=200.0)
    reads = np.zeros((3, 2, 1))
    reads[1, :, 0] = 1
    return MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=reads),
        goal=QoSGoal(tlat_ms=150.0, fraction=1.0),
    )


# -- RetryPolicy validation ---------------------------------------------------


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(task_timeout=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_s=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy(on_error="explode")
    with pytest.raises(ValueError):
        RetryPolicy(crash_retries=-1)


def test_make_runner_rejects_bad_on_error(tmp_path):
    with pytest.raises(ValueError):
        make_runner(on_error="explode")


# -- retries ------------------------------------------------------------------


def test_retry_then_success(tmp_path):
    runner = ExperimentRunner(policy=RetryPolicy(retries=2, backoff_s=0.0))
    result = runner.map([probe(tmp_path, "flaky", fail_times=1)])[0]
    assert result == {"ident": "flaky", "attempts": 2}
    assert runner.failed == 0


def test_exhausted_retries_yield_structured_failure(tmp_path):
    runner = ExperimentRunner(
        policy=RetryPolicy(retries=1, backoff_s=0.0, on_error="skip")
    )
    results = runner.map(
        [probe(tmp_path, "dead", fail_times=10), probe(tmp_path, "fine")]
    )
    failure, healthy = results
    assert isinstance(failure, TaskFailure)
    assert failure.attempts == 2
    assert failure.error_type == "RuntimeError"
    assert "injected failure" in failure.error
    assert failure.key == probe(tmp_path, "dead").cache_key()
    assert not failure.feasible  # duck-types as an infeasible bound
    assert healthy == {"ident": "fine", "attempts": 1}
    assert runner.failed == 1


def test_on_error_fail_reraises(tmp_path):
    runner = ExperimentRunner(policy=RetryPolicy(retries=1, backoff_s=0.0))
    with pytest.raises(RuntimeError, match="injected failure"):
        runner.map([probe(tmp_path, "dead", fail_times=10)])


def test_failure_record_round_trips(tmp_path):
    runner = ExperimentRunner(policy=RetryPolicy(on_error="skip"))
    failure = runner.map([probe(tmp_path, "dead", fail_times=10)])[0]
    clone = TaskFailure.from_dict(failure.to_dict())
    assert clone == failure
    assert "failed (RuntimeError)" in str(failure)


# -- timeouts -----------------------------------------------------------------


def test_call_with_timeout_passthrough():
    assert call_with_timeout(lambda: 42, None) == 42
    assert call_with_timeout(lambda: 42, 5.0) == 42


def test_call_with_timeout_raises_on_stall():
    with pytest.raises(TaskTimeoutError):
        call_with_timeout(lambda: time.sleep(5.0), 0.2)


def test_stalling_task_times_out_fast(tmp_path):
    runner = ExperimentRunner(
        policy=RetryPolicy(task_timeout=0.3, on_error="skip")
    )
    start = time.perf_counter()
    failure = runner.map([probe(tmp_path, "stall", sleep_s=30.0)])[0]
    elapsed = time.perf_counter() - start
    assert isinstance(failure, TaskFailure)
    assert failure.timed_out
    assert failure.error_type == "TaskTimeoutError"
    assert elapsed < 5.0


# -- graceful LP degradation --------------------------------------------------


def test_degrade_retries_bound_on_simplex(monkeypatch):
    import repro.lp.scipy_backend as scipy_backend

    def crashing(model, **kwargs):
        raise RuntimeError("HiGHS exploded")

    monkeypatch.setattr(scipy_backend, "solve_with_scipy", crashing)
    task = BoundTask(
        problem=tiny_bound_problem(), backend="scipy", do_rounding=False
    )
    outcome = run_with_policy(task, RetryPolicy(on_error="degrade"))
    assert outcome.failure is None
    assert outcome.result.feasible
    assert outcome.result.backend_used == "simplex"
    assert outcome.backends == ["scipy", "simplex"]


def test_degrade_does_not_apply_to_non_bound_tasks(tmp_path):
    runner = ExperimentRunner(policy=RetryPolicy(on_error="degrade"))
    failure = runner.map([probe(tmp_path, "dead", fail_times=10)])[0]
    assert isinstance(failure, TaskFailure)
    assert "simplex" not in failure.backends


def test_backend_used_records_normal_solve():
    task = BoundTask(problem=tiny_bound_problem(), backend="scipy", do_rounding=False)
    result = task.run()
    assert result.feasible
    assert result.backend_used == "scipy"


# -- worker-crash isolation ---------------------------------------------------


def test_worker_kill_once_is_redispatched(tmp_path):
    tasks = [probe(tmp_path, "killer", kill_once=True)] + [
        probe(tmp_path, f"ok{i}") for i in range(3)
    ]
    runner = ExperimentRunner(jobs=2, policy=RetryPolicy(on_error="skip"))
    results = runner.map(tasks)
    assert results[0]["ident"] == "killer"
    assert results[0]["attempts"] == 2
    # Siblings all finish; ones caught mid-run by the pool crash may have
    # been legitimately re-dispatched (at-least-once), so attempts >= 1.
    assert [r["ident"] for r in results[1:]] == ["ok0", "ok1", "ok2"]
    assert runner.failed == 0


def test_poison_task_becomes_failure_with_healthy_siblings(tmp_path):
    tasks = [probe(tmp_path, "poison", kill=True)] + [
        probe(tmp_path, f"ok{i}") for i in range(3)
    ]
    runner = ExperimentRunner(jobs=2, policy=RetryPolicy(on_error="skip"))
    results = runner.map(tasks)
    failure = results[0]
    assert isinstance(failure, TaskFailure)
    assert failure.crashed
    assert failure.error_type == "WorkerCrash"
    assert failure.attempts == 2  # first dispatch + crash_retries=1
    # Siblings caught mid-run by a pool crash re-dispatch (at-least-once).
    assert [r["ident"] for r in results[1:]] == ["ok0", "ok1", "ok2"]
    assert runner.failed == 1


def test_poison_task_raises_under_fail_mode(tmp_path):
    tasks = [probe(tmp_path, "poison", kill=True), probe(tmp_path, "ok")]
    runner = ExperimentRunner(jobs=2, policy=RetryPolicy(on_error="fail"))
    with pytest.raises(WorkerCrashError, match="poison"):
        runner.map(tasks)


# -- chaos hook ---------------------------------------------------------------


def test_chaos_hook_injects_failures(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "fail=1.0,seed=1")
    runner = ExperimentRunner(
        policy=RetryPolicy(retries=1, backoff_s=0.0, on_error="skip")
    )
    failure = runner.map([probe(tmp_path, "victim")])[0]
    assert isinstance(failure, TaskFailure)
    assert failure.error_type == "ChaosError"
    assert failure.attempts == 2


def test_chaos_draw_is_deterministic(monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "fail=0.5,seed=7")
    draws = [chaos_should_fail("task-x", attempt) for attempt in range(32)]
    assert draws == [chaos_should_fail("task-x", attempt) for attempt in range(32)]
    assert any(draws) and not all(draws)  # a fair 0.5 coin over 32 flips


def test_chaos_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    assert not chaos_should_fail("task-x", 0)


def test_chaos_rejects_garbage_spec(monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "fail=lots")
    with pytest.raises(ValueError, match="REPRO_CHAOS"):
        chaos_should_fail("task-x", 0)


def test_chaos_accepts_unified_plan_grammar(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "crash:p=1.0,seed=1")
    runner = ExperimentRunner(
        policy=RetryPolicy(retries=1, backoff_s=0.0, on_error="skip")
    )
    failure = runner.map([probe(tmp_path, "victim")])[0]
    assert isinstance(failure, TaskFailure)
    assert failure.error_type == "ChaosError"


def test_legacy_and_plan_grammars_draw_identically(monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "fail=0.5,seed=7")
    legacy = [chaos_should_fail("task-x", a) for a in range(32)]
    monkeypatch.setenv("REPRO_CHAOS", "crash:p=0.5,seed=7")
    assert [chaos_should_fail("task-x", a) for a in range(32)] == legacy


def test_chaos_validation_error_names_the_clause(monkeypatch):
    from repro.errors import ValidationError

    monkeypatch.setenv("REPRO_CHAOS", "crash:p=2.0")
    with pytest.raises(ValidationError, match="crash:p=2.0") as excinfo:
        chaos_should_fail("task-x", 0)
    assert "REPRO_CHAOS" in str(excinfo.value)


def test_chaos_spec_is_parsed_once_per_value(monkeypatch):
    """The spec is checked on every attempt; parsing must not be."""
    import repro.chaos.plan as plan_mod

    monkeypatch.setenv("REPRO_CHAOS", "fail=0.5,seed=7")
    first = chaos_should_fail("task-x", 0)

    def exploding(raw):
        raise AssertionError("re-parsed a cached chaos spec")

    monkeypatch.setattr(plan_mod, "plan_from_task_env", exploding)
    assert chaos_should_fail("task-x", 0) == first  # served from cache

    # A *changed* value must re-parse (and here, trip the sentinel).
    monkeypatch.setenv("REPRO_CHAOS", "fail=0.9,seed=7")
    with pytest.raises(AssertionError, match="re-parsed"):
        chaos_should_fail("task-x", 0)


def test_timeout_off_main_thread_degrades_to_one_warning(monkeypatch):
    """No SIGALRM off the main thread: warn once, run unbounded, don't crash."""
    import threading
    import warnings

    import repro.runner.resilience as res

    monkeypatch.setattr(res, "_TIMEOUT_UNENFORCEABLE_WARNED", False)
    out = {}

    def work():
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            out["first"] = call_with_timeout(lambda: 7, 0.01)
            out["second"] = call_with_timeout(lambda: 8, 0.01)
            out["warnings"] = [
                w for w in caught if issubclass(w.category, RuntimeWarning)
            ]

    thread = threading.Thread(target=work)
    thread.start()
    thread.join()
    assert out["first"] == 7 and out["second"] == 8
    messages = [str(w.message) for w in out["warnings"]]
    assert len(messages) == 1  # once per process, not per call
    assert "cannot be enforced" in messages[0]
    assert "main thread" in messages[0]


def test_chaos_survivors_are_cached_not_chaos_tainted(tmp_path, monkeypatch):
    """A chaos-failed task leaves no cache entry; survivors do."""
    monkeypatch.setenv("REPRO_CHAOS", "fail=1.0,seed=1")
    cache = ResultCache(tmp_path / "cache")
    runner = ExperimentRunner(cache=cache, policy=RetryPolicy(on_error="skip"))
    dead = probe(tmp_path, "victim")
    runner.map([dead])
    assert cache.load(dead.cache_key(), dead.kind) is None

    monkeypatch.delenv("REPRO_CHAOS")
    retry = ExperimentRunner(cache=cache, policy=RetryPolicy(on_error="skip"))
    result = retry.map([dead])[0]
    assert result["ident"] == "victim"
    assert cache.load(dead.cache_key(), dead.kind) is not None
