"""Exact tree-DP backend: applicability gates and LP-equality properties."""

import numpy as np
import pytest

from repro.core.bounds import compute_lower_bound
from repro.core.costs import CostModel
from repro.core.goals import GoalScope, QoSGoal
from repro.core.problem import MCPerfProblem
from repro.core.properties import HeuristicProperties, StorageConstraint
from repro.solvers.tree_dp import solve_tree_dp, tree_dp_applicable
from repro.topology.generators import (
    line_topology,
    ring_topology,
    star_topology,
    tree_topology,
)
from repro.workload.demand import DemandMatrix


def _problem(topology, seed=0, objects=4, intervals=1, costs=None, **kwargs):
    rng = np.random.default_rng(seed)
    n = topology.num_nodes
    reads = rng.integers(0, 5, size=(n, intervals, objects)).astype(float)
    writes = rng.integers(0, 2, size=(n, intervals, objects)).astype(float)
    return MCPerfProblem(
        topology=topology,
        demand=DemandMatrix(reads=reads, writes=writes),
        goal=kwargs.pop("goal", QoSGoal(tlat_ms=150.0, fraction=1.0)),
        costs=costs or CostModel(alpha=1.0, beta=0.0, gamma=0.0, delta=0.0),
        **kwargs,
    )


def _assert_matches_lp(problem):
    dp = solve_tree_dp(problem, keep_store=True)
    lp = compute_lower_bound(problem, backend="auto", do_rounding=False)
    assert dp.feasible and lp.feasible
    assert dp.lp_cost == pytest.approx(lp.lp_cost, rel=1e-6, abs=1e-6)
    # The tree solution is integral and optimal: zero rounding gap.
    assert dp.feasible_cost == pytest.approx(dp.lp_cost, rel=1e-9)
    assert np.all((dp.store_lp == 0) | (dp.store_lp == 1))
    return dp


def test_matches_lp_on_star():
    _assert_matches_lp(_problem(star_topology(7, hub_latency_ms=120.0), seed=1))


def test_matches_lp_on_line():
    _assert_matches_lp(_problem(line_topology(9, hop_latency_ms=60.0), seed=2))


@pytest.mark.parametrize("seed", range(6))
def test_matches_lp_on_random_trees(seed):
    topo = tree_topology(4 + 3 * seed, seed=seed)
    _assert_matches_lp(_problem(topo, seed=seed, objects=3))


@pytest.mark.parametrize(
    "scope", [GoalScope.PER_USER, GoalScope.OVERALL, GoalScope.PER_OBJECT]
)
def test_full_coverage_collapses_scopes(scope):
    # At fraction == 1 every scope demands the same per-cell coverage, so
    # the DP (which ignores the scope) must match the LP under each.
    topo = tree_topology(11, seed=7)
    problem = _problem(topo, seed=7, goal=QoSGoal(tlat_ms=150.0, fraction=1.0, scope=scope))
    _assert_matches_lp(problem)


def test_matches_lp_with_write_costs():
    # delta > 0 weights replicas by per-object write traffic.
    topo = tree_topology(10, seed=4)
    costs = CostModel(alpha=1.0, beta=0.0, gamma=0.0, delta=0.5)
    _assert_matches_lp(_problem(topo, seed=4, costs=costs))


def test_matches_lp_single_interval_with_beta():
    topo = tree_topology(10, seed=9)
    costs = CostModel(alpha=1.0, beta=2.0, gamma=0.0, delta=0.0)
    _assert_matches_lp(_problem(topo, seed=9, intervals=1, costs=costs))


def test_matches_lp_multi_interval_without_beta():
    topo = tree_topology(8, seed=3)
    _assert_matches_lp(_problem(topo, seed=3, intervals=3))


def test_zero_demand_costs_nothing():
    topo = tree_topology(6, seed=1)
    problem = MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=np.zeros((6, 2, 3))),
        goal=QoSGoal(tlat_ms=150.0, fraction=1.0),
        costs=CostModel(alpha=1.0, beta=0.0, gamma=0.0, delta=0.0),
    )
    dp = solve_tree_dp(problem)
    assert dp.feasible and dp.lp_cost == 0.0 and dp.feasible_cost == 0.0


def test_applicability_gates():
    tree = tree_topology(8, seed=0)
    base = _problem(tree, seed=0)
    assert tree_dp_applicable(base)[0]

    ok, reason = tree_dp_applicable(_problem(ring_topology(6), seed=0))
    assert not ok and "tree" in reason

    partial = _problem(tree, seed=0, goal=QoSGoal(tlat_ms=150.0, fraction=0.9))
    ok, reason = tree_dp_applicable(partial)
    assert not ok and "fraction" in reason

    ok, reason = tree_dp_applicable(
        base, HeuristicProperties(storage_constraint=StorageConstraint.PER_NODE)
    )
    assert not ok and "general" in reason

    gamma = _problem(tree, seed=0, costs=CostModel(alpha=1.0, beta=0.0, gamma=4.0, delta=0.0))
    assert not tree_dp_applicable(gamma)[0]

    beta_multi = _problem(
        tree, seed=0, intervals=2, costs=CostModel(alpha=1.0, beta=1.0, gamma=0.0, delta=0.0)
    )
    ok, reason = tree_dp_applicable(beta_multi)
    assert not ok and "interval" in reason

    restricted = _problem(tree, seed=0, storage_nodes=[1, 2])
    assert not tree_dp_applicable(restricted)[0]

    with pytest.raises(ValueError, match="not applicable"):
        solve_tree_dp(partial)


def test_backend_used_and_extras():
    problem = _problem(tree_topology(9, seed=6), seed=6)
    dp = solve_tree_dp(problem)
    assert dp.backend_used == "tree-dp"
    assert dp.status == "optimal"
    assert dp.extras["tree_dp"]["replicas"] >= 0
