"""Solver-backend registry: names, dispatch, degrade target, auto-selection."""

import numpy as np
import pytest

from repro.core.bounds import compute_lower_bound
from repro.core.costs import CostModel
from repro.core.goals import GoalScope, QoSGoal
from repro.core.problem import MCPerfProblem
from repro.lp.model import LinearProgram
from repro.solvers import registry
from repro.solvers.registry import (
    BACKEND_AUTO,
    BACKEND_DECOMPOSED,
    BACKEND_SCIPY,
    BACKEND_SIMPLEX,
    BACKEND_STRUCTURE,
    BACKEND_TREE_DP,
    BOUND_BACKENDS,
    DEGRADE_TARGET,
    LP_BACKENDS,
    SolverBackend,
    degrade_backend,
    estimated_lp_variables,
    get_backend,
    register_backend,
    registered_backends,
    select_backend,
    solve_lp,
)
from repro.topology.generators import as_level_topology, tree_topology
from repro.workload.demand import DemandMatrix


def _small_lp() -> LinearProgram:
    lp = LinearProgram(name="t")
    x = lp.var("x", obj=1.0)
    lp.add_row([x.index], [1.0], ">=", 2.0)
    return lp


def _problem(topology, fraction=1.0, scope=GoalScope.PER_USER, num_objects=3):
    n = topology.num_nodes
    rng = np.random.default_rng(0)
    reads = rng.integers(0, 4, size=(n, 2, num_objects)).astype(float)
    return MCPerfProblem(
        topology=topology,
        demand=DemandMatrix(reads=reads),
        goal=QoSGoal(tlat_ms=150.0, fraction=fraction, scope=scope),
        costs=CostModel(alpha=1.0, beta=0.0, gamma=0.0, delta=0.0),
    )


def test_backend_name_constants():
    assert LP_BACKENDS == ("auto", "scipy", "simplex")
    assert set(LP_BACKENDS) < set(BOUND_BACKENDS)
    assert BACKEND_STRUCTURE in BOUND_BACKENDS
    assert BACKEND_TREE_DP in BOUND_BACKENDS
    assert BACKEND_DECOMPOSED in BOUND_BACKENDS
    assert DEGRADE_TARGET == BACKEND_SIMPLEX


def test_builtin_backends_registered():
    names = registered_backends()
    for name in LP_BACKENDS:
        assert name in names
        assert get_backend(name).name == name


def test_unknown_backend_raises():
    with pytest.raises(ValueError, match="unknown LP backend: 'nope'"):
        get_backend("nope")
    with pytest.raises(ValueError, match="unknown LP backend"):
        _small_lp().solve(backend="nope")


def test_solve_lp_dispatch_agrees_across_backends():
    objectives = [
        solve_lp(_small_lp(), backend=name).require_optimal().objective
        for name in LP_BACKENDS
    ]
    assert objectives == pytest.approx([2.0, 2.0, 2.0])


def test_register_custom_backend():
    calls = []

    def solver(model, **kwargs):
        calls.append(model.name)
        from repro.lp.simplex import solve_with_simplex

        return solve_with_simplex(model)

    register_backend(SolverBackend(name="custom-test", solve=solver))
    try:
        solution = _small_lp().solve(backend="custom-test")
        assert solution.is_optimal and calls == ["t"]
    finally:
        registry._REGISTRY.pop("custom-test", None)


def test_degrade_backend():
    assert degrade_backend(BACKEND_AUTO) == BACKEND_SIMPLEX
    assert degrade_backend(BACKEND_SCIPY) == BACKEND_SIMPLEX
    assert degrade_backend(BACKEND_TREE_DP) == BACKEND_SIMPLEX
    assert degrade_backend(BACKEND_SIMPLEX) is None
    assert degrade_backend(None) is None


def test_estimated_lp_variables_errs_high():
    problem = _problem(as_level_topology(8, seed=1), fraction=0.9)
    from repro.core.formulation import build_formulation

    actual = build_formulation(problem).lp.num_variables
    assert estimated_lp_variables(problem) >= actual


def test_select_backend_picks_tree_dp_on_trees():
    problem = _problem(tree_topology(12, seed=3), fraction=1.0)
    assert select_backend(problem) == BACKEND_TREE_DP


def test_select_backend_prefers_decomposition_only_when_large(monkeypatch):
    problem = _problem(as_level_topology(8, seed=1), fraction=0.9)
    assert select_backend(problem) == BACKEND_AUTO  # small: monolith wins
    monkeypatch.setattr(registry, "DECOMPOSITION_MIN_VARIABLES", 1)
    assert select_backend(problem) == BACKEND_DECOMPOSED


def test_structure_backend_routes_through_compute_lower_bound():
    problem = _problem(tree_topology(10, seed=5), fraction=1.0)
    result = compute_lower_bound(problem, backend=BACKEND_STRUCTURE)
    assert result.backend_used == BACKEND_TREE_DP
    reference = compute_lower_bound(problem, backend=BACKEND_AUTO)
    assert result.lp_cost == pytest.approx(reference.lp_cost, rel=1e-6)
