"""Per-object decomposition: equivalence with the monolithic LP per scope."""

import numpy as np
import pytest

from repro.core.bounds import compute_lower_bound
from repro.core.costs import CostModel
from repro.core.goals import GoalScope, QoSGoal
from repro.core.problem import MCPerfProblem
from repro.core.properties import (
    HeuristicProperties,
    ReplicaConstraint,
    StorageConstraint,
)
from repro.solvers.decompose import (
    decomposition_applicable,
    solve_decomposed,
)
from repro.topology.generators import as_level_topology
from repro.workload.demand import DemandMatrix
from repro.workload.generators import web_workload


@pytest.fixture(scope="module")
def fig2_instance():
    """A small fig-2-style instance: AS topology + WEB trace + paper costs."""
    topo = as_level_topology(10, seed=2)
    trace = web_workload(num_nodes=10, num_objects=8, requests_scale=0.01, seed=4)
    demand = DemandMatrix.from_trace(trace, 3)
    return topo, demand


def _problem(fig2, scope, fraction=0.9, **kwargs):
    topo, demand = fig2
    return MCPerfProblem(
        topology=topo,
        demand=demand,
        goal=QoSGoal(tlat_ms=150.0, fraction=fraction, scope=scope),
        costs=kwargs.pop("costs", CostModel.paper_defaults()),
        **kwargs,
    )


@pytest.mark.parametrize(
    "scope",
    [GoalScope.PER_OBJECT, GoalScope.PER_USER_OBJECT, GoalScope.PER_USER, GoalScope.OVERALL],
)
def test_decomposed_matches_monolith(fig2_instance, scope):
    problem = _problem(fig2_instance, scope)
    reference = compute_lower_bound(problem, backend="auto", do_rounding=False)
    decomposed = compute_lower_bound(problem, backend="decomposed", do_rounding=False)
    assert decomposed.feasible == reference.feasible
    assert decomposed.backend_used == "decomposed"
    assert decomposed.lp_cost == pytest.approx(reference.lp_cost, rel=1e-6)
    info = decomposed.extras["decomposition"]
    expected_mode = (
        "separable"
        if scope in (GoalScope.PER_OBJECT, GoalScope.PER_USER_OBJECT)
        else "dantzig-wolfe"
    )
    assert info["mode"] == expected_mode


def test_separable_rounding_is_feasible_and_bounded(fig2_instance):
    problem = _problem(fig2_instance, GoalScope.PER_OBJECT)
    decomposed = solve_decomposed(problem, jobs=2)
    assert decomposed.rounding is not None and decomposed.rounding.feasible
    assert decomposed.feasible_cost >= decomposed.lp_cost - 1e-6
    assert decomposed.extras["decomposition"]["jobs"] == 2
    # The stitched store covers every object slot.
    serial = solve_decomposed(problem, jobs=1, keep_store=True)
    assert serial.store_lp.shape[2] == problem.demand.num_objects
    assert serial.lp_cost == pytest.approx(decomposed.lp_cost, rel=1e-9)


@pytest.mark.parametrize("scope", [GoalScope.PER_USER_OBJECT, GoalScope.PER_USER])
def test_infeasible_detected(fig2_instance, scope):
    # One distant storage node at full coverage: structurally impossible.
    problem = _problem(fig2_instance, scope, fraction=1.0, storage_nodes=[1])
    problem = MCPerfProblem(
        topology=problem.topology,
        demand=problem.demand,
        goal=QoSGoal(tlat_ms=1.0, fraction=1.0, scope=scope),
        costs=problem.costs,
        storage_nodes=[1],
    )
    reference = compute_lower_bound(problem, backend="auto", do_rounding=False)
    decomposed = compute_lower_bound(problem, backend="decomposed", do_rounding=False)
    assert not reference.feasible and not decomposed.feasible
    assert decomposed.reason


def test_zero_demand(fig2_instance):
    topo, _demand = fig2_instance
    problem = MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=np.zeros((10, 2, 4))),
        goal=QoSGoal(tlat_ms=150.0, fraction=0.9),
        costs=CostModel.paper_defaults(),
    )
    decomposed = solve_decomposed(problem)
    assert decomposed.feasible and decomposed.lp_cost == 0.0
    assert decomposed.feasible_cost == 0.0
    assert decomposed.extras["decomposition"]["mode"] == "empty"


def test_applicability_gates(fig2_instance):
    problem = _problem(fig2_instance, GoalScope.PER_USER)
    assert decomposition_applicable(problem)[0]
    ok, reason = decomposition_applicable(
        problem, HeuristicProperties(storage_constraint=StorageConstraint.PER_NODE)
    )
    assert not ok and "storage" in reason
    ok, reason = decomposition_applicable(
        problem, HeuristicProperties(replica_constraint=ReplicaConstraint.UNIFORM)
    )
    assert not ok and "replica" in reason
    zeta = _problem(
        fig2_instance, GoalScope.PER_USER, costs=CostModel.paper_defaults().with_zeta(100.0)
    )
    ok, reason = decomposition_applicable(zeta)
    assert not ok and "opening" in reason


def test_inapplicable_instances_fall_back_to_monolith(fig2_instance):
    problem = _problem(fig2_instance, GoalScope.PER_USER)
    props = HeuristicProperties(storage_constraint=StorageConstraint.PER_NODE)
    decomposed = solve_decomposed(problem, properties=props, do_rounding=False)
    reference = compute_lower_bound(problem, props, backend="auto", do_rounding=False)
    assert "decomposition_fallback" in decomposed.extras
    assert decomposed.feasible == reference.feasible
    if reference.feasible:
        assert decomposed.lp_cost == pytest.approx(reference.lp_cost, rel=1e-9)


def test_full_audit_attaches_backend_differential(fig2_instance):
    problem = _problem(fig2_instance, GoalScope.PER_OBJECT)
    result = solve_decomposed(problem, audit="full", audit_subject="decompose-test")
    assert result.audit is not None
    assert result.audit.ok, [v.message for v in result.audit.violations]


def test_constrained_classes_still_match_when_separable(fig2_instance):
    # Knowledge/routing fixings are per-object, so decomposition still applies.
    from repro.core.classes import get_class

    props = get_class("caching").properties
    problem = _problem(fig2_instance, GoalScope.PER_USER)
    reference = compute_lower_bound(problem, props, backend="auto", do_rounding=False)
    decomposed = solve_decomposed(problem, props, do_rounding=False)
    assert decomposed.feasible == reference.feasible
    if reference.feasible:
        assert decomposed.lp_cost == pytest.approx(reference.lp_cost, rel=1e-6)
