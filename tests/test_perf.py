"""Tests for the repro.perf instrumentation layer and the --profile flag."""

import json

import pytest

from repro.cli import main
from repro.perf import PERF, Profiler


# -- Profiler unit tests -----------------------------------------------------


def test_counters():
    p = Profiler()
    assert p.get("x") == 0
    p.count("x")
    p.count("x", 4)
    p.count("y")
    assert p.get("x") == 5
    assert p.get("y") == 1


def test_timers_accumulate():
    p = Profiler()
    assert p.seconds("phase") == 0.0
    with p.timer("phase"):
        pass
    with p.timer("phase"):
        pass
    assert p.seconds("phase") >= 0.0
    assert p.timer_calls["phase"] == 2


def test_timer_records_on_exception():
    p = Profiler()
    with pytest.raises(RuntimeError):
        with p.timer("boom"):
            raise RuntimeError("boom")
    assert p.timer_calls["boom"] == 1


def test_snapshot_shape_and_json_safety():
    p = Profiler()
    p.count("b.counter")
    p.count("a.counter", 2)
    with p.timer("t"):
        pass
    snap = p.snapshot()
    assert set(snap) == {"timers", "counters"}
    assert list(snap["counters"]) == ["a.counter", "b.counter"]  # sorted
    assert snap["timers"]["t"]["calls"] == 1
    json.dumps(snap)  # round-trippable


def test_reset():
    p = Profiler()
    p.count("x")
    with p.timer("t"):
        pass
    p.reset()
    assert p.get("x") == 0
    assert p.seconds("t") == 0.0
    assert p.snapshot() == {"timers": {}, "counters": {}}


def test_singleton_is_a_profiler():
    assert isinstance(PERF, Profiler)


# -- CLI --profile smoke -----------------------------------------------------


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    root = tmp_path_factory.mktemp("perf-cli")
    topo_path = str(root / "topo.json")
    trace_path = str(root / "trace.json")
    assert main(["topology", "--nodes", "8", "--seed", "3", "-o", topo_path]) == 0
    assert (
        main(
            [
                "workload", "web",
                "--nodes", "8", "--objects", "20", "--scale", "0.02",
                "--seed", "4", "--topology", topo_path, "-o", trace_path,
            ]
        )
        == 0
    )
    return topo_path, trace_path


def test_profile_writes_run_dir_json(artifacts, tmp_path, capsys):
    topo_path, trace_path = artifacts
    run_root = tmp_path / "runs"
    rc = main(
        [
            "bounds", "-t", topo_path, "-w", trace_path,
            "--qos", "0.9", "--intervals", "6", "--warmup", "1",
            "--class", "general", "--jobs", "1",
            "--run-dir", str(run_root), "--profile",
        ]
    )
    assert rc == 0
    profiles = list(run_root.glob("**/profile.json"))
    assert len(profiles) == 1
    snap = json.loads(profiles[0].read_text())
    counters, timers = snap["counters"], snap["timers"]
    # The bound pipeline must have gone through the instrumented hot paths.
    assert counters["lp.assembly.rebuild"] >= 1
    assert counters["lp.solve"] >= 1
    assert counters["form.build.vectorized"] >= 1
    assert timers["lp.assembly"]["calls"] >= 1
    assert timers["lp.solve"]["calls"] >= 1
    assert timers["form.build"]["calls"] >= 1
    err = capsys.readouterr().err
    assert "profile written to" in err


def test_profile_without_run_dir_goes_to_stderr(artifacts, capsys):
    topo_path, trace_path = artifacts
    rc = main(
        [
            "bounds", "-t", topo_path, "-w", trace_path,
            "--qos", "0.9", "--intervals", "6", "--warmup", "1",
            "--class", "general", "--no-rounding", "--profile",
        ]
    )
    assert rc == 0
    err_lines = [
        line for line in capsys.readouterr().err.splitlines() if line.startswith("{")
    ]
    assert err_lines, "expected a JSON profile line on stderr"
    snap = json.loads(err_lines[-1])["profile"]
    assert snap["counters"]["lp.solve"] >= 1


def test_profile_resets_between_commands(artifacts, capsys):
    """One command = one profile: counts don't leak across main() calls."""
    topo_path, trace_path = artifacts
    base = [
        "bounds", "-t", topo_path, "-w", trace_path,
        "--qos", "0.9", "--intervals", "6", "--warmup", "1",
        "--class", "general", "--no-rounding", "--profile",
    ]

    def solve_count():
        assert main(base) == 0
        err_lines = [
            line
            for line in capsys.readouterr().err.splitlines()
            if line.startswith("{")
        ]
        return json.loads(err_lines[-1])["profile"]["counters"]["lp.solve"]

    assert solve_count() == solve_count()


def test_iterative_sweep_profile_shows_no_rebuilds(artifacts, tmp_path):
    """The ISSUE's acceptance check: with iterative rounding, the rounding
    loop's re-solves all reuse the assembly — patch count == fix count and
    rebuilds == number of formulations built (one per class here)."""
    topo_path, trace_path = artifacts
    run_root = tmp_path / "runs"
    rc = main(
        [
            "sweep", "-t", topo_path, "-w", trace_path,
            "--intervals", "6", "--warmup", "1",
            "--classes", "general",
            "--levels", "0.5", "0.7",
            "--rounding", "--rounding-mode", "iterative",
            "--jobs", "1", "--run-dir", str(run_root), "--profile",
        ]
    )
    assert rc == 0
    profiles = list(run_root.glob("**/profile.json"))
    assert len(profiles) == 1
    counters = json.loads(profiles[0].read_text())["counters"]
    assert counters["lp.assembly.rebuild"] == 1  # one class, one formulation
    assert counters.get("lp.patch.fix_var", 0) == counters.get("round.iterative.fix", 0)
    # Every solve after the first served the cached assembly.
    assert counters["lp.assembly.reuse"] >= counters["lp.solve"] - 1
