"""REPRO_SERVICE_CHAOS parsing and deterministic draws."""

from __future__ import annotations

import pytest

from repro.service import SERVICE_CHAOS_ENV, ServiceChaos, parse_service_chaos


def test_unset_means_no_chaos(monkeypatch):
    monkeypatch.delenv(SERVICE_CHAOS_ENV, raising=False)
    assert parse_service_chaos() is None
    assert parse_service_chaos("") is None


def test_parse_full_spec():
    chaos = parse_service_chaos(
        "drop=0.25,slow=0.5,slow_ms=200,crash_at_epoch=2,crash_checkpoint_at=3,seed=9"
    )
    assert chaos == ServiceChaos(
        drop=0.25,
        slow=0.5,
        slow_ms=200.0,
        crash_at_epoch=2,
        crash_checkpoint_at=3,
        seed=9,
    )


def test_parse_reads_environment(monkeypatch):
    monkeypatch.setenv(SERVICE_CHAOS_ENV, "drop=0.5,seed=2")
    chaos = parse_service_chaos()
    assert chaos is not None
    assert chaos.drop == 0.5
    assert chaos.seed == 2


@pytest.mark.parametrize("raw", ["nope=1", "drop", "drop=abc", "=0.5"])
def test_bad_clause_raises(raw):
    with pytest.raises(ValueError):
        parse_service_chaos(raw)


def test_draws_are_deterministic_and_seed_sensitive():
    a = ServiceChaos(drop=0.5, seed=1)
    b = ServiceChaos(drop=0.5, seed=1)
    c = ServiceChaos(drop=0.5, seed=2)
    outcomes_a = [a.should_drop(i) for i in range(64)]
    assert outcomes_a == [b.should_drop(i) for i in range(64)]
    assert outcomes_a != [c.should_drop(i) for i in range(64)]
    # Drop and slow draws are independent sites.
    chaos = ServiceChaos(drop=0.5, slow=0.5, seed=1)
    assert [chaos.should_drop(i) for i in range(64)] != [
        chaos.should_slow(i) for i in range(64)
    ]


def test_rate_roughly_matches_probability():
    chaos = ServiceChaos(drop=0.3, seed=7)
    rate = sum(chaos.should_drop(i) for i in range(2000)) / 2000
    assert 0.25 < rate < 0.35


def test_zero_probability_never_fires():
    chaos = ServiceChaos()
    assert not any(chaos.should_drop(i) for i in range(100))
    assert not any(chaos.should_slow(i) for i in range(100))
    # Disabled crash epochs (-1) never match a real index.
    chaos.maybe_crash_epoch(0)
    chaos.maybe_crash_checkpoint(0)
