"""The HTTP front-end: endpoints, caching, shedding, degradation, chaos."""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.runner.tasks import ContinuousTask, HeuristicSpec
from repro.service import (
    AdmissionQueue,
    CheckpointStore,
    CircuitBreaker,
    PlacementDaemon,
    PlacementService,
    ServiceChaos,
    ServiceClient,
)
from repro.service.client import ServiceConnectionError
from repro.solvers.registry import SolverBackend, register_backend
from repro.topology.generators import line_topology
from repro.topology.graph import Topology


def zoned_topology():
    base = line_topology(num_nodes=6, hop_latency_ms=40.0)
    return Topology(
        latency=base.latency,
        origin=base.origin,
        populations=base.populations,
        zones=np.asarray([0, 0, 1, 1, 2, 2]),
    )


def small_task(**overrides):
    params = dict(
        topology=zoned_topology(),
        heuristic=HeuristicSpec("qiu", replicas=1, period_s=600.0, tlat_ms=80.0),
        epochs=2,
        epoch_s=1800.0,
        requests_per_epoch=200,
        num_objects=8,
        workload_seed=3,
        slo=0.9,
        faults="zonepart:zone=1,at=300,down=300",
    )
    params.update(overrides)
    return ContinuousTask(**params)


class Harness:
    """A service on a background event loop, driven by the blocking client."""

    def __init__(self, service: PlacementService):
        self.service = service
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        host, port = asyncio.run_coroutine_threadsafe(
            service.start(), self.loop
        ).result(10)
        self.client = ServiceClient(host, port, timeout_s=10.0)
        self.host, self.port = host, port

    def close(self):
        asyncio.run_coroutine_threadsafe(self.service.stop(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


def make_service(tmp_path, *, run_epochs=True, task=None, **service_kwargs):
    task = task or small_task()
    store = CheckpointStore(tmp_path / "state", task.cache_key())
    daemon = PlacementDaemon(task, store)
    if run_epochs:
        while daemon.run_epoch():
            pass
    return PlacementService(daemon, **service_kwargs)


@pytest.fixture()
def harness(tmp_path):
    h = Harness(make_service(tmp_path))
    yield h
    h.close()


def test_health_always_ok(tmp_path):
    h = Harness(make_service(tmp_path, run_epochs=False))
    try:
        assert h.client.health().payload == {"ok": True}
    finally:
        h.close()


def test_readiness_flips_after_first_epoch(tmp_path):
    h = Harness(make_service(tmp_path, run_epochs=False))
    try:
        first = h.client.ready()
        assert first.status == 503
        assert first.payload["ready"] is False
        h.service.daemon.run_epoch()
        second = h.client.ready()
        assert second.ok
        assert second.payload["ready"] is True
    finally:
        h.close()


def test_placement_query(harness):
    response = harness.client.placement()
    assert response.ok
    assert response.payload["epoch"] == 2
    assert response.payload["done"] is True
    assert response.payload["stale"] is False
    assert isinstance(response.payload["placement"], list)


def test_cost_query(harness):
    response = harness.client.cost()
    assert response.ok
    assert response.payload["reads"] > 0
    assert 0.0 <= response.payload["availability"] <= 1.0


def test_bound_query_solves_then_caches(harness):
    first = harness.client.bound("general", qos=0.9)
    assert first.ok, first.payload
    assert first.payload["feasible"] is True
    assert first.payload["cached"] is False
    second = harness.client.bound("general", qos=0.9)
    assert second.ok
    assert second.payload["cached"] is True
    assert second.payload["lp_cost"] == first.payload["lp_cost"]
    stats = harness.client.stats().payload
    assert stats["cache"]["hits"] == 1
    assert stats["cache"]["misses"] == 1


def test_bound_query_validates_input(harness):
    assert harness.client.bound("no-such-class").status == 400
    assert harness.client.bound("general", qos=2.0).status == 400
    assert harness.client.bound("general", epoch=99).status == 400
    assert harness.client.query(kind="wat").status == 400
    assert harness.client._request("GET", "/nope").status == 404
    assert harness.client._request("GET", "/query").status == 405


def test_admission_sheds_with_retry_after(tmp_path):
    register_backend(
        SolverBackend(
            name="test-stall",
            solve=lambda model, **kw: time.sleep(2.0),
            description="stalls to hold an admission slot",
        )
    )
    h = Harness(
        make_service(tmp_path, admission=AdmissionQueue(limit=1, retry_after_s=0.25))
    )
    try:
        blocker = threading.Thread(
            target=lambda: h.client.bound("general", backend="test-stall", qos=0.5),
            daemon=True,
        )
        blocker.start()
        time.sleep(0.3)  # let the stalling solve occupy the only slot
        shed = h.client.bound("general", backend="test-stall", qos=0.6)
        assert shed.status == 429
        assert shed.retry_after_s == 0.25
        assert shed.payload["retry_after_s"] == 0.25
        blocker.join(10)
        assert h.service.admission.shed == 1
    finally:
        h.close()


def test_breaker_trips_and_serves_stale(tmp_path):
    register_backend(
        SolverBackend(
            name="test-broken",
            solve=lambda model, **kw: (_ for _ in ()).throw(RuntimeError("solver down")),
            description="always fails",
        )
    )
    h = Harness(
        make_service(tmp_path, breaker=CircuitBreaker(failure_threshold=2, cooldown_s=60.0))
    )
    try:
        # Populate last-known-good for the class with a healthy solve.
        good = h.client.bound("general", qos=0.9)
        assert good.ok
        for _ in range(2):
            assert h.client.bound("general", qos=0.95, backend="test-broken").status == 500
        assert h.service.breaker.state == "open"
        degraded = h.client.bound("general", qos=0.95, backend="test-broken")
        assert degraded.ok
        assert degraded.payload["stale"] is True
        assert degraded.payload["lp_cost"] == good.payload["lp_cost"]
        # A class with no LKG has nothing to degrade to.
        missing = h.client.bound("caching", qos=0.9)
        assert missing.status == 503
        stats = h.client.stats().payload
        assert stats["breaker"]["state"] == "open"
        assert stats["breaker"]["trips"] == 1
        assert stats["cache"]["stale_served"] == 1
    finally:
        h.close()


def test_deadline_expiry_is_504_and_counts_breaker_failure(tmp_path):
    register_backend(
        SolverBackend(
            name="test-slow",
            solve=lambda model, **kw: time.sleep(1.0),
            description="slower than any deadline",
        )
    )
    h = Harness(make_service(tmp_path, breaker=CircuitBreaker(failure_threshold=5)))
    try:
        response = h.client.bound("general", backend="test-slow", deadline_ms=100)
        assert response.status == 504
        assert h.service.breaker.failures_total == 1
        assert h.service.deadline_expired == 1
    finally:
        h.close()


def test_chaos_drop_closes_connection(tmp_path):
    h = Harness(make_service(tmp_path, chaos=ServiceChaos(drop=1.0)))
    try:
        with pytest.raises(ServiceConnectionError):
            h.client.health()
        assert h.service.dropped >= 1
    finally:
        h.close()


def test_single_flight_coalesces_identical_queries(tmp_path):
    calls = []

    def counting_solve(model, **kw):
        calls.append(1)
        time.sleep(0.4)
        from repro.lp.simplex import solve_with_simplex

        return solve_with_simplex(model)

    register_backend(
        SolverBackend(name="test-count", solve=counting_solve, description="counts solves")
    )
    h = Harness(make_service(tmp_path))
    try:
        results = [None] * 4
        def issue(i):
            results[i] = h.client.bound("general", backend="test-count", qos=0.9)
        threads = [threading.Thread(target=issue, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
            time.sleep(0.02)  # arrive while the first solve is in flight
        for t in threads:
            t.join(20)
        assert all(r is not None and r.ok for r in results)
        assert len(calls) == 1, "identical in-flight queries must coalesce"
        assert h.service.coalesced == 3
    finally:
        h.close()


def test_stats_shape(harness):
    stats = harness.client.stats().payload
    assert {"requests", "admission", "breaker", "cache", "checkpoint", "perf"} <= set(stats)
    assert stats["checkpoint"]["journal_records"] >= 0
