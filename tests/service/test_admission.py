"""Bounded admission: shed at capacity, release restores capacity."""

from __future__ import annotations

import pytest

from repro.service import AdmissionQueue, QueueFullError


def test_admits_up_to_limit_then_sheds():
    queue = AdmissionQueue(limit=2, retry_after_s=0.5)
    queue.acquire()
    queue.acquire()
    with pytest.raises(QueueFullError) as excinfo:
        queue.acquire()
    assert excinfo.value.retry_after_s == 0.5
    assert queue.in_flight == 2
    assert queue.shed == 1


def test_release_restores_capacity():
    queue = AdmissionQueue(limit=1)
    queue.acquire()
    queue.release()
    queue.acquire()  # does not raise
    assert queue.admitted == 2
    assert queue.shed == 0


def test_context_manager_releases_on_error():
    queue = AdmissionQueue(limit=1)
    with pytest.raises(RuntimeError):
        with queue:
            assert queue.in_flight == 1
            raise RuntimeError("boom")
    assert queue.in_flight == 0


def test_shed_requests_do_not_consume_capacity():
    queue = AdmissionQueue(limit=1)
    queue.acquire()
    for _ in range(3):
        with pytest.raises(QueueFullError):
            queue.acquire()
    queue.release()
    queue.acquire()
    assert queue.shed == 3


def test_status_snapshot():
    queue = AdmissionQueue(limit=4, retry_after_s=2.0)
    queue.acquire()
    status = queue.status()
    assert status == {
        "limit": 4,
        "in_flight": 1,
        "admitted": 1,
        "shed": 0,
        "retry_after_s": 2.0,
    }


def test_rejects_nonpositive_limit():
    with pytest.raises(ValueError):
        AdmissionQueue(limit=0)
