"""Brownout controller: tiers, TTL-bounded staleness, accounting."""

from __future__ import annotations

import pytest

from repro.service import AdmissionQueue, BrownoutController
from repro.service.brownout import TIER_BROWNOUT, TIER_NORMAL, TIER_SHED


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


def controller(limit=4, **kwargs) -> BrownoutController:
    return BrownoutController(AdmissionQueue(limit=limit), **kwargs)


# -- validation -------------------------------------------------------------


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        controller(brownout_depth=0.0)
    with pytest.raises(ValueError):
        controller(brownout_depth=1.5)
    with pytest.raises(ValueError):
        controller(stale_ttl_s=-1.0)
    controller(brownout_depth=1.0, stale_ttl_s=0.0)  # boundary values legal


# -- tier transitions -------------------------------------------------------


def test_tiers_track_admission_depth():
    ctrl = controller(limit=4, brownout_depth=0.5)
    assert ctrl.tier() == TIER_NORMAL and not ctrl.wants_approx()
    ctrl.admission.acquire()
    assert ctrl.tier() == TIER_NORMAL  # 1/4 < 0.5
    ctrl.admission.acquire()
    assert ctrl.tier() == TIER_BROWNOUT and ctrl.wants_approx()  # 2/4 >= 0.5
    ctrl.admission.acquire()
    ctrl.admission.acquire()
    assert ctrl.tier() == TIER_SHED  # at capacity
    assert ctrl.pressure() == 1.0
    ctrl.admission.release()
    assert ctrl.tier() == TIER_BROWNOUT
    for _ in range(3):
        ctrl.admission.release()
    assert ctrl.tier() == TIER_NORMAL


def test_depth_one_browns_out_only_at_capacity_minus_one():
    ctrl = controller(limit=2, brownout_depth=1.0)
    ctrl.admission.acquire()
    assert ctrl.tier() == TIER_NORMAL  # 1/2 < 1.0
    ctrl.admission.acquire()
    assert ctrl.tier() == TIER_SHED


# -- last-known-good store with TTL -----------------------------------------


def test_stale_answer_respects_the_ttl(clock):
    ctrl = controller(stale_ttl_s=30.0, clock=clock)
    assert ctrl.stale_answer("general") is None  # nothing recorded yet
    ctrl.note_result("general", {"cost": 1.5})
    clock.advance(29.0)
    assert ctrl.stale_answer("general") == {"cost": 1.5}
    clock.advance(2.0)  # now 31s old
    assert ctrl.stale_answer("general") is None
    assert ctrl.stale_served == 1
    assert ctrl.stale_expired == 1


def test_fresh_result_resets_the_ttl_clock(clock):
    ctrl = controller(stale_ttl_s=30.0, clock=clock)
    ctrl.note_result("general", {"cost": 1.0})
    clock.advance(25.0)
    ctrl.note_result("general", {"cost": 2.0})
    clock.advance(25.0)  # 50s after the first, 25s after the newest
    assert ctrl.stale_answer("general") == {"cost": 2.0}


def test_lkg_is_per_class(clock):
    ctrl = controller(clock=clock)
    ctrl.note_result("gold", {"cost": 1.0})
    assert ctrl.stale_answer("bronze") is None
    assert ctrl.stale_answer("gold") == {"cost": 1.0}


# -- accounting -------------------------------------------------------------


def test_status_reports_counters_and_lkg_classes(clock):
    ctrl = controller(limit=2, brownout_depth=0.5, stale_ttl_s=10.0, clock=clock)
    ctrl.note_result("general", {"cost": 1.0})
    ctrl.note_approx()
    ctrl.note_approx()
    ctrl.note_shed()
    ctrl.stale_answer("general")
    clock.advance(11.0)
    ctrl.stale_answer("general")
    status = ctrl.status()
    assert status["tier"] == TIER_NORMAL
    assert status["approx_served"] == 2
    assert status["shed_hard"] == 1
    assert status["stale_served"] == 1
    assert status["stale_expired"] == 1
    assert status["lkg_classes"] == ["general"]
    assert status["brownout_depth"] == 0.5
    assert status["stale_ttl_s"] == 10.0
