"""Crash recovery: kill -9, injected crashes, SIGTERM drains — all converge.

The contract under test is the strongest one the service makes: a daemon
killed at *any* point — mid-epoch, between journal append and snapshot,
or drained by SIGTERM — restarts from its state directory and finishes
with placements and per-epoch reports byte-identical to a run that was
never interrupted.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.runner.tasks import ContinuousTask, HeuristicSpec
from repro.service import CheckpointStore, PlacementDaemon, Supervisor
from repro.topology.generators import line_topology
from repro.topology.graph import Topology

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


# -- in-process: the stepper/checkpoint/recovery contract ---------------------


def zoned_topology():
    base = line_topology(num_nodes=6, hop_latency_ms=40.0)
    return Topology(
        latency=base.latency,
        origin=base.origin,
        populations=base.populations,
        zones=np.asarray([0, 0, 1, 1, 2, 2]),
    )


def small_task(**overrides):
    params = dict(
        topology=zoned_topology(),
        heuristic=HeuristicSpec("qiu", replicas=1, period_s=600.0, tlat_ms=80.0),
        epochs=4,
        epoch_s=1800.0,
        requests_per_epoch=200,
        num_objects=8,
        workload_seed=3,
        slo=0.9,
        faults="zonepart:zone=1,at=300,down=300",
    )
    params.update(overrides)
    return ContinuousTask(**params)


def run_daemon_to_completion(tmp_path, name, interrupt_after=None):
    task = small_task()
    store = CheckpointStore(tmp_path / name, task.cache_key(), snapshot_every=2)
    daemon = PlacementDaemon(task, store)
    daemon.recover()
    steps = 0
    while daemon.run_epoch():
        steps += 1
        if interrupt_after is not None and steps >= interrupt_after:
            break
    return daemon


def test_recovery_mid_run_matches_uninterrupted(tmp_path):
    baseline = run_daemon_to_completion(tmp_path, "baseline")
    # "Crash" after two epochs: throw the daemon object away, recover a
    # fresh one from the same store, finish.
    run_daemon_to_completion(tmp_path, "crashed", interrupt_after=2)
    resumed = run_daemon_to_completion(tmp_path, "crashed")
    assert resumed.recovered_from == 2
    assert resumed.state.to_dict() == baseline.state.to_dict()
    assert resumed.result().to_dict() == baseline.result().to_dict()


def test_supervisor_restarts_from_checkpoint(tmp_path):
    task = small_task()
    store = CheckpointStore(tmp_path / "sup", task.cache_key(), snapshot_every=2)
    daemon = PlacementDaemon(task, store)

    fail_at = {2}
    original = daemon.run_epoch

    def flaky():
        if daemon.state.index in fail_at:
            fail_at.clear()
            raise RuntimeError("transient epoch failure")
        return original()

    daemon.run_epoch = flaky
    supervisor = Supervisor(daemon, max_restarts=2, sleep=lambda s: None)
    assert supervisor.run() is True
    assert supervisor.restarts == 1
    assert daemon.done
    baseline = run_daemon_to_completion(tmp_path, "sup-baseline")
    assert daemon.state.to_dict() == baseline.state.to_dict()


def test_supervisor_escalates_persistent_failure(tmp_path):
    task = small_task()
    store = CheckpointStore(tmp_path / "esc", task.cache_key())
    daemon = PlacementDaemon(task, store)
    daemon.run_epoch = lambda: (_ for _ in ()).throw(RuntimeError("wedged"))
    supervisor = Supervisor(daemon, max_restarts=2, sleep=lambda s: None)
    with pytest.raises(RuntimeError, match="wedged"):
        supervisor.run()
    assert supervisor.restarts == 3


# -- subprocess: the real thing, killed for real ------------------------------


def serve_cmd(topo: Path, state_dir: Path, *extra: str) -> list:
    return [
        sys.executable, "-m", "repro", "serve",
        "-t", str(topo),
        "--heuristic", "qiu",
        "--epochs", "4",
        "--epoch-length", "600",
        "--requests", "300",
        "--objects", "12",
        "--zones", "3",
        "--faults", "zonepart:zone=1,at=100,down=200",
        "--slo", "0.9",
        "--snapshot-every", "2",
        "--state-dir", str(state_dir),
        *extra,
    ]


def serve_env(**extra: str) -> dict:
    env = {"PYTHONPATH": str(REPO_SRC), "PATH": os.environ.get("PATH", "/usr/bin:/bin")}
    env.update(extra)
    return env


@pytest.fixture(scope="module")
def topo(tmp_path_factory):
    from repro.cli import main

    path = tmp_path_factory.mktemp("recovery") / "topo.json"
    assert main(["topology", "--nodes", "8", "--seed", "2", "-o", str(path)]) == 0
    return path


@pytest.fixture(scope="module")
def baseline_result(topo, tmp_path_factory):
    """The uninterrupted run every crash variant must converge to."""
    state = tmp_path_factory.mktemp("recovery") / "baseline"
    proc = subprocess.run(
        serve_cmd(topo, state, "--exit-when-done"),
        capture_output=True, text=True, env=serve_env(), timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads((state / "result.json").read_text())


def finish_and_compare(topo, state, baseline_result):
    proc = subprocess.run(
        serve_cmd(topo, state, "--exit-when-done"),
        capture_output=True, text=True, env=serve_env(), timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "recovered checkpoint" in proc.stderr
    result = json.loads((state / "result.json").read_text())
    assert result == baseline_result
    return proc


@pytest.mark.parametrize(
    "chaos, expect_note",
    [
        ("crash_at_epoch=1", "mid-epoch 1"),
        # After the snapshot_every=2 boundary: the journal record for epoch
        # 3 exists but the snapshot still says epoch 2 — journal must win.
        ("crash_checkpoint_at=2", "checkpoint after epoch 2"),
    ],
)
def test_injected_crash_recovers_and_converges(topo, baseline_result, tmp_path, chaos, expect_note):
    state = tmp_path / "state"
    proc = subprocess.run(
        serve_cmd(topo, state, "--exit-when-done", "--chaos", chaos),
        capture_output=True, text=True, env=serve_env(), timeout=120,
    )
    assert proc.returncode == 57, proc.stderr  # CHAOS_EXIT_CODE
    assert expect_note in proc.stderr
    finish_and_compare(topo, state, baseline_result)


def test_kill_dash_nine_mid_run_recovers(topo, baseline_result, tmp_path):
    state = tmp_path / "state"
    proc = subprocess.Popen(
        serve_cmd(topo, state, "--epoch-interval", "0.4"),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=serve_env(),
    )
    try:
        # Wait until at least one epoch is durable, then kill without mercy.
        journal = state / "journal.jsonl"
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if journal.exists() and journal.read_text().strip():
                break
            time.sleep(0.05)
        else:
            pytest.fail("daemon never journaled an epoch")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL
    finally:
        if proc.poll() is None:
            proc.kill()
    finish_and_compare(topo, state, baseline_result)


def test_sigterm_drains_checkpoints_and_resumes(topo, baseline_result, tmp_path):
    state = tmp_path / "state"
    proc = subprocess.Popen(
        serve_cmd(topo, state, "--epoch-interval", "0.5"),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=serve_env(),
    )
    try:
        # Wait for the first epoch to be durable so the drain leaves a
        # checkpoint behind (not just an empty state directory).
        journal = state / "journal.jsonl"
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if journal.exists() and journal.read_text().strip():
                break
            time.sleep(0.05)
        else:
            pytest.fail("daemon never journaled an epoch")
        proc.send_signal(signal.SIGTERM)
        _out, err = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == 3, err
    assert "drained" in err
    drained = json.loads((state / "result.json").read_text())
    assert drained["interrupted"] is True
    assert 1 <= len(drained["epochs"]) < 4
    finish_and_compare(topo, state, baseline_result)


def test_stop_check_finishes_the_current_epoch():
    """The drain contract, deterministically: in-flight epoch completes."""
    from repro.simulator.continuous import run_continuous

    task = small_task()
    traces, schedule, slo = task.materialize()
    seen = []

    def stop_after_two():
        seen.append(None)
        return len(seen) > 2

    result = run_continuous(
        task.topology,
        traces,
        task.heuristic.build,
        tlat_ms=task.tlat_ms,
        faults=schedule,
        slo=slo,
        stop=stop_after_two,
    )
    assert result.interrupted is True
    # stop is consulted before each epoch: False, False, True -> two epochs
    # ran to completion, none was abandoned half-way.
    assert len(result.epochs) == 2
    assert "(interrupted)" in str(result)


def test_sigterm_on_continuous_finishes_epoch_and_exits_3(topo, tmp_path):
    run_dir = tmp_path / "runs"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "continuous",
            "-t", str(topo),
            "--heuristic", "qiu",
            "--epochs", "300",
            "--requests", "1000",
            "--objects", "32",
            "--run-dir", str(run_dir),
            "--json",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=serve_env(),
    )
    try:
        time.sleep(3.0)  # past startup, inside the multi-second epoch loop
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == 3, (out, err)
    assert "finishing the current epoch" in err
    payload = json.loads(out)
    assert payload["interrupted"] is True
    assert payload["epochs"] < 300
    # The run directory records the partial result as interrupted, so a
    # --resume never serves it as a completed run.
    manifests = list(run_dir.glob("*/manifest.json"))
    assert manifests, "no manifest written"
    records = json.loads(manifests[0].read_text())["task_records"]
    assert records[0]["status"] == "interrupted"
