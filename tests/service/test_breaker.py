"""Circuit breaker: trip, cooldown, half-open probe, registry guard."""

from __future__ import annotations

import pytest

from repro.service import BreakerOpenError, CircuitBreaker
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def tripped_breaker(threshold=3, cooldown=10.0):
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=threshold, cooldown_s=cooldown, clock=clock)
    for _ in range(threshold):
        breaker.record_failure()
    return breaker, clock


def test_stays_closed_below_threshold():
    breaker = CircuitBreaker(failure_threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED
    assert breaker.allow()


def test_success_resets_the_failure_streak():
    breaker = CircuitBreaker(failure_threshold=2)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == CLOSED


def test_trips_at_threshold_and_refuses():
    breaker, _clock = tripped_breaker()
    assert breaker.state == OPEN
    assert not breaker.allow()
    assert breaker.trips == 1
    assert breaker.refused == 1


def test_half_open_grants_exactly_one_probe():
    breaker, clock = tripped_breaker(cooldown=10.0)
    clock.advance(10.0)
    assert breaker.state == HALF_OPEN
    assert breaker.allow()  # the probe slot
    assert not breaker.allow()  # everyone else keeps being refused


def test_probe_success_closes():
    breaker, clock = tripped_breaker()
    clock.advance(10.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.allow()


def test_probe_failure_reopens_and_rearms_cooldown():
    breaker, clock = tripped_breaker()
    clock.advance(10.0)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.trips == 2
    clock.advance(5.0)  # half a cooldown: still open
    assert breaker.state == OPEN
    clock.advance(5.0)
    assert breaker.state == HALF_OPEN


def test_call_accounts_and_raises_fast_when_open():
    breaker, _clock = tripped_breaker()
    with pytest.raises(BreakerOpenError):
        breaker.call(lambda: 42)
    breaker2 = CircuitBreaker(failure_threshold=1)
    with pytest.raises(ValueError):
        breaker2.call(lambda: (_ for _ in ()).throw(ValueError("solver died")))
    assert breaker2.state == OPEN


def test_guard_wired_through_solver_registry():
    """With the guard installed, LP dispatch trips and then refuses."""
    from repro.lp.model import LinearProgram
    from repro.solvers.registry import install_solve_guard, solve_lp

    breaker = CircuitBreaker(failure_threshold=2)
    install_solve_guard(breaker.guard)
    try:
        lp = LinearProgram()
        lp.var("x", obj=1.0)
        lp.add_row([0], [1.0], ">=", 1.0)
        result = solve_lp(lp, backend="simplex")
        assert result.objective == pytest.approx(1.0)
        assert breaker.successes == 1
        for _ in range(2):
            with pytest.raises(Exception):
                solve_lp(None, backend="simplex")  # None model crashes the solver
        assert breaker.state == OPEN
        with pytest.raises(BreakerOpenError):
            solve_lp(lp, backend="simplex")
    finally:
        install_solve_guard(None)


def test_status_snapshot():
    breaker, _clock = tripped_breaker()
    status = breaker.status()
    assert status["state"] == OPEN
    assert status["trips"] == 1
    assert status["failures"] == 3
