"""Checkpoint store: journal, snapshots, torn-write tolerance, recovery."""

from __future__ import annotations

import json

import pytest

from repro.service import CheckpointStore
from repro.service.checkpoint import CheckpointMismatchError
from repro.simulator.continuous import ContinuousState


def state_at(index: int) -> ContinuousState:
    return ContinuousState(
        index=index,
        offset=index * 100.0,
        carried=[(1, 2), (3, index)],
        heuristic_name="test-heuristic",
    )


@pytest.fixture()
def store(tmp_path):
    return CheckpointStore(tmp_path, task_digest="digest-a", snapshot_every=2)


def test_cold_start_recovers_nothing(store):
    assert store.recover() is None


def test_journal_roundtrip(store):
    store.append(state_at(1))
    store.append(state_at(2))
    recovered = store.recover()
    assert recovered is not None
    assert recovered.index == 2
    assert recovered.carried == [(1, 2), (3, 2)]


def test_snapshot_truncates_journal(store):
    store.append(state_at(1))
    store.append(state_at(2))
    store.snapshot(state_at(2))
    assert store.journal_path.read_text() == ""
    recovered = store.recover()
    assert recovered.index == 2


def test_checkpoint_snapshots_on_schedule(store):
    assert store.checkpoint(state_at(1)) == "journal"
    assert store.checkpoint(state_at(2)) == "snapshot"
    assert store.checkpoint(state_at(3)) == "journal"
    assert store.recover().index == 3


def test_torn_journal_tail_is_skipped(store):
    store.append(state_at(1))
    store.append(state_at(2))
    with open(store.journal_path, "a") as fh:
        fh.write('{"schema": 1, "task": "digest-a", "index": 3, "sta')  # torn
    assert store.recover().index == 2


def test_torn_snapshot_falls_back_to_journal(store):
    store.append(state_at(3))
    store.snapshot_path.write_text('{"schema": 1, "task": "digest-a", "ind')  # torn
    assert store.recover().index == 3


def test_journal_wins_when_ahead_of_snapshot(store):
    """The crash-between-append-and-snapshot window."""
    store.snapshot(state_at(2))
    store.append(state_at(3))
    assert store.recover().index == 3


def test_snapshot_wins_when_journal_truncated(store):
    store.snapshot(state_at(4))
    assert store.recover().index == 4


def test_foreign_task_digest_refuses_recovery(tmp_path):
    CheckpointStore(tmp_path, task_digest="digest-a").append(state_at(1))
    other = CheckpointStore(tmp_path, task_digest="digest-b")
    with pytest.raises(CheckpointMismatchError):
        other.recover()


def test_alien_schema_records_are_ignored(store):
    with open(store.journal_path, "a") as fh:
        fh.write(json.dumps({"schema": 99, "task": "digest-a", "index": 9}) + "\n")
    store.append(state_at(1))
    assert store.recover().index == 1


# -- injected corruption (chaos campaigns) ----------------------------------


def test_corrupt_tail_with_no_journal_is_a_noop(store):
    assert store.corrupt_tail() is False
    assert store.corrupt_snapshot() is False


def test_corrupt_tail_tears_only_the_newest_record(store):
    store.append(state_at(1))
    store.append(state_at(2))
    assert store.corrupt_tail() is True
    assert not store.journal_path.read_bytes().endswith(b"\n")
    assert store.recover().index == 1


def test_corrupt_tail_of_single_record_journal_recovers_cold(store):
    store.append(state_at(1))
    assert store.corrupt_tail() is True
    assert store.recover() is None


def test_corrupt_snapshot_falls_back_to_journal(store):
    store.append(state_at(1))
    store.append(state_at(2))
    store.snapshot(state_at(2))  # truncates the journal
    store.append(state_at(3))
    assert store.corrupt_snapshot() is True
    assert store.recover().index == 3


def test_snapshot_truncation_removes_the_torn_record(store):
    """The satellite boundary case: corruption at a snapshot epoch.

    The daemon's chaos ordering is append → corrupt_tail → snapshot; when
    the corrupted epoch is also a snapshot epoch, the snapshot (written
    from in-memory state, not the torn journal) must win and the
    truncation must wipe the torn bytes so later appends start clean.
    """
    store.append(state_at(1))
    store.append(state_at(2))
    assert store.corrupt_tail() is True
    store.snapshot(state_at(2))
    assert store.journal_path.read_text() == ""
    assert store.recover().index == 2
    # The next epoch journals on top of the clean file as usual.
    store.append(state_at(3))
    assert store.recover().index == 3


def test_recover_repairs_the_torn_tail_in_place(store):
    """Recovery truncates torn bytes so the next append starts clean.

    Without the repair, the restarted daemon's first append would merge
    with the torn tail into one unparseable line, orphaning every record
    after it until the next snapshot.
    """
    store.append(state_at(1))
    store.append(state_at(2))
    store.corrupt_tail()
    assert store.recover().index == 1
    assert store.journal_path.read_bytes().endswith(b"\n")
    assert store.recover().index == 1  # repair lost nothing intact


def test_torn_record_before_crash_replays_from_last_intact_state(store):
    """Corruption + crash-before-snapshot: replay from the intact prefix."""
    store.append(state_at(1))
    store.append(state_at(2))
    store.corrupt_tail()
    # Daemon dies here (crash:checkpoint=2); the restart recovers 1 and
    # replays epoch 2 — its re-append must coexist with the torn bytes
    # gone-or-present semantics of a fresh append.
    recovered = store.recover()
    assert recovered.index == 1
    store.append(state_at(2))
    assert store.recover().index == 2


def test_no_temp_files_left_behind(store, tmp_path):
    store.snapshot(state_at(1))
    assert not list(tmp_path.glob("*.tmp"))


def test_status(store):
    store.append(state_at(1))
    status = store.status()
    assert status["journal_records"] == 1
    assert status["has_snapshot"] is False
    assert status["snapshot_every"] == 2
