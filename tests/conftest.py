"""Shared fixtures: small deterministic systems used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.costs import CostModel
from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.topology.generators import as_level_topology, line_topology, star_topology
from repro.workload.demand import DemandMatrix
from repro.workload.generators import group_workload, web_workload
from repro.workload.trace import Request, Trace


@pytest.fixture(scope="session")
def small_topology():
    """An 8-node AS-like topology with a fixed seed."""
    return as_level_topology(num_nodes=8, seed=1)


@pytest.fixture(scope="session")
def tiny_star():
    """A 1-hub, 3-leaf star: hub (origin) 100 ms from each leaf."""
    return star_topology(num_leaves=3, hub_latency_ms=100.0)


@pytest.fixture(scope="session")
def chain4():
    """A 4-node chain with 100 ms hops; node 0 is the origin."""
    return line_topology(num_nodes=4, hop_latency_ms=100.0)


@pytest.fixture(scope="session")
def web_trace():
    """A scaled-down WEB trace matched to the small topology."""
    return web_workload(num_nodes=8, num_objects=24, requests_scale=0.02, seed=7)


@pytest.fixture(scope="session")
def group_trace():
    """A scaled-down GROUP trace matched to the small topology."""
    return group_workload(num_nodes=8, num_objects=12, requests_scale=0.001, seed=7)


@pytest.fixture(scope="session")
def web_demand(web_trace):
    return DemandMatrix.from_trace(web_trace, num_intervals=6)


@pytest.fixture(scope="session")
def group_demand(group_trace):
    return DemandMatrix.from_trace(group_trace, num_intervals=6)


@pytest.fixture()
def web_problem(small_topology, web_demand):
    return MCPerfProblem(
        topology=small_topology,
        demand=web_demand,
        goal=QoSGoal(tlat_ms=150.0, fraction=0.9),
        costs=CostModel.paper_defaults(),
    )


@pytest.fixture()
def group_problem(small_topology, group_demand):
    return MCPerfProblem(
        topology=small_topology,
        demand=group_demand,
        goal=QoSGoal(tlat_ms=150.0, fraction=0.95),
        costs=CostModel.paper_defaults(),
    )


def make_trace(requests, duration_s=3600.0, num_nodes=4, num_objects=4, name="t"):
    """Terse trace builder: requests = [(time, node, obj[, is_write]), ...]."""
    reqs = []
    for item in requests:
        time_s, node, obj = item[0], item[1], item[2]
        is_write = bool(item[3]) if len(item) > 3 else False
        reqs.append(Request(float(time_s), int(node), int(obj), is_write))
    return Trace(
        requests=reqs,
        duration_s=duration_s,
        num_nodes=num_nodes,
        num_objects=num_objects,
        name=name,
    )


@pytest.fixture(scope="session")
def trace_builder():
    return make_trace
