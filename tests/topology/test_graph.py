"""Tests for the Topology model."""

import numpy as np
import pytest

from repro.topology.graph import Topology


def square(values):
    return np.asarray(values, dtype=float)


def simple_topology():
    lat = square([[0, 100, 250], [100, 0, 150], [250, 150, 0]])
    return Topology(latency=lat, origin=0, populations=np.array([1.0, 2.0, 3.0]))


def test_basic_properties():
    topo = simple_topology()
    assert topo.num_nodes == 3
    assert list(topo.nodes()) == [0, 1, 2]
    assert topo.diameter_ms() == 250.0


def test_rejects_non_square():
    with pytest.raises(ValueError, match="square"):
        Topology(latency=np.zeros((2, 3)))


def test_rejects_nonzero_diagonal():
    lat = square([[1, 100], [100, 0]])
    with pytest.raises(ValueError, match="diagonal"):
        Topology(latency=lat)


def test_rejects_negative_latency():
    lat = square([[0, -5], [-5, 0]])
    with pytest.raises(ValueError, match="non-negative"):
        Topology(latency=lat)


def test_rejects_asymmetric():
    lat = square([[0, 100], [90, 0]])
    with pytest.raises(ValueError, match="symmetric"):
        Topology(latency=lat)


def test_rejects_bad_origin():
    lat = square([[0, 100], [100, 0]])
    with pytest.raises(ValueError, match="origin"):
        Topology(latency=lat, origin=5)


def test_rejects_bad_population_shape():
    lat = square([[0, 100], [100, 0]])
    with pytest.raises(ValueError, match="populations"):
        Topology(latency=lat, populations=np.array([1.0]))


def test_rejects_negative_population():
    lat = square([[0, 100], [100, 0]])
    with pytest.raises(ValueError, match="non-negative"):
        Topology(latency=lat, populations=np.array([1.0, -1.0]))


def test_default_populations_and_names():
    lat = square([[0, 100], [100, 0]])
    topo = Topology(latency=lat)
    assert topo.populations.tolist() == [1.0, 1.0]
    assert topo.names == ["site-0", "site-1"]


def test_names_length_checked():
    lat = square([[0, 100], [100, 0]])
    with pytest.raises(ValueError, match="names"):
        Topology(latency=lat, names=["only-one"])


def test_dist_matrix_threshold():
    topo = simple_topology()
    dist = topo.dist_matrix(150.0)
    assert dist.tolist() == [[1, 1, 0], [1, 1, 1], [0, 1, 1]]


def test_dist_matrix_diagonal_always_one():
    topo = simple_topology()
    assert np.diagonal(topo.dist_matrix(0.0)).tolist() == [1, 1, 1]


def test_dist_matrix_negative_threshold_rejected():
    with pytest.raises(ValueError):
        simple_topology().dist_matrix(-1.0)


def test_neighbors_within():
    topo = simple_topology()
    assert topo.neighbors_within(0, 150.0) == [0, 1]
    assert topo.neighbors_within(2, 500.0) == [0, 1, 2]


def test_closest_node_prefers_lowest_latency_then_index():
    topo = simple_topology()
    assert topo.closest_node(2, [0, 1]) == 1
    # equidistant candidates -> lowest index
    lat = square([[0, 100, 100], [100, 0, 200], [100, 200, 0]])
    sym = Topology(latency=lat)
    assert sym.closest_node(0, [2, 1]) == 1


def test_closest_node_empty_candidates():
    with pytest.raises(ValueError):
        simple_topology().closest_node(0, [])


def test_restrict_remaps_origin():
    topo = simple_topology()
    sub = topo.restrict([1, 2])
    assert sub.num_nodes == 2
    assert sub.origin == 0  # fallback: first kept node
    sub2 = topo.restrict([2, 0])
    assert sub2.origin == 1  # original origin kept at position 1


def test_restrict_preserves_latency_and_population():
    topo = simple_topology()
    sub = topo.restrict([0, 2])
    assert sub.latency[0][1] == 250.0
    assert sub.populations.tolist() == [1.0, 3.0]
    assert sub.names == ["site-0", "site-2"]


def test_restrict_rejects_empty_and_bad_nodes():
    topo = simple_topology()
    with pytest.raises(ValueError):
        topo.restrict([])
    with pytest.raises(IndexError):
        topo.restrict([7])


def test_restrict_deduplicates():
    topo = simple_topology()
    sub = topo.restrict([1, 1, 2])
    assert sub.num_nodes == 2
