"""Tests for building topologies from measured edge lists."""

import numpy as np
import pytest

from repro.topology.generators import topology_from_edges


def test_shortest_paths_computed():
    topo = topology_from_edges(
        3, [(0, 1, 100.0), (1, 2, 50.0)], origin=0
    )
    assert topo.latency[0][2] == pytest.approx(150.0)
    assert topo.latency[2][0] == pytest.approx(150.0)


def test_shortcut_edge_wins():
    topo = topology_from_edges(
        3, [(0, 1, 100.0), (1, 2, 100.0), (0, 2, 120.0)]
    )
    assert topo.latency[0][2] == pytest.approx(120.0)


def test_disconnected_rejected():
    with pytest.raises(ValueError, match="disconnected"):
        topology_from_edges(3, [(0, 1, 100.0)])


def test_unknown_node_rejected():
    with pytest.raises(ValueError, match="unknown node"):
        topology_from_edges(2, [(0, 5, 100.0)])


def test_negative_latency_rejected():
    with pytest.raises(ValueError, match="non-negative"):
        topology_from_edges(2, [(0, 1, -10.0)])


def test_populations_and_names_pass_through():
    topo = topology_from_edges(
        2,
        [(0, 1, 100.0)],
        origin=1,
        populations=np.array([2.0, 3.0]),
        names=["hq", "branch"],
    )
    assert topo.origin == 1
    assert topo.populations.tolist() == [2.0, 3.0]
    assert topo.names == ["hq", "branch"]
