"""Tests for topology generators."""

import numpy as np
import pytest

from repro.topology.generators import (
    as_level_topology,
    grid_topology,
    line_topology,
    ring_topology,
    star_topology,
)
from repro.topology.latency import exponential_latency, uniform_latency


def test_as_level_shape_and_connectivity():
    topo = as_level_topology(num_nodes=20, seed=0)
    assert topo.num_nodes == 20
    assert np.all(np.isfinite(topo.latency))
    assert topo.diameter_ms() > 0


def test_as_level_deterministic_per_seed():
    a = as_level_topology(num_nodes=12, seed=3)
    b = as_level_topology(num_nodes=12, seed=3)
    assert np.allclose(a.latency, b.latency)
    assert a.origin == b.origin
    assert np.allclose(a.populations, b.populations)


def test_as_level_seeds_differ():
    a = as_level_topology(num_nodes=12, seed=3)
    b = as_level_topology(num_nodes=12, seed=4)
    assert not np.allclose(a.latency, b.latency)


def test_as_level_hop_latency_range():
    topo = as_level_topology(num_nodes=15, seed=1)
    # Any single positive entry is a sum of 100-200ms hops, so >= 100.
    off_diag = topo.latency[topo.latency > 0]
    assert off_diag.min() >= 100.0


def test_as_level_populations_uneven_but_positive():
    topo = as_level_topology(num_nodes=15, seed=1, population_skew=1.0)
    assert np.all(topo.populations > 0)
    assert topo.populations.max() / topo.populations.min() > 1.5


def test_as_level_uniform_populations_with_zero_skew():
    topo = as_level_topology(num_nodes=10, seed=1, population_skew=0.0)
    assert np.allclose(topo.populations, topo.populations[0])


def test_as_level_rejects_tiny():
    with pytest.raises(ValueError):
        as_level_topology(num_nodes=1)


def test_as_level_custom_latency_model():
    topo = as_level_topology(
        num_nodes=10,
        seed=2,
        latency_model=lambda rng: exponential_latency(rng, mean=50.0, floor=10.0),
    )
    assert topo.latency[topo.latency > 0].min() >= 10.0


def test_star_topology_structure():
    topo = star_topology(num_leaves=4, hub_latency_ms=100.0)
    assert topo.num_nodes == 5
    assert topo.origin == 0
    assert topo.latency[0][3] == 100.0
    assert topo.latency[1][2] == 200.0  # leaf-to-leaf via hub


def test_star_rejects_no_leaves():
    with pytest.raises(ValueError):
        star_topology(num_leaves=0)


def test_line_topology_linear_latency():
    topo = line_topology(num_nodes=4, hop_latency_ms=50.0)
    assert topo.latency[0][3] == pytest.approx(150.0)
    assert topo.latency[1][2] == pytest.approx(50.0)


def test_ring_topology_wraps():
    topo = ring_topology(num_nodes=6, hop_latency_ms=100.0)
    # opposite nodes are 3 hops either way
    assert topo.latency[0][3] == pytest.approx(300.0)
    # neighbours via the short side
    assert topo.latency[0][5] == pytest.approx(100.0)


def test_ring_rejects_tiny():
    with pytest.raises(ValueError):
        ring_topology(num_nodes=2)


def test_grid_topology_manhattan():
    topo = grid_topology(rows=3, cols=3, hop_latency_ms=10.0)
    assert topo.num_nodes == 9
    assert topo.latency[0][8] == pytest.approx(40.0)  # 4 hops corner to corner


def test_grid_rejects_zero_dims():
    with pytest.raises(ValueError):
        grid_topology(rows=0, cols=3)


def test_uniform_latency_in_range():
    rng = np.random.default_rng(0)
    draws = [uniform_latency(rng, 100.0, 200.0) for _ in range(200)]
    assert min(draws) >= 100.0
    assert max(draws) <= 200.0


def test_uniform_latency_validates():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        uniform_latency(rng, 200.0, 100.0)


def test_exponential_latency_floor_and_validation():
    rng = np.random.default_rng(0)
    draws = [exponential_latency(rng, mean=150.0, floor=20.0) for _ in range(200)]
    assert min(draws) >= 20.0
    with pytest.raises(ValueError):
        exponential_latency(rng, mean=10.0, floor=20.0)
