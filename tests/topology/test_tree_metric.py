"""Tree-metric recognition and the random tree generator."""

import numpy as np
import pytest

from repro.topology.generators import (
    grid_topology,
    line_topology,
    ring_topology,
    star_topology,
    tree_topology,
)


@pytest.mark.parametrize(
    "topo",
    [
        tree_topology(20, seed=0),
        tree_topology(3, seed=5),
        star_topology(6, hub_latency_ms=120.0, jitter_ms=30.0, seed=2),
        line_topology(7, hop_latency_ms=80.0),
        grid_topology(1, 5),  # a 1xN grid is a path
    ],
)
def test_is_tree_accepts_tree_metrics(topo):
    assert topo.is_tree()


@pytest.mark.parametrize("topo", [ring_topology(6), grid_topology(3, 3)])
def test_is_tree_rejects_cyclic_metrics(topo):
    assert not topo.is_tree()
    with pytest.raises(ValueError, match="not a tree metric"):
        topo.tree_parents()


def test_is_tree_single_node():
    from repro.topology.graph import Topology

    topo = Topology(latency=np.zeros((1, 1)), origin=0)
    assert topo.is_tree()
    order, parent, pdist = topo.tree_parents()
    assert list(order) == [0] and parent[0] == -1 and pdist[0] == 0.0


def test_tree_parents_structure():
    topo = tree_topology(25, seed=3)
    order, parent, pdist = topo.tree_parents()
    n = topo.num_nodes
    assert sorted(order) == list(range(n))
    assert int(order[0]) == topo.origin and parent[topo.origin] == -1
    seen = {int(order[0])}
    for v in order[1:]:
        v = int(v)
        p = int(parent[v])
        assert p in seen  # parents precede children
        assert pdist[v] == pytest.approx(topo.latency[p][v])
        seen.add(v)
    # Root-to-node distance along parents reproduces the matrix row.
    for v in range(n):
        dist, node = 0.0, v
        while parent[node] != -1:
            dist += pdist[node]
            node = int(parent[node])
        assert dist == pytest.approx(topo.latency[topo.origin][v])


def test_tree_topology_shape_and_determinism():
    a = tree_topology(40, seed=11)
    b = tree_topology(40, seed=11)
    c = tree_topology(40, seed=12)
    assert a.num_nodes == 40 and a.origin == 0
    assert np.array_equal(a.latency, b.latency)
    assert not np.array_equal(a.latency, c.latency)
    assert a.is_tree()
    # Latency matrix is a valid symmetric metric with zero diagonal.
    assert np.allclose(a.latency, np.asarray(a.latency).T)
    assert np.all(np.diag(a.latency) == 0.0)


def test_tree_topology_population_skew():
    skewed = tree_topology(30, seed=4, population_skew=1.0)
    assert skewed.populations is not None
    assert np.asarray(skewed.populations).std() > 0


def test_tree_cache_is_per_instance():
    topo = tree_topology(10, seed=1)
    assert topo.is_tree()
    # Second call hits the cache and agrees.
    assert topo.is_tree()
    order1, _, _ = topo.tree_parents()
    order2, _, _ = topo.tree_parents()
    assert np.array_equal(order1, order2)
