"""Topology serialization round-trips."""

import numpy as np
import pytest

from repro.topology.generators import as_level_topology
from repro.topology.io import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)


def test_dict_round_trip():
    topo = as_level_topology(num_nodes=9, seed=2)
    back = topology_from_dict(topology_to_dict(topo))
    assert np.allclose(back.latency, topo.latency)
    assert back.origin == topo.origin
    assert np.allclose(back.populations, topo.populations)
    assert back.names == topo.names


def test_file_round_trip(tmp_path):
    topo = as_level_topology(num_nodes=6, seed=3)
    path = tmp_path / "topo.json"
    save_topology(topo, path)
    back = load_topology(path)
    assert np.allclose(back.latency, topo.latency)
    assert back.origin == topo.origin


def test_unknown_version_rejected():
    topo = as_level_topology(num_nodes=5, seed=0)
    data = topology_to_dict(topo)
    data["version"] = 99
    with pytest.raises(ValueError, match="version"):
        topology_from_dict(data)


def test_dict_is_json_serializable():
    import json

    topo = as_level_topology(num_nodes=5, seed=0)
    json.dumps(topology_to_dict(topo))  # should not raise


# -- load-time validation (repro.errors.ValidationError) ----------------------


def corrupt(mutate):
    data = topology_to_dict(as_level_topology(num_nodes=5, seed=0))
    mutate(data)
    return data


def test_nan_latency_rejected():
    from repro.errors import ValidationError

    data = corrupt(lambda d: d["latency"][1].__setitem__(2, float("nan")))
    with pytest.raises(ValidationError, match=r"latency\[1,2\]"):
        topology_from_dict(data)


def test_inf_latency_rejected():
    from repro.errors import ValidationError

    data = corrupt(lambda d: d["latency"][0].__setitem__(3, float("inf")))
    with pytest.raises(ValidationError, match="finite"):
        topology_from_dict(data)


def test_negative_latency_rejected():
    from repro.errors import ValidationError

    data = corrupt(lambda d: d["latency"][2].__setitem__(0, -1.0))
    with pytest.raises(ValidationError, match="non-negative"):
        topology_from_dict(data)


def test_nan_population_rejected():
    from repro.errors import ValidationError

    data = corrupt(lambda d: d["populations"].__setitem__(1, float("nan")))
    with pytest.raises(ValidationError, match=r"population\[1\]"):
        topology_from_dict(data)


def test_negative_population_rejected():
    from repro.errors import ValidationError

    data = corrupt(lambda d: d["populations"].__setitem__(0, -3.0))
    with pytest.raises(ValidationError, match="population"):
        topology_from_dict(data)


def test_validation_error_is_a_value_error():
    from repro.errors import ValidationError

    data = corrupt(lambda d: d["latency"][1].__setitem__(2, float("nan")))
    with pytest.raises(ValueError):
        topology_from_dict(data)
