"""Topology serialization round-trips."""

import numpy as np
import pytest

from repro.topology.generators import as_level_topology
from repro.topology.io import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)


def test_dict_round_trip():
    topo = as_level_topology(num_nodes=9, seed=2)
    back = topology_from_dict(topology_to_dict(topo))
    assert np.allclose(back.latency, topo.latency)
    assert back.origin == topo.origin
    assert np.allclose(back.populations, topo.populations)
    assert back.names == topo.names


def test_file_round_trip(tmp_path):
    topo = as_level_topology(num_nodes=6, seed=3)
    path = tmp_path / "topo.json"
    save_topology(topo, path)
    back = load_topology(path)
    assert np.allclose(back.latency, topo.latency)
    assert back.origin == topo.origin


def test_unknown_version_rejected():
    topo = as_level_topology(num_nodes=5, seed=0)
    data = topology_to_dict(topo)
    data["version"] = 99
    with pytest.raises(ValueError, match="version"):
        topology_from_dict(data)


def test_dict_is_json_serializable():
    import json

    topo = as_level_topology(num_nodes=5, seed=0)
    json.dumps(topology_to_dict(topo))  # should not raise
