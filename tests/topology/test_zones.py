"""Zone model: maps on Topology, parsing, validation, and io round-trips."""

import json

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.topology.generators import line_topology, star_topology
from repro.topology.graph import Topology
from repro.topology.io import load_topology, save_topology
from repro.topology.zones import (
    parse_zones,
    round_robin_zones,
    validate_zone_map,
    zone_map_or_none,
)


def zoned_line(num_nodes=6, zones=(0, 0, 1, 1, 2, 2)):
    topo = line_topology(num_nodes=num_nodes, hop_latency_ms=50.0)
    return Topology(
        latency=topo.latency,
        origin=topo.origin,
        populations=topo.populations,
        zones=np.asarray(zones),
    )


class TestValidateZoneMap:
    def test_normalizes_to_int64(self):
        out = validate_zone_map([0, 1, 1], 3)
        assert out.dtype == np.int64
        assert out.tolist() == [0, 1, 1]

    def test_wrong_length_rejected(self):
        with pytest.raises(ValidationError):
            validate_zone_map([0, 1], 3)

    def test_negative_id_rejected(self):
        with pytest.raises(ValidationError):
            validate_zone_map([0, -1, 1], 3)

    def test_non_integral_rejected(self):
        with pytest.raises(ValidationError):
            validate_zone_map([0.0, 0.5, 1.0], 3)


class TestParseZones:
    def test_integer_count_stripes_round_robin(self):
        assert parse_zones(3, 6).tolist() == round_robin_zones(6, 3).tolist()
        assert parse_zones("3", 6).tolist() == round_robin_zones(6, 3).tolist()

    def test_explicit_groups(self):
        out = parse_zones("0+1;2+3;4", 5)
        assert out[0] == out[1]
        assert out[2] == out[3]
        assert len({int(z) for z in out}) == 3

    def test_uncovered_node_rejected(self):
        with pytest.raises(ValidationError):
            parse_zones("0+1;2", 5)

    def test_duplicate_node_rejected(self):
        with pytest.raises(ValidationError):
            parse_zones("0+1;1+2", 3)

    def test_too_many_zones_rejected(self):
        with pytest.raises(ValidationError):
            parse_zones(7, 6)

    def test_none_passthrough(self):
        assert zone_map_or_none(None, 4) is None
        assert zone_map_or_none(2, 4) is not None


class TestTopologyZoneAccessors:
    def test_unzoned_topology_every_node_its_own_zone(self):
        topo = star_topology(num_leaves=3, hub_latency_ms=100.0)
        assert not topo.has_zones
        assert topo.num_zones == topo.num_nodes
        assert topo.zone_of(2) == 2
        assert topo.zones_of([0, 2]) == {0, 2}

    def test_zoned_accessors(self):
        topo = zoned_line()
        assert topo.has_zones
        assert topo.num_zones == 3
        assert topo.zone_of(0) == 0 and topo.zone_of(5) == 2
        assert topo.zones_of([0, 1, 2]) == {0, 1}
        assert topo.zone_nodes(1) == [2, 3]

    def test_bad_zone_length_rejected_at_construction(self):
        base = line_topology(num_nodes=4, hop_latency_ms=10.0)
        # Topology's own field checks use plain ValueError, like its other
        # fields; ValidationError (a subclass) guards the loader boundary.
        with pytest.raises(ValueError):
            Topology(latency=base.latency, zones=np.asarray([0, 1]))

    def test_restrict_carries_zone_map(self):
        topo = zoned_line()
        sub = topo.restrict([0, 2, 4])
        assert sub.has_zones
        assert [sub.zone_of(n) for n in sub.nodes()] == [0, 1, 2]


class TestZoneIO:
    def test_round_trip_preserves_zones(self, tmp_path):
        topo = zoned_line()
        path = tmp_path / "zoned.json"
        save_topology(topo, path)
        back = load_topology(path)
        assert back.has_zones
        assert back.zones.tolist() == topo.zones.tolist()

    def test_unzoned_file_loads_without_zones(self, tmp_path):
        topo = line_topology(num_nodes=4, hop_latency_ms=10.0)
        path = tmp_path / "plain.json"
        save_topology(topo, path)
        data = json.loads(path.read_text())
        assert "zones" not in data
        assert not load_topology(path).has_zones

    def test_malformed_zone_map_rejected_at_load(self, tmp_path):
        topo = line_topology(num_nodes=4, hop_latency_ms=10.0)
        path = tmp_path / "bad.json"
        save_topology(topo, path)
        data = json.loads(path.read_text())
        data["zones"] = [0, 1]  # wrong length
        path.write_text(json.dumps(data))
        with pytest.raises(ValidationError):
            load_topology(path)
