"""Tests for the cost model and performance goals."""

import pytest

from repro.core.costs import CostModel
from repro.core.goals import AverageLatencyGoal, GoalScope, QoSGoal


def test_paper_defaults():
    c = CostModel.paper_defaults()
    assert (c.alpha, c.beta) == (1.0, 1.0)
    assert (c.gamma, c.delta, c.zeta) == (0.0, 0.0, 0.0)


def test_deployment_defaults():
    c = CostModel.deployment_defaults()
    assert c.zeta == 10_000.0


def test_with_zeta_preserves_others():
    c = CostModel(alpha=2.0, beta=3.0, gamma=1.0).with_zeta(7.0)
    assert (c.alpha, c.beta, c.gamma, c.zeta) == (2.0, 3.0, 1.0, 7.0)


@pytest.mark.parametrize("field", ["alpha", "beta", "gamma", "delta", "zeta"])
def test_negative_costs_rejected(field):
    with pytest.raises(ValueError, match=field):
        CostModel(**{field: -1.0})


def test_cost_model_frozen():
    c = CostModel()
    with pytest.raises(Exception):
        c.alpha = 5.0  # type: ignore[misc]


def test_qos_goal_validation():
    goal = QoSGoal(tlat_ms=150.0, fraction=0.99)
    assert goal.scope is GoalScope.PER_USER
    with pytest.raises(ValueError):
        QoSGoal(tlat_ms=-1.0, fraction=0.5)
    with pytest.raises(ValueError):
        QoSGoal(tlat_ms=100.0, fraction=0.0)
    with pytest.raises(ValueError):
        QoSGoal(tlat_ms=100.0, fraction=1.5)


def test_qos_goal_scope_coercion():
    goal = QoSGoal(tlat_ms=100.0, fraction=0.9, scope="overall")
    assert goal.scope is GoalScope.OVERALL


def test_qos_goal_describe():
    text = QoSGoal(tlat_ms=250.0, fraction=0.99).describe()
    assert "250" in text and "99" in text


def test_avg_goal_defaults_tlat_to_tavg():
    goal = AverageLatencyGoal(tavg_ms=200.0)
    assert goal.tlat_ms == 200.0


def test_avg_goal_explicit_tlat():
    goal = AverageLatencyGoal(tavg_ms=200.0, tlat_ms=150.0)
    assert goal.tlat_ms == 150.0


def test_avg_goal_validation():
    with pytest.raises(ValueError):
        AverageLatencyGoal(tavg_ms=-5.0)


def test_avg_goal_describe():
    assert "200" in AverageLatencyGoal(tavg_ms=200.0).describe()
