"""Tests for MCPerfProblem lowering into PlacementInstance."""

import numpy as np
import pytest

from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.core.properties import HeuristicProperties, Knowledge, Routing
from repro.topology.generators import line_topology, star_topology
from repro.workload.demand import DemandMatrix


def problem(topo, num_objects=2, tlat=150.0, fraction=0.9, **kwargs):
    reads = np.ones((topo.num_nodes, 2, num_objects))
    demand = DemandMatrix(reads=reads)
    return MCPerfProblem(
        topology=topo, demand=demand, goal=QoSGoal(tlat_ms=tlat, fraction=fraction), **kwargs
    )


def test_demand_topology_size_mismatch_rejected():
    topo = star_topology(num_leaves=2)
    demand = DemandMatrix(reads=np.ones((5, 1, 1)))
    with pytest.raises(ValueError, match="nodes"):
        MCPerfProblem(topology=topo, demand=demand, goal=QoSGoal(100.0, 0.9))


def test_goal_type_checked():
    topo = star_topology(num_leaves=2)
    demand = DemandMatrix(reads=np.ones((3, 1, 1)))
    with pytest.raises(TypeError):
        MCPerfProblem(topology=topo, demand=demand, goal="95%")  # type: ignore[arg-type]


def test_origin_excluded_from_storers_when_free():
    topo = star_topology(num_leaves=3)  # origin = 0
    p = problem(topo)
    assert 0 not in p.storer_ids().tolist()
    p2 = problem(topo, origin_free=False)
    assert 0 in p2.storer_ids().tolist()


def test_storage_nodes_subset_and_validation():
    topo = star_topology(num_leaves=3)
    p = problem(topo, storage_nodes=[1, 2])
    assert p.storer_ids().tolist() == [1, 2]
    with pytest.raises(ValueError):
        problem(topo, storage_nodes=[9])
    with pytest.raises(ValueError):
        problem(topo, storage_nodes=[1, 1])


def test_global_reach_uses_latency_threshold():
    # Chain 0-1-2-3 at 100ms hops, origin 0, Tlat 150: neighbours only.
    topo = line_topology(num_nodes=4, hop_latency_ms=100.0)
    inst = problem(topo, tlat=150.0).instance(HeuristicProperties())
    # storers are nodes 1,2,3
    assert inst.storer_ids.tolist() == [1, 2, 3]
    # demander 0 reaches storer 1 only
    assert inst.reach[0].tolist() == [1, 0, 0]
    # demander 2 reaches storers 1, 2, 3
    assert inst.reach[2].tolist() == [1, 1, 1]


def test_local_routing_reach_is_self_only():
    topo = line_topology(num_nodes=4, hop_latency_ms=100.0)
    inst = problem(topo).instance(HeuristicProperties(routing=Routing.LOCAL))
    assert inst.reach[1].tolist() == [1, 0, 0]
    assert inst.reach[0].tolist() == [0, 0, 0]  # origin site has no storer self
    assert inst.serve[2].tolist() == [0, 1, 0]


def test_origin_covers_nearby_demander():
    topo = line_topology(num_nodes=4, hop_latency_ms=100.0)
    inst = problem(topo, tlat=150.0).instance(HeuristicProperties())
    assert inst.origin_covers.tolist() == [1, 1, 0, 0]


def test_origin_not_free_means_no_free_coverage():
    topo = line_topology(num_nodes=4, hop_latency_ms=100.0)
    inst = problem(topo, origin_free=False).instance(HeuristicProperties())
    assert inst.origin_covers.sum() == 0
    assert inst.storer_ids.tolist() == [0, 1, 2, 3]


def test_know_matrix_local_vs_global():
    topo = line_topology(num_nodes=3, hop_latency_ms=100.0)
    inst_g = problem(topo).instance(HeuristicProperties())
    assert inst_g.know.all()
    inst_l = problem(topo).instance(HeuristicProperties(knowledge=Knowledge.LOCAL))
    # storers are nodes 1,2; each knows only its own site
    assert inst_l.know[0].tolist() == [0, 1, 0]
    assert inst_l.know[1].tolist() == [0, 0, 1]


def test_assignment_routing_accumulates_latency():
    # chain 0-1-2-3; users of site 3 assigned to node 2.
    topo = line_topology(num_nodes=4, hop_latency_ms=100.0)
    assignment = np.array([1, 1, 2, 2])
    p = problem(topo, storage_nodes=[1, 2], assignment=assignment, tlat=250.0)
    inst = p.instance(HeuristicProperties())
    # site 3 -> assigned 2 (100ms) -> storer 1 (another 100ms) = 200 <= 250
    assert inst.latency[3].tolist() == [200.0, 100.0]
    assert inst.reach[3].tolist() == [1, 1]
    # site 0 -> assigned 1 (100) -> storer 2 (100) = 200; origin via 1 = 200
    assert inst.origin_latency[0] == pytest.approx(200.0)


def test_assignment_local_routing_serves_via_assigned_node_only():
    topo = line_topology(num_nodes=4, hop_latency_ms=100.0)
    assignment = np.array([1, 1, 2, 2])
    p = problem(topo, storage_nodes=[1, 2], assignment=assignment, tlat=150.0)
    inst = p.instance(HeuristicProperties(routing=Routing.LOCAL))
    assert inst.serve[0].tolist() == [1, 0]
    assert inst.serve[3].tolist() == [0, 1]
    assert inst.reach[3].tolist() == [0, 1]  # 100ms leg within 150


def test_assignment_must_target_storage_nodes():
    topo = line_topology(num_nodes=4, hop_latency_ms=100.0)
    with pytest.raises(ValueError, match="not a storage node"):
        problem(topo, storage_nodes=[1], assignment=np.array([1, 1, 3, 3]))


def test_assignment_to_origin_allowed_when_free():
    topo = line_topology(num_nodes=3, hop_latency_ms=100.0)
    p = problem(topo, storage_nodes=[1], assignment=np.array([0, 1, 1]))
    inst = p.instance(HeuristicProperties())
    assert inst.origin_latency[0] == pytest.approx(0.0)


def test_warmup_validation_and_masking():
    topo = star_topology(num_leaves=2)
    with pytest.raises(ValueError, match="warmup"):
        problem(topo, warmup_intervals=2)  # == num_intervals
    p = problem(topo, warmup_intervals=1)
    inst = p.instance(HeuristicProperties())
    masked = inst.qos_reads()
    assert masked[:, 0, :].sum() == 0
    assert masked[:, 1, :].sum() == inst.reads[:, 1, :].sum()
    # full reads unchanged
    assert inst.reads[:, 0, :].sum() > 0


def test_initial_placement_shape_checked():
    topo = star_topology(num_leaves=2)
    with pytest.raises(ValueError, match="initial_placement"):
        problem(topo, initial_placement=np.ones((1, 1)))


def test_initial_placement_projected_to_storers():
    topo = star_topology(num_leaves=2)
    init = np.zeros((3, 2))
    init[1, 0] = 1
    p = problem(topo, initial_placement=init)
    inst = p.instance(HeuristicProperties())
    assert inst.initial_store.shape == (2, 2)
    assert inst.initial_store[0, 0] == 1  # storer 0 is node 1


def test_repr():
    topo = star_topology(num_leaves=2)
    assert "nodes=3" in repr(problem(topo))
