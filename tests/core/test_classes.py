"""Tests for the Table-3 class registry."""

import pytest

from repro.core.classes import (
    FIGURE1_CLASSES,
    STANDARD_CLASSES,
    get_class,
    render_table3,
    table3,
)
from repro.core.properties import Knowledge, ReplicaConstraint, Routing, StorageConstraint


def test_registry_contains_paper_rows():
    for name in [
        "general",
        "storage-constrained",
        "replica-constrained",
        "decentralized-local-routing",
        "caching",
        "cooperative-caching",
        "caching-prefetch",
        "cooperative-caching-prefetch",
        "reactive",
    ]:
        assert name in STANDARD_CLASSES


def test_caching_class_matches_table3_row():
    props = get_class("caching").properties
    assert props.storage_constraint is StorageConstraint.UNIFORM
    assert props.routing is Routing.LOCAL
    assert props.knowledge is Knowledge.LOCAL
    assert props.history_window == 1
    assert props.reactive


def test_cooperative_caching_differs_only_in_scope():
    coop = get_class("cooperative-caching").properties
    assert coop.routing is Routing.GLOBAL
    assert coop.knowledge is Knowledge.GLOBAL
    assert coop.history_window == 1
    assert coop.reactive


def test_prefetch_variants_are_proactive():
    assert not get_class("caching-prefetch").properties.reactive
    assert not get_class("cooperative-caching-prefetch").properties.reactive


def test_replica_constrained_row():
    props = get_class("replica-constrained").properties
    assert props.replica_constraint is ReplicaConstraint.UNIFORM
    assert props.storage_constraint is StorageConstraint.NONE


def test_general_is_general():
    assert get_class("general").properties.is_general


def test_get_class_error_lists_known():
    with pytest.raises(KeyError, match="known classes"):
        get_class("magic")


def test_figure1_classes_resolvable():
    for name in FIGURE1_CLASSES:
        assert get_class(name)


def test_table3_rows_cover_registry():
    rows = table3()
    assert {r["class"] for r in rows} == set(STANDARD_CLASSES)
    caching_row = next(r for r in rows if r["class"] == "caching")
    assert caching_row["SC"] == "uniform"
    assert caching_row["React"] == "yes"
    assert caching_row["Hist"] == "1"


def test_render_table3_is_aligned_text():
    text = render_table3()
    lines = text.splitlines()
    assert len(lines) == len(STANDARD_CLASSES) + 2
    assert "caching" in text
    assert all(len(line) == len(lines[0]) for line in lines[:1])
