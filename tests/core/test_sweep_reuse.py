"""Tests for QoS-row re-targeting (formulation reuse across sweep levels)."""

import numpy as np
import pytest

from repro.analysis.sweep import qos_sweep
from repro.core.bounds import compute_lower_bound
from repro.core.formulation import build_formulation
from repro.core.goals import AverageLatencyGoal
from repro.core.problem import MCPerfProblem
from repro.core.properties import HeuristicProperties
from repro.topology.generators import star_topology
from repro.workload.demand import DemandMatrix
from repro.core.goals import QoSGoal


def tiny_problem(fraction=0.5):
    topo = star_topology(num_leaves=2, hub_latency_ms=200.0)
    reads = np.zeros((3, 2, 1))
    reads[1, :, 0] = 1
    reads[2, 1, 0] = 1
    return MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=reads),
        goal=QoSGoal(tlat_ms=150.0, fraction=fraction),
    )


def test_retarget_matches_fresh_build():
    problem = tiny_problem(0.5)
    form = build_formulation(problem)
    for fraction in [0.5, 0.8, 1.0, 0.3]:
        form.set_qos_fraction(fraction)
        reused = compute_lower_bound(
            form.problem, None, do_rounding=False, formulation=form
        )
        fresh = compute_lower_bound(tiny_problem(fraction), None, do_rounding=False)
        assert reused.feasible == fresh.feasible
        if fresh.feasible:
            assert reused.lp_cost == pytest.approx(fresh.lp_cost, abs=1e-8)


def test_retarget_updates_goal_on_problem():
    form = build_formulation(tiny_problem(0.5))
    form.set_qos_fraction(0.9)
    assert form.problem.goal.fraction == 0.9


def test_retarget_flags_structural_infeasibility():
    # A reactive class cannot cover interval-0 reads: at high fractions the
    # re-targeted formulation must flag infeasibility like a fresh build.
    problem = tiny_problem(0.5)
    props = HeuristicProperties(reactive=True)
    form = build_formulation(problem, props)
    assert not form.structurally_infeasible
    form.set_qos_fraction(1.0)
    assert form.structurally_infeasible
    form.set_qos_fraction(0.4)
    assert not form.structurally_infeasible


def test_retarget_rejects_avg_goal():
    topo = star_topology(num_leaves=1, hub_latency_ms=200.0)
    reads = np.zeros((2, 1, 1))
    reads[1, 0, 0] = 1
    problem = MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=reads),
        goal=AverageLatencyGoal(tavg_ms=100.0),
    )
    form = build_formulation(problem)
    with pytest.raises(TypeError):
        form.set_qos_fraction(0.9)


def test_sweep_reuse_equals_rebuild(web_problem):
    levels = [0.8, 0.9]
    classes = ["general", "storage-constrained"]
    reused = qos_sweep(web_problem, levels, classes, reuse_formulation=True)
    rebuilt = qos_sweep(web_problem, levels, classes, reuse_formulation=False)
    for cls in classes:
        for lvl in levels:
            a, b = reused.bound(cls, lvl), rebuilt.bound(cls, lvl)
            assert (a is None) == (b is None)
            if a is not None:
                assert a == pytest.approx(b, rel=1e-9)
