"""Tests for solution evaluation (coverage, QoS, cost accounting)."""

import numpy as np
import pytest

from repro.core.costs import CostModel
from repro.core.evaluate import (
    average_latency_by_scope,
    coverage_matrix,
    creations_from_store,
    meets_goal,
    qos_by_scope,
    solution_cost,
)
from repro.core.goals import AverageLatencyGoal, GoalScope, QoSGoal
from repro.core.problem import MCPerfProblem
from repro.core.properties import (
    HeuristicProperties,
    ReplicaConstraint,
    StorageConstraint,
)
from repro.topology.generators import star_topology
from repro.workload.demand import DemandMatrix


def far_star_instance(reads, tlat=150.0, fraction=0.9, num_leaves=2, **kwargs):
    topo = star_topology(num_leaves=num_leaves, hub_latency_ms=200.0)
    problem = MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=np.asarray(reads, dtype=float)),
        goal=QoSGoal(tlat_ms=tlat, fraction=fraction),
        **kwargs,
    )
    return problem, problem.instance(HeuristicProperties())


def test_creations_from_store_basic():
    store = np.zeros((1, 4, 1))
    store[0, :, 0] = [0, 1, 1, 0]
    create = creations_from_store(store)
    assert create[0, :, 0].tolist() == [0, 1, 0, 0]


def test_creations_respect_initial_placement():
    store = np.ones((1, 2, 1))
    init = np.ones((1, 1))
    assert creations_from_store(store, init).sum() == 0
    assert creations_from_store(store).sum() == 1


def test_creations_fractional():
    store = np.zeros((1, 3, 1))
    store[0, :, 0] = [0.2, 0.7, 0.4]
    create = creations_from_store(store)
    assert create[0, :, 0] == pytest.approx([0.2, 0.5, 0.0])


def test_coverage_matrix_counts_reachable_stores():
    reads = np.zeros((3, 1, 1))
    reads[1, 0, 0] = 1
    _p, inst = far_star_instance(reads)
    store = np.zeros((2, 1, 1))
    cov = coverage_matrix(inst, store)
    assert cov[1, 0, 0] == 0.0
    store[0, 0, 0] = 1.0  # storer 0 = leaf 1
    cov = coverage_matrix(inst, store)
    assert cov[1, 0, 0] == 1.0
    assert cov[2, 0, 0] == 0.0  # leaf 2 cannot reach leaf 1 (400ms)


def test_coverage_clips_at_one():
    reads = np.zeros((3, 1, 1))
    reads[1, 0, 0] = 1
    _p, inst = far_star_instance(reads)
    store = np.full((2, 1, 1), 0.8)
    cov = coverage_matrix(inst, store)
    # Coverage is min(1, sum over reachable storers) — exactly the reach row.
    expected = min(1.0, float(inst.reach[1] @ store[:, 0, 0]))
    assert cov[1, 0, 0] == pytest.approx(expected)
    # A 0.6+0.6 split across two reachable storers does clip at 1.
    wide = np.full((2, 1, 1), 0.6)
    both_reachable = float(inst.reach[1].sum())
    if both_reachable >= 2:
        assert coverage_matrix(inst, wide)[1, 0, 0] == 1.0


def test_origin_covered_node_is_always_covered():
    topo = star_topology(num_leaves=2, hub_latency_ms=100.0)
    reads = np.zeros((3, 1, 1))
    reads[1, 0, 0] = 1
    problem = MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=reads),
        goal=QoSGoal(tlat_ms=150.0, fraction=0.9),
    )
    inst = problem.instance(HeuristicProperties())
    cov = coverage_matrix(inst, np.zeros((2, 1, 1)))
    assert cov[1, 0, 0] == 1.0


def test_qos_by_scope_per_user_and_overall():
    reads = np.zeros((3, 1, 1))
    reads[1, 0, 0] = 3
    reads[2, 0, 0] = 1
    problem, inst = far_star_instance(reads)
    store = np.zeros((2, 1, 1))
    store[0, 0, 0] = 1  # cover leaf 1 only
    per_user = qos_by_scope(inst, problem.goal, store)
    assert per_user[1] == 1.0
    assert per_user[2] == 0.0
    overall = qos_by_scope(inst, QoSGoal(150.0, 0.5, scope=GoalScope.OVERALL), store)
    assert overall["all"] == pytest.approx(0.75)


def test_qos_by_scope_per_object():
    reads = np.zeros((3, 1, 2))
    reads[1, 0, 0] = 2
    reads[1, 0, 1] = 2
    problem, inst = far_star_instance(reads)
    store = np.zeros((2, 1, 2))
    store[0, 0, 0] = 1
    per_obj = qos_by_scope(inst, QoSGoal(150.0, 0.5, scope=GoalScope.PER_OBJECT), store)
    assert per_obj[("k", 0)] == 1.0
    assert per_obj[("k", 1)] == 0.0


def test_meets_goal_qos():
    reads = np.zeros((3, 1, 1))
    reads[1, 0, 0] = 1
    problem, inst = far_star_instance(reads, fraction=1.0)
    assert not meets_goal(inst, problem.goal, np.zeros((2, 1, 1)))
    store = np.zeros((2, 1, 1))
    store[0, 0, 0] = 1
    assert meets_goal(inst, problem.goal, store)


def test_plain_cost_accounting():
    reads = np.zeros((3, 2, 1))
    reads[1, :, 0] = 1
    problem, inst = far_star_instance(reads)
    store = np.zeros((2, 2, 1))
    store[0, :, 0] = 1
    cost = solution_cost(inst, HeuristicProperties(), CostModel(), store)
    assert cost.storage == pytest.approx(2.0)
    assert cost.creation == pytest.approx(1.0)
    assert cost.total == pytest.approx(3.0)


def test_sc_uniform_cost_pads_capacity_and_creation():
    reads = np.zeros((3, 2, 2))
    reads[1, :, :] = 1
    problem, inst = far_star_instance(reads)
    store = np.zeros((2, 2, 2))
    store[0, :, :] = 1  # leaf 1 stores 2 objects, leaf 2 stores none
    props = HeuristicProperties(storage_constraint=StorageConstraint.UNIFORM)
    cost = solution_cost(inst, props, CostModel(), store)
    # cmax = 2, so storage = 2 nodes * 2 intervals * 2 = 8
    assert cost.storage == pytest.approx(8.0)
    # creations 2 + fill of the idle node (2)
    assert cost.creation == pytest.approx(4.0)
    assert cost.adjustments["sc_capacity_fill"] == pytest.approx(2.0)


def test_sc_per_node_cost():
    reads = np.zeros((3, 2, 2))
    reads[1, :, :] = 1
    problem, inst = far_star_instance(reads)
    store = np.zeros((2, 2, 2))
    store[0, :, :] = 1
    props = HeuristicProperties(storage_constraint=StorageConstraint.PER_NODE)
    cost = solution_cost(inst, props, CostModel(), store)
    assert cost.storage == pytest.approx(4.0)  # cap_0 = 2 over 2 intervals
    assert cost.creation == pytest.approx(2.0)


def test_rc_uniform_cost_pads_replicas():
    reads = np.zeros((3, 2, 2))
    reads[1, :, 0] = 1
    reads[2, 1, 1] = 1
    problem, inst = far_star_instance(reads)
    store = np.zeros((2, 2, 2))
    store[0, :, 0] = 1  # object 0: one replica both intervals
    store[1, 1, 1] = 1  # object 1: one replica second interval
    props = HeuristicProperties(replica_constraint=ReplicaConstraint.UNIFORM)
    cost = solution_cost(inst, props, CostModel(), store)
    # rmax = 1 over 2 intervals and 2 active objects -> 4
    assert cost.storage == pytest.approx(4.0)
    assert cost.creation == pytest.approx(2.0)  # both reach rmax at some interval


def test_rc_per_object_cost():
    reads = np.zeros((3, 2, 2))
    reads[1, :, 0] = 1
    reads[2, 1, 1] = 1
    problem, inst = far_star_instance(reads)
    store = np.zeros((2, 2, 2))
    store[0, :, 0] = 1
    store[1, 1, 1] = 1
    props = HeuristicProperties(replica_constraint=ReplicaConstraint.PER_OBJECT)
    cost = solution_cost(inst, props, CostModel(), store)
    assert cost.storage == pytest.approx(4.0)  # r_0=1, r_1=1 over 2 intervals
    assert cost.creation == pytest.approx(2.0)


def test_delta_write_cost():
    reads = np.zeros((3, 1, 1))
    reads[1, 0, 0] = 1
    writes = np.zeros((3, 1, 1))
    writes[2, 0, 0] = 4
    topo = star_topology(num_leaves=2, hub_latency_ms=200.0)
    problem = MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=reads, writes=writes),
        goal=QoSGoal(150.0, 0.9),
        costs=CostModel(delta=0.5),
    )
    inst = problem.instance(HeuristicProperties())
    store = np.zeros((2, 1, 1))
    store[0, 0, 0] = 1
    cost = solution_cost(inst, HeuristicProperties(), problem.costs, store)
    assert cost.writes == pytest.approx(2.0)  # 4 writes * 1 replica * 0.5


def test_gamma_penalty_cost():
    reads = np.zeros((3, 1, 1))
    reads[1, 0, 0] = 2
    problem, inst = far_star_instance(reads, tlat=150.0)
    costs = CostModel(gamma=0.1)
    cost = solution_cost(
        inst, HeuristicProperties(), costs, np.zeros((2, 1, 1)), goal=problem.goal
    )
    # 2 uncovered reads * (200 - 150) * 0.1
    assert cost.penalty == pytest.approx(10.0)


def test_opening_cost_counted_when_requested():
    reads = np.zeros((3, 1, 1))
    reads[1, 0, 0] = 1
    problem, inst = far_star_instance(reads)
    store = np.zeros((2, 1, 1))
    store[0, 0, 0] = 1
    costs = CostModel(zeta=100.0)
    cost = solution_cost(
        inst, HeuristicProperties(), costs, store, count_opening=True
    )
    assert cost.opening == pytest.approx(100.0)


def test_average_latency_routing_picks_best_holder():
    reads = np.zeros((3, 1, 1))
    reads[1, 0, 0] = 2
    topo = star_topology(num_leaves=2, hub_latency_ms=200.0)
    problem = MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=reads),
        goal=AverageLatencyGoal(tavg_ms=100.0),
    )
    inst = problem.instance(HeuristicProperties())
    no_store = average_latency_by_scope(inst, problem.goal, np.zeros((2, 1, 1)))
    assert no_store[1] == pytest.approx(200.0)
    store = np.zeros((2, 1, 1))
    store[0, 0, 0] = 1
    local = average_latency_by_scope(inst, problem.goal, store)
    assert local[1] == pytest.approx(0.0)
    assert meets_goal(inst, problem.goal, store)


def test_cost_breakdown_str():
    from repro.core.evaluate import CostBreakdown

    text = str(CostBreakdown(storage=4.0, creation=2.0, penalty=1.0))
    assert "total=7.0" in text
    assert "penalty" in text
