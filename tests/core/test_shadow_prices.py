"""Tests for LP duals and QoS shadow prices."""

import numpy as np
import pytest

from repro.core.formulation import build_formulation
from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.topology.generators import star_topology
from repro.workload.demand import DemandMatrix


def tiny_problem(fraction):
    topo = star_topology(num_leaves=2, hub_latency_ms=200.0)
    reads = np.zeros((3, 2, 1))
    reads[1, :, 0] = 2
    reads[2, :, 0] = 2
    return MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=reads),
        goal=QoSGoal(tlat_ms=150.0, fraction=fraction),
    )


def test_duals_returned_by_scipy_backend():
    form = build_formulation(tiny_problem(0.5))
    solution = form.lp.solve().require_optimal()
    assert solution.duals is not None
    assert len(solution.duals) == form.lp.num_constraints


def test_simplex_backend_duals_match_scipy():
    # The revised simplex returns duals in scipy's sign convention, so
    # shadow prices agree across backends (historically the tableau
    # simplex returned none at all).
    form = build_formulation(tiny_problem(0.5))
    simplex = form.lp.solve(backend="simplex").require_optimal()
    scipy_sol = form.lp.solve(backend="scipy").require_optimal()
    assert simplex.duals is not None
    assert len(simplex.duals) == form.lp.num_constraints
    a = form.qos_shadow_prices(simplex)
    b = form.qos_shadow_prices(scipy_sol)
    assert set(a) == set(b)
    for key in a:
        assert a[key] == pytest.approx(b[key], abs=1e-6)


def test_shadow_prices_match_finite_differences():
    """The dual-based marginal cost must predict the bound's local slope."""
    eps = 0.02
    base = 0.5
    form = build_formulation(tiny_problem(base))
    solution = form.lp.solve().require_optimal()
    prices = form.qos_shadow_prices(solution)
    predicted = solution.objective + eps * sum(prices.values())

    bumped = build_formulation(tiny_problem(base + eps))
    bumped_solution = bumped.lp.solve().require_optimal()
    assert bumped_solution.objective == pytest.approx(predicted, rel=1e-6)


def test_shadow_prices_nonnegative_for_binding_requirements():
    form = build_formulation(tiny_problem(0.75))
    solution = form.lp.solve().require_optimal()
    prices = form.qos_shadow_prices(solution)
    assert prices  # both leaves have QoS rows
    assert all(v >= -1e-9 for v in prices.values())
    # The fractional LP is binding here: tightening costs something.
    assert sum(prices.values()) > 0


def test_shadow_prices_zero_when_goal_is_slack():
    # Origin within threshold: the goal is free, rows absent or slack.
    topo = star_topology(num_leaves=2, hub_latency_ms=100.0)
    reads = np.zeros((3, 2, 1))
    reads[1, :, 0] = 2
    problem = MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=reads),
        goal=QoSGoal(tlat_ms=150.0, fraction=0.9),
    )
    form = build_formulation(problem)
    solution = form.lp.solve().require_optimal()
    prices = form.qos_shadow_prices(solution)
    assert all(v == pytest.approx(0.0, abs=1e-9) for v in prices.values())
