"""Tests for the §6.1 heuristic-selection methodology."""

import dataclasses

import pytest

from repro.core.classes import get_class
from repro.core.selection import select_heuristic


def test_selection_ranks_feasible_classes(group_problem):
    report = select_heuristic(group_problem, do_rounding=False)
    assert report.recommended is not None
    ranking = report.ranking()
    bounds = [report.bound(name) for name in ranking]
    assert bounds == sorted(bounds)
    assert report.recommended == ranking[0]


def test_group_prefers_replica_constrained(group_problem):
    """The paper's GROUP conclusion: RC ~ general, SC/caching much higher."""
    report = select_heuristic(group_problem, do_rounding=False)
    rc = report.bound("replica-constrained")
    sc = report.bound("storage-constrained")
    general = report.general.lp_cost
    assert rc is not None and sc is not None
    assert rc <= sc
    assert rc <= 2.0 * general  # close to the general bound


def test_infeasible_classes_listed(web_problem):
    goal = dataclasses.replace(web_problem.goal, fraction=0.99999)
    p = dataclasses.replace(web_problem, goal=goal)
    report = select_heuristic(p, do_rounding=False)
    assert "caching" in report.infeasible
    assert report.bound("caching") is None


def test_custom_class_list(web_problem):
    report = select_heuristic(
        web_problem,
        classes=["storage-constrained", get_class("replica-constrained")],
        do_rounding=False,
    )
    assert set(report.results) == {"storage-constrained", "replica-constrained"}


def test_comparable_alternatives_flagged(group_problem):
    report = select_heuristic(group_problem, comparable_factor=1e6, do_rounding=False)
    ranking = report.ranking()
    assert set(report.comparable) == set(ranking[1:])


def test_render_includes_key_lines(group_problem):
    report = select_heuristic(group_problem, do_rounding=False)
    text = report.render()
    assert "general lower bound" in text
    assert "Recommended class:" in text
    assert report.recommended in text


def test_render_when_nothing_feasible(web_problem):
    goal = dataclasses.replace(web_problem.goal, fraction=0.99999)
    p = dataclasses.replace(web_problem, goal=goal)
    report = select_heuristic(p, classes=["caching"], do_rounding=False)
    if report.recommended is None:
        assert "No candidate class" in report.render()


def test_near_optimal_flag(group_problem):
    strict = select_heuristic(group_problem, near_optimal_factor=1.0001, do_rounding=False)
    loose = select_heuristic(group_problem, near_optimal_factor=1e9, do_rounding=False)
    assert loose.near_optimal
    # strict flag depends on how tight the best class is; it must be a bool
    assert isinstance(strict.near_optimal, bool)
