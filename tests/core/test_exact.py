"""Tests for exact MC-PERF solving (branch and bound)."""

import numpy as np
import pytest

from repro.core.bounds import compute_lower_bound
from repro.core.costs import CostModel
from repro.core.exact import compute_exact_bound
from repro.core.goals import GoalScope, QoSGoal
from repro.core.problem import MCPerfProblem
from repro.core.properties import HeuristicProperties, StorageConstraint
from repro.topology.generators import as_level_topology, star_topology
from repro.workload.demand import DemandMatrix
from repro.workload.generators import web_workload
from tests.core.brute import brute_force_optimum


def tiny_problem(reads, fraction=0.6):
    topo = star_topology(num_leaves=2, hub_latency_ms=200.0)
    return MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=np.asarray(reads, dtype=float)),
        goal=QoSGoal(tlat_ms=150.0, fraction=fraction, scope=GoalScope.OVERALL),
        costs=CostModel.paper_defaults(),
    )


@pytest.mark.parametrize(
    "props",
    [
        HeuristicProperties(),
        HeuristicProperties(reactive=True),
        HeuristicProperties(storage_constraint=StorageConstraint.UNIFORM),
    ],
    ids=lambda p: p.describe(),
)
def test_exact_matches_brute_force(props):
    reads = np.zeros((3, 2, 2))
    reads[1, 0, 0] = 2
    reads[1, 1, 0] = 1
    reads[2, 1, 1] = 3
    problem = tiny_problem(reads)
    exact = compute_exact_bound(problem, props)
    brute, _ = brute_force_optimum(problem, props)
    if not exact.feasible:
        assert brute is None
        return
    assert exact.status == "optimal"
    # The exact branch-and-bound optimizes the LP objective; the brute force
    # uses the class accounting, which adds capacity-fill terms the LP
    # objective cannot see.  The LP-side optimum therefore lower-bounds the
    # accounting optimum, and for the unconstrained classes they coincide.
    assert exact.exact_cost <= brute + 1e-6
    if props.storage_constraint is StorageConstraint.NONE:
        assert exact.exact_cost == pytest.approx(brute, abs=1e-6)


def test_exact_infeasible_matches_lp():
    reads = np.zeros((3, 2, 1))
    reads[1, 0, 0] = 1
    problem = tiny_problem(reads, fraction=1.0)
    exact = compute_exact_bound(problem, HeuristicProperties(reactive=True))
    assert not exact.feasible
    lp = compute_lower_bound(problem, HeuristicProperties(reactive=True))
    assert not lp.feasible


def test_exact_sandwiched_between_lp_and_rounding():
    topo = as_level_topology(num_nodes=6, seed=4)
    trace = web_workload(num_nodes=6, num_objects=8, requests_scale=0.01, seed=2)
    demand = DemandMatrix.from_trace(trace, num_intervals=4)
    problem = MCPerfProblem(
        topology=topo,
        demand=demand,
        goal=QoSGoal(tlat_ms=150.0, fraction=0.7),
    )
    lp = compute_lower_bound(problem, do_rounding=True)
    exact = compute_exact_bound(problem, node_limit=3_000)
    assert lp.feasible and exact.feasible
    assert exact.lower_bound >= lp.lp_cost - 1e-6
    if exact.status == "optimal":
        assert lp.lp_cost <= exact.exact_cost + 1e-6
        assert exact.exact_cost <= lp.feasible_cost + 1e-6
        gap = exact.rounding_gap
        assert gap is None or gap >= -1e-9


def test_exact_store_is_integral_when_returned():
    reads = np.zeros((3, 2, 1))
    reads[1, :, 0] = 2
    problem = tiny_problem(reads, fraction=0.5)
    exact = compute_exact_bound(problem, seed_with_rounding=False)
    assert exact.feasible and exact.status == "optimal"
    assert exact.store is not None
    assert set(np.unique(exact.store)) <= {0.0, 1.0}


def test_node_limit_reports_bracket():
    topo = as_level_topology(num_nodes=6, seed=4)
    trace = web_workload(num_nodes=6, num_objects=10, requests_scale=0.02, seed=3)
    demand = DemandMatrix.from_trace(trace, num_intervals=4)
    problem = MCPerfProblem(
        topology=topo, demand=demand, goal=QoSGoal(tlat_ms=150.0, fraction=0.8)
    )
    exact = compute_exact_bound(problem, node_limit=3)
    assert exact.feasible
    assert exact.status in ("optimal", "node-limit")
    assert exact.lower_bound is not None
    if exact.exact_cost is not None:
        assert exact.lower_bound <= exact.exact_cost + 1e-6
