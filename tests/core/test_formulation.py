"""Tests for the MC-PERF formulation on hand-computable instances."""

import numpy as np
import pytest

from repro.core.bounds import compute_lower_bound
from repro.core.costs import CostModel
from repro.core.formulation import build_formulation, compute_allowed_create
from repro.core.goals import AverageLatencyGoal, GoalScope, QoSGoal
from repro.core.problem import MCPerfProblem
from repro.core.properties import (
    HeuristicProperties,
    Knowledge,
    ReplicaConstraint,
    Routing,
    StorageConstraint,
)
from repro.topology.generators import line_topology, star_topology
from repro.workload.demand import DemandMatrix


def far_star(num_leaves=3):
    """Star whose hub (origin) is 200 ms away: nothing is origin-covered at 150 ms."""
    return star_topology(num_leaves=num_leaves, hub_latency_ms=200.0)


def make_problem(topo, reads, tlat=150.0, fraction=1.0, costs=None, **kwargs):
    demand = DemandMatrix(reads=np.asarray(reads, dtype=float))
    return MCPerfProblem(
        topology=topo,
        demand=demand,
        goal=QoSGoal(tlat_ms=tlat, fraction=fraction),
        costs=costs or CostModel.paper_defaults(),
        **kwargs,
    )


def test_origin_covered_demand_costs_nothing():
    topo = star_topology(num_leaves=2, hub_latency_ms=100.0)  # within 150ms
    reads = np.zeros((3, 2, 1))
    reads[1, :, 0] = 5
    reads[2, :, 0] = 5
    result = compute_lower_bound(make_problem(topo, reads))
    assert result.feasible
    assert result.lp_cost == pytest.approx(0.0, abs=1e-9)
    assert result.feasible_cost == pytest.approx(0.0, abs=1e-9)


def test_full_qos_forces_replica_everywhere():
    # 3 isolated leaves (leaf-leaf 400ms), each reading in both intervals:
    # each must hold the object for 2 intervals -> 3 * (2a + 1b) = 9.
    topo = far_star(3)
    reads = np.zeros((4, 2, 1))
    reads[1:, :, 0] = 1
    result = compute_lower_bound(make_problem(topo, reads, fraction=1.0))
    assert result.lp_cost == pytest.approx(9.0, abs=1e-6)
    assert result.feasible_cost == pytest.approx(9.0, abs=1e-6)


def test_fractional_lp_below_integral_at_half_qos():
    # At 50% QoS the LP can split storage across intervals (cost 1.5/leaf);
    # any integral solution pays a full store+create (2/leaf).
    topo = far_star(3)
    reads = np.zeros((4, 2, 1))
    reads[1:, :, 0] = 1
    result = compute_lower_bound(make_problem(topo, reads, fraction=0.5))
    assert result.lp_cost == pytest.approx(4.5, abs=1e-6)
    assert result.feasible_cost == pytest.approx(6.0, abs=1e-6)
    assert result.rounding.feasible


def test_reactive_cannot_cover_first_interval():
    topo = far_star(1)
    reads = np.zeros((2, 2, 1))
    reads[1, :, 0] = 1  # reads in both intervals
    proactive = compute_lower_bound(make_problem(topo, reads, fraction=1.0))
    assert proactive.feasible
    assert proactive.lp_cost == pytest.approx(3.0, abs=1e-6)
    reactive = compute_lower_bound(
        make_problem(topo, reads, fraction=1.0), HeuristicProperties(reactive=True)
    )
    assert not reactive.feasible
    # At 50% the reactive class covers the second interval only: a + b = 2.
    reactive_half = compute_lower_bound(
        make_problem(topo, reads, fraction=0.5), HeuristicProperties(reactive=True)
    )
    assert reactive_half.feasible
    assert reactive_half.lp_cost == pytest.approx(2.0, abs=1e-6)


def test_history_window_limits_placement():
    # Accesses at intervals 0 and 3.  With a 1-interval reactive history the
    # replica must be created at interval 1 and *held* through interval 3
    # (3 store-intervals + 1 create = 4); with unbounded history it can be
    # created at interval 3 directly (1 + 1 = 2).
    topo = far_star(1)
    reads = np.zeros((2, 4, 1))
    reads[1, 0, 0] = 1
    reads[1, 3, 0] = 1
    problem = make_problem(topo, reads, fraction=0.5)
    short = compute_lower_bound(
        problem, HeuristicProperties(reactive=True, history_window=1)
    )
    long = compute_lower_bound(problem, HeuristicProperties(reactive=True))
    assert short.lp_cost == pytest.approx(4.0, abs=1e-6)
    assert long.lp_cost == pytest.approx(2.0, abs=1e-6)


def test_local_knowledge_blocks_remote_activity():
    # Leaf 1 reads in interval 0, leaf 2 reads in interval 1.  With global
    # knowledge a reactive heuristic may place on leaf 2 at interval 1
    # (leaf 1's access is in its sphere); with local knowledge it may not.
    topo = far_star(2)
    reads = np.zeros((3, 2, 1))
    reads[1, 0, 0] = 1
    reads[2, 1, 0] = 1
    # Overall scope: covering one of the two reads suffices (the per-user
    # scope would be unsatisfiable for leaf 1, whose only read is the first).
    problem = MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=reads),
        goal=QoSGoal(tlat_ms=150.0, fraction=0.5, scope=GoalScope.OVERALL),
    )
    global_know = compute_lower_bound(
        problem, HeuristicProperties(reactive=True, knowledge=Knowledge.GLOBAL)
    )
    local_know = compute_lower_bound(
        problem,
        HeuristicProperties(
            reactive=True, knowledge=Knowledge.LOCAL, routing=Routing.LOCAL
        ),
    )
    assert global_know.feasible
    assert global_know.lp_cost == pytest.approx(2.0, abs=1e-6)
    assert not local_know.feasible  # neither leaf ever re-reads its own object


def test_local_routing_prevents_remote_serving():
    # Chain 0-1-2 with 100ms hops, Tlat 150: node 2 can be served by a
    # replica on node 1 under global routing, but not under local routing.
    topo = line_topology(num_nodes=3, hop_latency_ms=100.0)
    reads = np.zeros((3, 1, 1))
    reads[1, 0, 0] = 1
    reads[2, 0, 0] = 1
    problem = make_problem(topo, reads, fraction=1.0)
    # node 1 is origin-covered (100ms); node 2 is not (200ms).
    global_route = compute_lower_bound(problem, HeuristicProperties())
    local_route = compute_lower_bound(
        problem, HeuristicProperties(routing=Routing.LOCAL)
    )
    # global: one replica at node 1 or 2 covers node 2 -> cost 2.
    assert global_route.lp_cost == pytest.approx(2.0, abs=1e-6)
    # local: the replica must sit on node 2 itself -> still cost 2.
    assert local_route.lp_cost == pytest.approx(2.0, abs=1e-6)
    # but serving node 1 AND 2 from one replica is only possible globally:
    reads2 = reads.copy()
    problem2 = make_problem(topo, reads2, tlat=100.0, fraction=1.0)
    g = compute_lower_bound(problem2, HeuristicProperties())
    l = compute_lower_bound(problem2, HeuristicProperties(routing=Routing.LOCAL))
    # Tlat=100: node1 origin-covered; node2 served by replica at 2 (or 1 at
    # exactly 100ms) either way; the local class must place at node 2.
    assert g.lp_cost == pytest.approx(2.0, abs=1e-6)
    assert l.lp_cost == pytest.approx(2.0, abs=1e-6)


def test_storage_constraint_uniform_charges_capacity():
    # Leaf 1 needs a replica for 2 intervals; leaf 2 idles.  SC(uniform)
    # charges capacity 1 on BOTH leaves for both intervals (4a) + 1 create.
    topo = far_star(2)
    reads = np.zeros((3, 2, 1))
    reads[1, :, 0] = 1
    problem = make_problem(topo, reads, fraction=1.0)
    general = compute_lower_bound(problem)
    sc = compute_lower_bound(
        problem, HeuristicProperties(storage_constraint=StorageConstraint.UNIFORM)
    )
    assert general.lp_cost == pytest.approx(3.0, abs=1e-6)
    assert sc.lp_cost == pytest.approx(5.0, abs=1e-6)
    # Rounded feasible cost adds the idle leaf's capacity-fill creation.
    assert sc.feasible_cost == pytest.approx(6.0, abs=1e-6)


def test_storage_constraint_per_node_matches_general_here():
    topo = far_star(2)
    reads = np.zeros((3, 2, 1))
    reads[1, :, 0] = 1
    problem = make_problem(topo, reads, fraction=1.0)
    sc_node = compute_lower_bound(
        problem, HeuristicProperties(storage_constraint=StorageConstraint.PER_NODE)
    )
    assert sc_node.lp_cost == pytest.approx(3.0, abs=1e-6)


def test_replica_constraint_uniform_pads_unpopular_objects():
    # Object 0 needs 2 store-intervals at leaf 1; object 1 needs 1 at leaf 2.
    # RC(uniform) charges rep=1 for both objects over both intervals (4a)
    # plus both creations -> 6; the general bound pays 5.
    topo = far_star(2)
    reads = np.zeros((3, 2, 2))
    reads[1, :, 0] = 1
    reads[2, 1, 1] = 1
    problem = make_problem(topo, reads, fraction=1.0)
    general = compute_lower_bound(problem)
    rc = compute_lower_bound(
        problem, HeuristicProperties(replica_constraint=ReplicaConstraint.UNIFORM)
    )
    assert general.lp_cost == pytest.approx(5.0, abs=1e-6)
    assert rc.lp_cost == pytest.approx(6.0, abs=1e-6)


def test_replica_constraint_per_object_matches_general_here():
    topo = far_star(2)
    reads = np.zeros((3, 2, 2))
    reads[1, :, 0] = 1
    reads[2, 1, 1] = 1
    problem = make_problem(topo, reads, fraction=1.0)
    rc_obj = compute_lower_bound(
        problem, HeuristicProperties(replica_constraint=ReplicaConstraint.PER_OBJECT)
    )
    # Per-object factors: obj0 -> 1 replica for 2 intervals, obj1 -> 1 replica
    # charged for both intervals (factor is time-invariant): 2a + 2a + 2b = 6.
    assert rc_obj.lp_cost == pytest.approx(6.0, abs=1e-6)


def test_gamma_penalty_tradeoff():
    # One leaf, reads in 2 intervals, QoS goal 50%: one read must be covered;
    # the other is covered iff cheaper than the miss penalty.
    topo = far_star(1)
    reads = np.zeros((2, 2, 1))
    reads[1, :, 0] = 1
    pen = 50.0  # (200 - 150) ms excess
    expensive_miss = make_problem(
        topo, reads, fraction=0.5, costs=CostModel(gamma=0.1)
    )  # penalty 5/read > extra store cost 1
    cheap_miss = make_problem(
        topo, reads, fraction=0.5, costs=CostModel(gamma=0.001)
    )  # penalty 0.05/read < extra cost
    r1 = compute_lower_bound(expensive_miss, do_rounding=False)
    r2 = compute_lower_bound(cheap_miss, do_rounding=False)
    assert r1.lp_cost == pytest.approx(3.0, abs=1e-6)  # store both intervals
    # Cheap misses: the LP splits storage fractionally (0.5 per interval,
    # cost 1.5) and pays the penalty on the uncovered half of each read.
    assert r2.lp_cost == pytest.approx(1.5 + 0.001 * pen, abs=1e-6)
    del pen


def test_delta_write_cost_charged_per_replica_interval():
    topo = far_star(1)
    reads = np.zeros((2, 2, 1))
    reads[1, 0, 0] = 1  # one read in interval 0
    writes = np.zeros((2, 2, 1))
    writes[0, 0, 0] = 3  # 3 writes in interval 0 (from the origin site)
    demand = DemandMatrix(reads=reads, writes=writes)
    problem = MCPerfProblem(
        topology=topo,
        demand=demand,
        goal=QoSGoal(tlat_ms=150.0, fraction=1.0),
        costs=CostModel(delta=1.0),
    )
    result = compute_lower_bound(problem, do_rounding=False)
    # store interval 0 (a=1) + create (b=1) + 3 update messages = 5.
    assert result.lp_cost == pytest.approx(5.0, abs=1e-6)


def test_structural_infeasibility_reports_scope():
    topo = far_star(1)
    reads = np.zeros((2, 2, 1))
    reads[1, 0, 0] = 1
    problem = make_problem(topo, reads, fraction=1.0)
    result = compute_lower_bound(problem, HeuristicProperties(reactive=True))
    assert not result.feasible
    assert result.status == "structurally-infeasible"
    assert "coverable" in result.reason


def test_open_variables_charge_zeta():
    topo = far_star(2)
    reads = np.zeros((3, 2, 1))
    reads[1, :, 0] = 1
    reads[2, :, 0] = 1
    costs = CostModel(zeta=100.0)
    problem = make_problem(topo, reads, fraction=1.0, costs=costs)
    form = build_formulation(problem, None, with_open_vars=True)
    sol = form.lp.solve().require_optimal()
    # both leaves must open: 2 * 100 + 2 * (2a + b) = 206.
    assert form.bound_cost(sol) == pytest.approx(206.0, abs=1e-6)
    opens = form.open_values(sol.values)
    assert opens == pytest.approx([1.0, 1.0], abs=1e-6)


def test_average_latency_goal_thresholds():
    # Chain 0-1-2, origin 0, node 2 reads once: origin latency is 200ms.
    topo = line_topology(num_nodes=3, hop_latency_ms=100.0)
    reads = np.zeros((3, 1, 1))
    reads[2, 0, 0] = 1
    demand = DemandMatrix(reads=reads)

    def bound(tavg):
        problem = MCPerfProblem(
            topology=topo, demand=demand, goal=AverageLatencyGoal(tavg_ms=tavg)
        )
        return compute_lower_bound(problem, do_rounding=False)

    loose = bound(250.0)
    assert loose.lp_cost == pytest.approx(0.0, abs=1e-6)  # origin suffices
    mid = bound(100.0)
    # Fractional routing: half to a zero-latency local replica (store 0.5 at
    # node 2) and half to the 200 ms origin averages exactly 100 ms.
    assert mid.lp_cost == pytest.approx(1.0, abs=1e-6)
    tight = bound(10.0)
    # Only 5% of traffic may hit the origin: store 0.95 locally.
    assert tight.lp_cost == pytest.approx(1.9, abs=1e-6)


def test_average_latency_fractional_mixing():
    # Two reads; Tavg exactly between replica latency and origin latency lets
    # the LP cover half the traffic fractionally.
    topo = line_topology(num_nodes=3, hop_latency_ms=100.0)
    reads = np.zeros((3, 1, 1))
    reads[2, 0, 0] = 2
    demand = DemandMatrix(reads=reads)
    problem = MCPerfProblem(
        topology=topo, demand=demand, goal=AverageLatencyGoal(tavg_ms=150.0)
    )
    result = compute_lower_bound(problem, do_rounding=False)
    # Tavg 150 with a 0 ms local replica and a 200 ms origin: a quarter of
    # the traffic on the replica suffices (store 0.25, cost 0.5).
    assert result.lp_cost == pytest.approx(0.5, abs=1e-6)


def test_allowed_create_windows():
    topo = far_star(1)
    reads = np.zeros((2, 4, 1))
    reads[1, 1, 0] = 1  # accessed in interval 1 only
    problem = make_problem(topo, reads, fraction=0.5)
    inst = problem.instance(HeuristicProperties(reactive=True, history_window=1))
    allowed = compute_allowed_create(
        inst, HeuristicProperties(reactive=True, history_window=1)
    )
    assert allowed[0, :, 0].tolist() == [False, False, True, False]
    proactive = compute_allowed_create(inst, HeuristicProperties(history_window=1))
    assert proactive[0, :, 0].tolist() == [False, True, False, False]
    unbounded = compute_allowed_create(inst, HeuristicProperties(reactive=True))
    assert unbounded[0, :, 0].tolist() == [False, False, True, True]
    assert compute_allowed_create(inst, HeuristicProperties()) is None


def test_initial_placement_relaxes_constraint_4():
    topo = far_star(1)
    reads = np.zeros((2, 2, 1))
    reads[1, :, 0] = 1
    init = np.zeros((2, 1))
    init[1, 0] = 1  # leaf already holds the object
    problem = make_problem(topo, reads, fraction=1.0, initial_placement=init)
    result = compute_lower_bound(problem)
    # no creation needed: 2 store-intervals only.
    assert result.lp_cost == pytest.approx(2.0, abs=1e-6)


def test_initial_placement_enables_reactive_interval_zero():
    topo = far_star(1)
    reads = np.zeros((2, 2, 1))
    reads[1, :, 0] = 1
    init = np.zeros((2, 1))
    init[1, 0] = 1
    problem = make_problem(topo, reads, fraction=1.0, initial_placement=init)
    result = compute_lower_bound(problem, HeuristicProperties(reactive=True))
    assert result.feasible
    assert result.lp_cost == pytest.approx(2.0, abs=1e-6)


def test_warmup_excludes_first_interval_from_goal():
    topo = far_star(1)
    reads = np.zeros((2, 2, 1))
    reads[1, :, 0] = 1
    problem = make_problem(topo, reads, fraction=1.0, warmup_intervals=1)
    result = compute_lower_bound(problem, HeuristicProperties(reactive=True))
    assert result.feasible
    # cover only the post-warmup read: create at interval 1 after the
    # interval-0 access -> a + b = 2.
    assert result.lp_cost == pytest.approx(2.0, abs=1e-6)


def test_overall_scope_pools_demand():
    # Leaf 1 has 9 reads, leaf 2 has 1.  At 90% overall the cheap solution
    # covers only leaf 1; per-user 90% would also require covering leaf 2.
    topo = far_star(2)
    reads = np.zeros((3, 1, 1))
    reads[1, 0, 0] = 9
    reads[2, 0, 0] = 1
    overall = MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=reads),
        goal=QoSGoal(tlat_ms=150.0, fraction=0.9, scope=GoalScope.OVERALL),
    )
    per_user = make_problem(topo, reads, fraction=0.9)
    r_overall = compute_lower_bound(overall, do_rounding=False)
    r_user = compute_lower_bound(per_user, do_rounding=False)
    assert r_overall.lp_cost == pytest.approx(2.0, abs=1e-6)
    # Per-user: each leaf stores fractionally at 0.9 -> 2 * 0.9 * (a + b).
    assert r_user.lp_cost == pytest.approx(3.6, abs=1e-6)


def test_per_object_scope():
    topo = far_star(1)
    reads = np.zeros((2, 1, 2))
    reads[1, 0, 0] = 10
    reads[1, 0, 1] = 10
    problem = MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=reads),
        goal=QoSGoal(tlat_ms=150.0, fraction=1.0, scope=GoalScope.PER_OBJECT),
    )
    result = compute_lower_bound(problem, do_rounding=False)
    assert result.lp_cost == pytest.approx(4.0, abs=1e-6)  # both objects stored


def test_formulation_accessors_roundtrip():
    topo = far_star(1)
    reads = np.zeros((2, 2, 1))
    reads[1, :, 0] = 1
    problem = make_problem(topo, reads, fraction=1.0)
    form = build_formulation(problem)
    sol = form.lp.solve().require_optimal()
    store = form.store_array(sol.values)
    create = form.create_array(sol.values)
    covered = form.covered_array(sol.values)
    assert store.shape == (1, 2, 1)
    assert store[0, :, 0] == pytest.approx([1.0, 1.0])
    assert create[0, :, 0] == pytest.approx([1.0, 0.0])
    assert covered[1, :, 0] == pytest.approx([1.0, 1.0])  # demander 1 = the leaf
