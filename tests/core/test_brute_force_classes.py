"""Exhaustive cross-validation of the LP + rounding pipeline.

For tiny instances across the whole heuristic-property space, the brute
force enumerator (which reuses only the independently-tested evaluators)
must sandwich the pipeline:

    LP bound  <=  brute-force IP optimum  <=  rounded feasible cost

and the two must agree on *feasibility*: the LP (a relaxation) can never be
infeasible while a legal integral placement exists, and the paper's whole
method rests on the converse — "LP infeasible" meaning "this class cannot
meet the goal".
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import compute_lower_bound
from repro.core.costs import CostModel
from repro.core.goals import GoalScope, QoSGoal
from repro.core.problem import MCPerfProblem
from repro.core.properties import (
    HeuristicProperties,
    Knowledge,
    ReplicaConstraint,
    Routing,
    StorageConstraint,
)
from repro.topology.generators import line_topology, star_topology
from repro.workload.demand import DemandMatrix
from tests.core.brute import brute_force_optimum

PROPERTY_SPACE = [
    HeuristicProperties(),
    HeuristicProperties(reactive=True),
    HeuristicProperties(history_window=1),
    HeuristicProperties(history_window=1, reactive=True),
    HeuristicProperties(routing=Routing.LOCAL, knowledge=Knowledge.LOCAL),
    HeuristicProperties(
        routing=Routing.LOCAL, knowledge=Knowledge.LOCAL, reactive=True
    ),
    HeuristicProperties(storage_constraint=StorageConstraint.UNIFORM),
    HeuristicProperties(storage_constraint=StorageConstraint.PER_NODE),
    HeuristicProperties(replica_constraint=ReplicaConstraint.UNIFORM),
    HeuristicProperties(replica_constraint=ReplicaConstraint.PER_OBJECT),
    HeuristicProperties(
        storage_constraint=StorageConstraint.UNIFORM,
        routing=Routing.LOCAL,
        knowledge=Knowledge.LOCAL,
        history_window=1,
        reactive=True,
    ),  # caching
]


def _problem(reads, fraction, topo):
    return MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=np.asarray(reads, dtype=float)),
        goal=QoSGoal(tlat_ms=150.0, fraction=fraction, scope=GoalScope.OVERALL),
        costs=CostModel.paper_defaults(),
    )


@pytest.mark.parametrize("props", PROPERTY_SPACE, ids=lambda p: p.describe())
def test_sandwich_on_fixed_instance(props):
    topo = star_topology(num_leaves=2, hub_latency_ms=200.0)
    reads = np.zeros((3, 2, 2))
    reads[1, 0, 0] = 2
    reads[1, 1, 0] = 1
    reads[2, 1, 1] = 3
    problem = _problem(reads, 0.5, topo)
    result = compute_lower_bound(problem, props, do_rounding=True)
    brute, _ = brute_force_optimum(problem, props)
    if result.feasible:
        assert brute is not None, f"{props.describe()}: LP feasible, IP not"
        assert result.lp_cost <= brute + 1e-6
        assert result.feasible_cost >= brute - 1e-6
    else:
        assert brute is None, f"{props.describe()}: LP infeasible but IP exists"


@pytest.mark.parametrize("props", PROPERTY_SPACE, ids=lambda p: p.describe())
def test_sandwich_on_chain_topology(props):
    """The chain makes remote serving matter (neighbour coverage)."""
    topo = line_topology(num_nodes=3, hop_latency_ms=100.0)
    reads = np.zeros((3, 2, 2))
    reads[1, 0, 0] = 1
    reads[2, 0, 0] = 2
    reads[2, 1, 1] = 2
    problem = _problem(reads, 0.6, topo)
    result = compute_lower_bound(problem, props, do_rounding=True)
    brute, _ = brute_force_optimum(problem, props)
    if result.feasible:
        assert brute is not None
        assert result.lp_cost <= brute + 1e-6
        assert result.feasible_cost >= brute - 1e-6
    else:
        assert brute is None


@st.composite
def random_cases(draw):
    reads = np.zeros((3, 2, 2))
    for leaf in (1, 2):
        for i in range(2):
            for k in range(2):
                reads[leaf, i, k] = draw(st.integers(min_value=0, max_value=2))
    fraction = draw(st.sampled_from([0.4, 0.7, 1.0]))
    props = draw(st.sampled_from(PROPERTY_SPACE))
    chain = draw(st.booleans())
    return reads, fraction, props, chain


@settings(max_examples=60, deadline=None)
@given(random_cases())
def test_sandwich_random(case):
    reads, fraction, props, chain = case
    if reads.sum() == 0:
        return
    topo = (
        line_topology(num_nodes=3, hop_latency_ms=100.0)
        if chain
        else star_topology(num_leaves=2, hub_latency_ms=200.0)
    )
    problem = _problem(reads, fraction, topo)
    result = compute_lower_bound(problem, props, do_rounding=True)
    brute, _ = brute_force_optimum(problem, props)
    if result.feasible:
        assert brute is not None
        assert result.lp_cost <= brute + 1e-6
        assert result.feasible_cost >= brute - 1e-6
        assert result.rounding is not None and result.rounding.feasible
    else:
        assert brute is None
