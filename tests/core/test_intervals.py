"""Tests for the evaluation-interval theory (Theorems 2 and 3, Lemma 1)."""

import math

import numpy as np
import pytest

from repro.core.intervals import (
    bound_applies,
    interaction_matrix,
    interval_for_period,
    per_access_interval,
    plan_intervals,
)
from tests.conftest import make_trace


def test_theorem2_bound_applies():
    assert bound_applies(1.0, 1.0)  # equal intervals
    assert bound_applies(1.0, 2.0)  # exactly twice
    assert bound_applies(1.0, 5.0)
    assert not bound_applies(1.0, 1.5)  # in the forbidden gap (delta, 2 delta)
    assert not bound_applies(2.0, 3.0)


def test_bound_applies_validates():
    with pytest.raises(ValueError):
        bound_applies(0.0, 1.0)
    with pytest.raises(ValueError):
        bound_applies(1.0, -1.0)


def test_interval_for_period_halves():
    assert interval_for_period(3600.0) == 1800.0
    with pytest.raises(ValueError):
        interval_for_period(0.0)


def test_interaction_matrix_or():
    dist = np.array([[1, 0], [0, 1]])
    know = np.array([[0, 1], [0, 0]])
    a = interaction_matrix(dist, know)
    assert a.tolist() == [[1, 1], [0, 1]]


def test_interaction_matrix_shape_checked():
    with pytest.raises(ValueError):
        interaction_matrix(np.eye(2), np.eye(3))


def test_theorem3_half_m1_when_gap_in_range():
    # gaps: 3 (m1) and 5 (m2): 2*m1=6 >= m2 -> delta = m1/2.
    t = make_trace([(0, 0, 0), (3, 0, 0), (8, 0, 0)])
    assert per_access_interval(t) == pytest.approx(1.5)


def test_theorem3_full_m1_when_no_gap_in_range():
    # gaps: 3 and 10: 2*m1=6 < m2 -> delta = m1.
    t = make_trace([(0, 0, 0), (3, 0, 0), (13, 0, 0)])
    assert per_access_interval(t) == pytest.approx(3.0)


def test_theorem3_single_access():
    t = make_trace([(5, 0, 0)], duration_s=100.0)
    assert per_access_interval(t) == pytest.approx(100.0)


def test_theorem3_respects_interaction():
    # Two isolated spheres: node 0 gaps of 10; node 1 gaps of 1.
    t = make_trace(
        [(0, 0, 0), (10, 0, 0), (0.5, 1, 0), (1.5, 1, 0)], num_nodes=2
    )
    isolated = np.eye(2)
    delta = per_access_interval(t, isolated)
    # m1=1 (node 1's sphere), m2=9.5 or 10 -> 2*m1 < m2 -> delta = m1.
    assert delta == pytest.approx(1.0)


def test_plan_intervals_counts():
    plan = plan_intervals(86_400.0, 3600.0)
    assert plan.num_intervals == 24
    assert plan.delta_s == 3600.0
    assert plan.solves_per_day == pytest.approx(24.0)


def test_plan_intervals_cap_coarsens():
    plan = plan_intervals(86_400.0, 60.0, cap=24)
    assert plan.num_intervals == 24
    assert plan.delta_s == pytest.approx(3600.0)


def test_plan_intervals_validates():
    with pytest.raises(ValueError):
        plan_intervals(0.0, 10.0)
    with pytest.raises(ValueError):
        plan_intervals(10.0, 0.0)


def test_theorem2_finer_interval_gives_lower_bound(web_problem):
    """Solving at Delta lower-bounds solving at 2*Delta (Theorem 2/§4.3).

    With storage priced per unit *time* (alpha doubled when the interval
    doubles), any coarse placement maps to an equal-cost fine placement, so
    the fine bound can only be lower.
    """
    import dataclasses

    from repro.core.bounds import compute_lower_bound
    from repro.core.costs import CostModel

    fine = compute_lower_bound(web_problem, do_rounding=False)
    coarse_demand = web_problem.demand.coarsen(2)
    coarse_costs = CostModel(alpha=2.0 * web_problem.costs.alpha, beta=web_problem.costs.beta)
    coarse = compute_lower_bound(
        dataclasses.replace(web_problem, demand=coarse_demand, costs=coarse_costs),
        do_rounding=False,
    )
    assert coarse.feasible and fine.feasible
    assert fine.lp_cost <= coarse.lp_cost + 1e-6
