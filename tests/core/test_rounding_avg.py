"""Tests for the average-latency feasible-solution constructor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import compute_lower_bound
from repro.core.evaluate import average_latency_by_scope, meets_goal
from repro.core.formulation import build_formulation
from repro.core.goals import AverageLatencyGoal, GoalScope
from repro.core.problem import MCPerfProblem
from repro.core.properties import HeuristicProperties, StorageConstraint
from repro.core.rounding_avg import round_average_latency
from repro.topology.generators import line_topology, star_topology
from repro.workload.demand import DemandMatrix


def make_problem(reads, tavg, topo=None, **kwargs):
    topo = topo or star_topology(num_leaves=2, hub_latency_ms=200.0)
    return MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=np.asarray(reads, dtype=float)),
        goal=AverageLatencyGoal(tavg_ms=tavg),
        **kwargs,
    )


def test_rejects_qos_goal(web_problem):
    form = build_formulation(web_problem)
    solution = form.lp.solve().require_optimal()
    with pytest.raises(TypeError):
        round_average_latency(form, solution)


def test_trivial_goal_needs_no_replicas():
    reads = np.zeros((3, 2, 1))
    reads[1, :, 0] = 2
    problem = make_problem(reads, tavg=250.0)
    result = compute_lower_bound(problem, do_rounding=True)
    assert result.feasible
    assert result.feasible_cost == pytest.approx(0.0)


def test_tight_goal_forces_local_replicas():
    reads = np.zeros((3, 2, 1))
    reads[1, :, 0] = 2
    problem = make_problem(reads, tavg=50.0)
    result = compute_lower_bound(problem, do_rounding=True)
    assert result.feasible
    assert result.rounding is not None and result.rounding.feasible
    # integral: store at leaf 1 both intervals = 2a + 1b = 3.
    assert result.feasible_cost == pytest.approx(3.0)
    assert result.feasible_cost >= result.lp_cost - 1e-6


def test_intermediate_goal_rounds_fractional_lp():
    # LP mixes origin and replica fractionally; integral must commit.
    reads = np.zeros((3, 1, 1))
    reads[1, 0, 0] = 2
    problem = make_problem(reads, tavg=100.0)
    result = compute_lower_bound(problem, do_rounding=True)
    assert result.feasible
    assert result.lp_cost == pytest.approx(1.0)  # store 0.5 locally
    assert result.feasible_cost == pytest.approx(2.0)  # integral replica
    inst = problem.instance(HeuristicProperties())
    assert meets_goal(inst, problem.goal, result.rounding.store)


def test_rounding_respects_reactive_class():
    topo = line_topology(num_nodes=3, hop_latency_ms=100.0)
    reads = np.zeros((3, 3, 1))
    reads[2, 1, 0] = 1
    reads[2, 2, 0] = 1
    problem = make_problem(reads, tavg=120.0, topo=topo)
    props = HeuristicProperties(reactive=True)
    result = compute_lower_bound(problem, props, do_rounding=True)
    if result.feasible:
        store = result.rounding.store
        form = build_formulation(problem, props)
        from repro.audit.certificates import verify_placement

        report = verify_placement(form, store)
        assert report.creation_legal


def test_trim_removes_unneeded_replicas():
    # A loose goal the LP may satisfy with tiny fractions everywhere: after
    # add/trim, the integral solution must not keep pointless replicas.
    reads = np.zeros((3, 2, 2))
    reads[1, :, :] = 3
    reads[2, :, :] = 3
    problem = make_problem(reads, tavg=190.0)
    result = compute_lower_bound(problem, do_rounding=True)
    assert result.feasible
    # Goal met with some replicas; cost finite and every replica earns keep:
    # removing any single one breaks the goal (checked by construction in
    # the trim phase; spot-check here).
    store = result.rounding.store
    inst = problem.instance(HeuristicProperties())
    for ns, i, k in zip(*np.nonzero(store > 0.5)):
        store[ns, i, k] = 0.0
        assert not meets_goal(inst, problem.goal, store)
        store[ns, i, k] = 1.0


@settings(max_examples=25, deadline=None)
@given(
    demand=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=2),  # leaf
            st.integers(min_value=0, max_value=1),  # interval
            st.integers(min_value=1, max_value=4),  # count
        ),
        min_size=1,
        max_size=6,
    ),
    tavg=st.sampled_from([60.0, 120.0, 180.0]),
    sc=st.booleans(),
)
def test_avg_rounding_soundness_random(demand, tavg, sc):
    reads = np.zeros((3, 2, 1))
    for leaf, interval, count in demand:
        reads[leaf, interval, 0] += count
    props = HeuristicProperties(
        storage_constraint=StorageConstraint.UNIFORM if sc else StorageConstraint.NONE
    )
    problem = make_problem(reads, tavg=tavg)
    result = compute_lower_bound(problem, props, do_rounding=True)
    if not result.feasible:
        return
    rounding = result.rounding
    assert rounding.feasible
    store = rounding.store
    assert np.all((store < 1e-9) | (store > 1 - 1e-9))
    assert rounding.total_cost >= result.lp_cost - 1e-6
