"""Tests for the §6.2 infrastructure-deployment methodology."""

import numpy as np
import pytest

from repro.core.costs import CostModel
from repro.core.deployment import assign_users, plan_deployment
from repro.core.goals import QoSGoal
from repro.topology.generators import as_level_topology, line_topology
from repro.workload.demand import DemandMatrix
from repro.workload.generators import web_workload


@pytest.fixture(scope="module")
def deploy_setting():
    topo = as_level_topology(num_nodes=10, seed=5)
    trace = web_workload(num_nodes=10, num_objects=25, requests_scale=0.05, seed=2)
    demand = DemandMatrix.from_trace(trace, num_intervals=8)
    return topo, demand


def test_assign_users_prefers_own_site():
    topo = line_topology(num_nodes=4, hop_latency_ms=100.0)
    assignment = assign_users(topo, [1, 3])
    assert assignment[1] == 1
    assert assignment[3] == 3
    assert assignment[2] in (1, 3)
    assert assignment[0] == 0  # origin is always a candidate


def test_assign_users_without_origin():
    topo = line_topology(num_nodes=4, hop_latency_ms=100.0)
    assignment = assign_users(topo, [2], include_origin=False)
    assert set(assignment.tolist()) == {2}


def test_assign_users_requires_candidates():
    topo = line_topology(num_nodes=3, hop_latency_ms=100.0)
    with pytest.raises(ValueError):
        assign_users(topo, [], include_origin=False)


def test_plan_deployment_end_to_end(deploy_setting):
    topo, demand = deploy_setting
    plan = plan_deployment(
        topo,
        demand,
        QoSGoal(tlat_ms=150.0, fraction=0.95),
        costs=CostModel.deployment_defaults(zeta=2000.0),
        do_rounding=False,
        warmup_intervals=1,
    )
    assert plan.feasible
    assert 1 <= len(plan.open_nodes) < topo.num_nodes
    assert topo.origin not in plan.open_nodes  # origin is not a deployable site
    assert plan.selection is not None
    assert plan.recommended is not None
    # every site is assigned to an open node or the origin
    allowed = set(plan.open_nodes) | {topo.origin}
    assert set(plan.assignment.tolist()) <= allowed


def test_plan_reports_phase1_bound_and_fractions(deploy_setting):
    topo, demand = deploy_setting
    plan = plan_deployment(
        topo,
        demand,
        QoSGoal(tlat_ms=150.0, fraction=0.9),
        costs=CostModel.deployment_defaults(zeta=1000.0),
        do_rounding=False,
        warmup_intervals=1,
    )
    assert plan.phase1_bound is not None
    assert plan.phase1_bound.lp_cost > 0
    assert set(plan.open_fractions) == set(
        int(s) for s in topo.nodes() if s != topo.origin
    )


def test_plan_rejects_zero_zeta(deploy_setting):
    topo, demand = deploy_setting
    with pytest.raises(ValueError, match="zeta"):
        plan_deployment(
            topo, demand, QoSGoal(150.0, 0.9), costs=CostModel.paper_defaults()
        )


def test_plan_infeasible_goal_reported(deploy_setting):
    topo, demand = deploy_setting
    plan = plan_deployment(
        topo,
        demand,
        QoSGoal(tlat_ms=150.0, fraction=0.999999),
        costs=CostModel.deployment_defaults(zeta=1000.0),
        do_rounding=False,
    )
    assert not plan.feasible
    assert plan.reason


def test_higher_zeta_never_opens_more_nodes(deploy_setting):
    topo, demand = deploy_setting
    goal = QoSGoal(tlat_ms=150.0, fraction=0.9)
    cheap = plan_deployment(
        topo, demand, goal, costs=CostModel.deployment_defaults(zeta=100.0),
        do_rounding=False, warmup_intervals=1,
    )
    pricey = plan_deployment(
        topo, demand, goal, costs=CostModel.deployment_defaults(zeta=50_000.0),
        do_rounding=False, warmup_intervals=1,
    )
    assert cheap.feasible and pricey.feasible
    assert len(pricey.open_nodes) <= len(cheap.open_nodes)


def test_max_nodes_cap(deploy_setting):
    topo, demand = deploy_setting
    plan = plan_deployment(
        topo,
        demand,
        QoSGoal(tlat_ms=150.0, fraction=0.9),
        costs=CostModel.deployment_defaults(zeta=1000.0),
        do_rounding=False,
        warmup_intervals=1,
        max_nodes=3,
    )
    if plan.feasible:
        assert len(plan.open_nodes) <= 3


def test_render_mentions_phases(deploy_setting):
    topo, demand = deploy_setting
    plan = plan_deployment(
        topo,
        demand,
        QoSGoal(tlat_ms=150.0, fraction=0.9),
        costs=CostModel.deployment_defaults(zeta=1000.0),
        do_rounding=False,
        warmup_intervals=1,
    )
    text = plan.render()
    assert "Phase 1" in text
    assert "Phase 2" in text
