"""Tests for heuristic properties and the knowledge matrix."""

import numpy as np
import pytest

from repro.core.properties import (
    HeuristicProperties,
    Knowledge,
    ReplicaConstraint,
    Routing,
    StorageConstraint,
    knowledge_matrix,
)


def test_default_is_general():
    props = HeuristicProperties()
    assert props.is_general
    assert not props.restricts_creation


def test_string_coercion():
    props = HeuristicProperties(
        storage_constraint="uniform", routing="local", knowledge="local"
    )
    assert props.storage_constraint is StorageConstraint.UNIFORM
    assert props.routing is Routing.LOCAL
    assert props.knowledge is Knowledge.LOCAL
    assert not props.is_general


def test_invalid_history_window():
    with pytest.raises(ValueError):
        HeuristicProperties(history_window=0)


def test_restricts_creation_flags():
    assert HeuristicProperties(reactive=True).restricts_creation
    assert HeuristicProperties(history_window=1).restricts_creation
    assert HeuristicProperties(knowledge=Knowledge.LOCAL).restricts_creation
    assert not HeuristicProperties(
        storage_constraint=StorageConstraint.UNIFORM
    ).restricts_creation


def test_describe_mentions_everything():
    props = HeuristicProperties(
        storage_constraint=StorageConstraint.UNIFORM,
        replica_constraint=ReplicaConstraint.PER_OBJECT,
        routing=Routing.LOCAL,
        knowledge=Knowledge.LOCAL,
        history_window=1,
        reactive=True,
    )
    text = props.describe()
    for token in ("SC(uniform)", "RC(per_object)", "route=local", "know=local", "hist=1", "reactive"):
        assert token in text


def test_properties_hashable_and_equal():
    a = HeuristicProperties(reactive=True)
    b = HeuristicProperties(reactive=True)
    assert a == b
    assert hash(a) == hash(b)


def test_knowledge_matrix_global():
    props = HeuristicProperties(knowledge=Knowledge.GLOBAL)
    know = knowledge_matrix(props, num_storers=2, num_demanders=3)
    assert know.shape == (2, 3)
    assert know.all()


def test_knowledge_matrix_local_identity():
    props = HeuristicProperties(knowledge=Knowledge.LOCAL)
    know = knowledge_matrix(
        props, num_storers=3, num_demanders=3, storer_ids=np.array([0, 1, 2])
    )
    assert np.array_equal(know, np.eye(3, dtype=np.int8))


def test_knowledge_matrix_local_with_offset_storer_ids():
    props = HeuristicProperties(knowledge=Knowledge.LOCAL)
    # Storers are topology nodes 1 and 2 (origin 0 excluded).
    know = knowledge_matrix(
        props, num_storers=2, num_demanders=3, storer_ids=np.array([1, 2])
    )
    assert know[0].tolist() == [0, 1, 0]
    assert know[1].tolist() == [0, 0, 1]


def test_knowledge_matrix_local_with_assignment():
    props = HeuristicProperties(knowledge=Knowledge.LOCAL)
    # Demanders 0,1 assigned to storer node 2; demander 2 to node 5.
    know = knowledge_matrix(
        props,
        num_storers=2,
        num_demanders=3,
        assignment=np.array([2, 2, 5]),
        storer_ids=np.array([2, 5]),
    )
    assert know[0].tolist() == [1, 1, 0]
    assert know[1].tolist() == [0, 0, 1]
