"""Property-based invariants of the solution evaluators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import CostModel
from repro.core.evaluate import (
    coverage_matrix,
    creations_from_store,
    qos_by_scope,
    solution_cost,
)
from repro.core.goals import GoalScope, QoSGoal
from repro.core.problem import MCPerfProblem
from repro.core.properties import (
    HeuristicProperties,
    ReplicaConstraint,
    StorageConstraint,
)
from repro.topology.generators import as_level_topology
from repro.workload.demand import DemandMatrix


@st.composite
def instances(draw):
    nodes, intervals, objects = 5, 3, 3
    reads = np.array(
        [
            [[draw(st.integers(min_value=0, max_value=3)) for _ in range(objects)]
             for _ in range(intervals)]
            for _ in range(nodes)
        ],
        dtype=float,
    )
    store = np.array(
        [
            [[draw(st.sampled_from([0.0, 0.5, 1.0])) for _ in range(objects)]
             for _ in range(intervals)]
            for _ in range(4)  # one storer fewer (origin excluded)
        ],
        dtype=float,
    )
    return reads, store


def build_instance(reads):
    topo = as_level_topology(num_nodes=5, seed=3)
    problem = MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=reads),
        goal=QoSGoal(tlat_ms=150.0, fraction=0.5),
    )
    return problem.instance(HeuristicProperties())


@settings(max_examples=50, deadline=None)
@given(instances())
def test_coverage_bounded_and_monotone(case):
    reads, store = case
    inst = build_instance(reads)
    cov = coverage_matrix(inst, store)
    assert np.all(cov >= -1e-12) and np.all(cov <= 1 + 1e-12)
    # Adding storage never reduces coverage.
    more = np.minimum(store + 0.5, 1.0)
    cov_more = coverage_matrix(inst, more)
    assert np.all(cov_more >= cov - 1e-12)


@settings(max_examples=50, deadline=None)
@given(instances())
def test_qos_fractions_in_unit_interval(case):
    reads, store = case
    if reads.sum() == 0:
        return
    inst = build_instance(reads)
    for scope in GoalScope:
        goal = QoSGoal(tlat_ms=150.0, fraction=0.5, scope=scope)
        for value in qos_by_scope(inst, goal, store).values():
            assert -1e-12 <= value <= 1 + 1e-12


@settings(max_examples=50, deadline=None)
@given(instances())
def test_creations_telescope(case):
    _reads, store = case
    create = creations_from_store(store)
    assert np.all(create >= -1e-12)
    # Sum of creations >= final store level (telescoping from empty start).
    assert np.all(create.sum(axis=1) >= store[:, -1, :] - 1e-9)
    # And >= the max level ever held.
    assert np.all(create.sum(axis=1) >= store.max(axis=1) - 1e-9)


@settings(max_examples=40, deadline=None)
@given(instances())
def test_costs_nonnegative_and_class_ordered(case):
    reads, store = case
    inst = build_instance(reads)
    costs = CostModel.paper_defaults()
    plain = solution_cost(inst, HeuristicProperties(), costs, store)
    sc = solution_cost(
        inst,
        HeuristicProperties(storage_constraint=StorageConstraint.UNIFORM),
        costs,
        store,
    )
    sc_node = solution_cost(
        inst,
        HeuristicProperties(storage_constraint=StorageConstraint.PER_NODE),
        costs,
        store,
    )
    rc = solution_cost(
        inst,
        HeuristicProperties(replica_constraint=ReplicaConstraint.UNIFORM),
        costs,
        store,
    )
    for breakdown in (plain, sc, sc_node, rc):
        assert breakdown.storage >= -1e-9
        assert breakdown.creation >= -1e-9
        assert breakdown.total >= -1e-9
    # Capacity accounting charges at least the plain usage.
    assert sc.storage >= plain.storage - 1e-9
    assert sc_node.storage >= plain.storage - 1e-9
    # Uniform capacity charges at least per-node capacity.
    assert sc.storage >= sc_node.storage - 1e-9
