"""Tests for the on-line adaptive selection extension."""

import numpy as np
import pytest

from repro.core.adaptive import (
    AdaptivePlacement,
    default_factories,
    selection_timeline,
)
from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.simulator.engine import simulate
from repro.topology.generators import as_level_topology
from repro.workload.demand import DemandMatrix
from repro.workload.generators import group_workload, web_workload
from repro.workload.trace import Trace


@pytest.fixture(scope="module")
def shift_setting():
    """A workload that is WEB-shaped for half a day, then GROUP-shaped."""
    topo = as_level_topology(num_nodes=10, seed=3)
    web = web_workload(
        num_nodes=10, num_objects=30, populations=topo.populations,
        requests_scale=0.05, seed=1, duration_s=43_200.0,
    )
    group = group_workload(
        num_nodes=10, num_objects=30, requests_scale=0.02, seed=2,
        duration_s=43_200.0,
    )
    trace = Trace.concat([web, group], name="WEB->GROUP")
    return topo, trace


def test_concat_orders_and_offsets(shift_setting):
    _topo, trace = shift_setting
    assert trace.duration_s == pytest.approx(86_400.0)
    times = [r.time_s for r in trace]
    assert times == sorted(times)
    first_half = sum(1 for t in times if t < 43_200.0)
    assert 0 < first_half < len(times)


def test_selection_timeline_detects_shift(shift_setting):
    topo, trace = shift_setting
    demand = DemandMatrix.from_trace(trace, num_intervals=8)
    problem = MCPerfProblem(
        topology=topo, demand=demand, goal=QoSGoal(tlat_ms=150.0, fraction=0.9)
    )
    timeline = selection_timeline(
        problem,
        window=4,
        classes=["storage-constrained", "replica-constrained"],
    )
    assert len(timeline) == 2
    assert all(p.recommended is not None for p in timeline)
    # Each window carries per-class bounds.
    for point in timeline:
        assert set(point.bounds) == {"storage-constrained", "replica-constrained"}
        assert "[" in str(point)


def test_selection_timeline_validation(shift_setting):
    topo, trace = shift_setting
    demand = DemandMatrix.from_trace(trace, num_intervals=4)
    problem = MCPerfProblem(
        topology=topo, demand=demand, goal=QoSGoal(tlat_ms=150.0, fraction=0.9)
    )
    with pytest.raises(ValueError):
        selection_timeline(problem, window=0)
    with pytest.raises(ValueError):
        selection_timeline(problem, window=2, step=0)


def test_timeline_stride_covers_all_intervals(shift_setting):
    topo, trace = shift_setting
    demand = DemandMatrix.from_trace(trace, num_intervals=8)
    problem = MCPerfProblem(
        topology=topo, demand=demand, goal=QoSGoal(tlat_ms=150.0, fraction=0.8)
    )
    timeline = selection_timeline(
        problem, window=4, step=2, classes=["storage-constrained"]
    )
    assert timeline[0].start_interval == 0
    assert timeline[-1].end_interval == 8


def test_adaptive_placement_runs_and_meets_modest_goal(shift_setting):
    topo, trace = shift_setting
    period = trace.duration_s / 8
    goal = QoSGoal(tlat_ms=150.0, fraction=0.7)
    heuristic = AdaptivePlacement(
        factories=default_factories(
            capacity=12, replicas=3, period_s=period, tlat_ms=150.0
        ),
        goal=goal,
        period_s=period,
        window=2,
        reselect_every=2,
    )
    result = simulate(
        topo, trace, heuristic, tlat_ms=150.0, warmup_s=period, cost_interval_s=period
    )
    assert result.reads > 0
    assert result.qos >= 0.7
    assert heuristic.current_class in heuristic.factories


def test_adaptive_switch_log_consistent(shift_setting):
    topo, trace = shift_setting
    period = trace.duration_s / 8
    heuristic = AdaptivePlacement(
        factories=default_factories(
            capacity=12, replicas=3, period_s=period, tlat_ms=150.0
        ),
        goal=QoSGoal(tlat_ms=150.0, fraction=0.7),
        period_s=period,
        window=2,
        reselect_every=1,
    )
    simulate(topo, trace, heuristic, tlat_ms=150.0)
    # every logged switch changes the class
    for _idx, before, after in heuristic.switches:
        assert before != after


def test_adaptive_validation():
    goal = QoSGoal(tlat_ms=150.0, fraction=0.9)
    with pytest.raises(ValueError):
        AdaptivePlacement({}, goal, period_s=100.0)
    factories = default_factories(4, 2, 100.0, 150.0)
    with pytest.raises(ValueError):
        AdaptivePlacement(factories, goal, period_s=0.0)
    with pytest.raises(ValueError):
        AdaptivePlacement(factories, goal, period_s=100.0, window=0)
    with pytest.raises(KeyError):
        AdaptivePlacement({"not-a-class": lambda ctx: None}, goal, period_s=100.0)
    with pytest.raises(KeyError):
        AdaptivePlacement(factories, goal, period_s=100.0, initial="cooperative-caching")


def test_adaptive_describe_and_routing_delegation(shift_setting):
    topo, trace = shift_setting
    period = trace.duration_s / 8
    heuristic = AdaptivePlacement(
        factories=default_factories(8, 2, period, 150.0),
        goal=QoSGoal(tlat_ms=150.0, fraction=0.7),
        period_s=period,
        initial="caching",
    )
    assert "Adaptive" in heuristic.describe()
    simulate(topo, trace, heuristic, tlat_ms=150.0)
    assert heuristic.routing in ("local", "global")


def test_lru_on_adopt_respects_capacity(shift_setting):
    from repro.heuristics.caching import LRUCaching
    from repro.simulator.engine import SimulationContext
    from repro.simulator.state import ReplicaState

    topo, trace = shift_setting
    state = ReplicaState(topo, trace.num_objects)
    ctx = SimulationContext(topo, trace, state, tlat_ms=150.0)
    node = next(n for n in topo.nodes() if n != topo.origin)
    # Predecessor left 5 replicas on the node.
    for obj in range(5):
        assert state.create(node, obj, 0.0)
    lru = LRUCaching(capacity=3)
    lru.on_adopt(ctx)
    assert state.occupancy(node) == 3  # overflow evicted
    assert len(lru._lru[node]) == 3
