"""Brute-force IP reference for tiny MC-PERF instances.

Enumerates every binary store matrix consistent with a class's create
restrictions, checks goal feasibility with the library's (independently
tested) evaluators, and returns the minimum class-accounted cost.  The LP
relaxation must lower-bound this optimum and the rounding algorithm's
feasible cost must upper-bound it — the central soundness property of the
whole method.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

import numpy as np

from repro.core.evaluate import meets_goal, solution_cost
from repro.core.formulation import compute_allowed_create
from repro.core.problem import MCPerfProblem
from repro.core.properties import HeuristicProperties


def _creation_legal(store: np.ndarray, allowed, initial) -> bool:
    ns_count, intervals, objects = store.shape
    for ns in range(ns_count):
        for k in range(objects):
            prev = initial[ns, k] if initial is not None else 0.0
            for i in range(intervals):
                cur = store[ns, i, k]
                if cur > prev and allowed is not None and not allowed[ns, i, k]:
                    return False
                prev = cur
    return True


def brute_force_optimum(
    problem: MCPerfProblem,
    properties: Optional[HeuristicProperties] = None,
    max_bits: int = 16,
) -> Tuple[Optional[float], Optional[np.ndarray]]:
    """Exhaustive minimum cost over integral placements (None = infeasible).

    Only usable for instances with at most ``max_bits`` store cells.
    """
    props = properties or HeuristicProperties()
    inst = problem.instance(props)
    ns_count = inst.num_storers
    intervals = inst.num_intervals
    objects = inst.num_objects
    bits = ns_count * intervals * objects
    if bits > max_bits:
        raise ValueError(f"instance too large for brute force: {bits} cells")
    allowed = compute_allowed_create(inst, props)
    initial = inst.initial_store

    best_cost = None
    best_store = None
    for assignment in itertools.product((0.0, 1.0), repeat=bits):
        store = np.array(assignment).reshape(ns_count, intervals, objects)
        if not _creation_legal(store, allowed, initial):
            continue
        if not meets_goal(inst, problem.goal, store):
            continue
        cost = solution_cost(
            inst, props, problem.costs, store, goal=problem.goal
        ).total
        if best_cost is None or cost < best_cost - 1e-12:
            best_cost = cost
            best_store = store
    return best_cost, best_store
