"""Tests for the greedy rounding algorithm, including brute-force and
property-based soundness checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import compute_lower_bound
from repro.core.costs import CostModel
from repro.core.evaluate import meets_goal
from repro.core.formulation import build_formulation
from repro.core.goals import GoalScope, QoSGoal
from repro.core.problem import MCPerfProblem
from repro.core.properties import HeuristicProperties, StorageConstraint
from repro.core.rounding import round_solution
from repro.topology.generators import star_topology
from repro.workload.demand import DemandMatrix
from tests.core.brute import brute_force_optimum


def make_problem(reads, fraction, num_leaves, scope=GoalScope.PER_USER, **kwargs):
    topo = star_topology(num_leaves=num_leaves, hub_latency_ms=200.0)
    return MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=np.asarray(reads, dtype=float)),
        goal=QoSGoal(tlat_ms=150.0, fraction=fraction, scope=scope),
        costs=CostModel.paper_defaults(),
        **kwargs,
    )


def solve_and_round(problem, props=None, run_length=False):
    form = build_formulation(problem, props)
    assert not form.structurally_infeasible
    sol = form.lp.solve().require_optimal()
    return form, sol, round_solution(form, sol, run_length=run_length)


def test_rounded_solution_is_integral_and_feasible():
    reads = np.zeros((4, 2, 2))
    reads[1:, :, :] = 1
    problem = make_problem(reads, fraction=0.5, num_leaves=3)
    form, sol, rounding = solve_and_round(problem)
    assert rounding.feasible
    values = rounding.store
    assert np.all((values < 1e-9) | (values > 1 - 1e-9))
    assert meets_goal(form.instance, problem.goal, values)


def test_rounded_cost_at_least_lp():
    reads = np.zeros((4, 2, 2))
    reads[1:, :, :] = 1
    problem = make_problem(reads, fraction=0.5, num_leaves=3)
    form, sol, rounding = solve_and_round(problem)
    assert rounding.total_cost >= sol.objective - 1e-6


def test_rounding_tracks_counts():
    reads = np.zeros((4, 2, 2))
    reads[1:, :, :] = 1
    problem = make_problem(reads, fraction=0.5, num_leaves=3)
    _f, _s, rounding = solve_and_round(problem)
    assert rounding.rounded_up + rounding.rounded_down == rounding.fractional_units


def test_integral_lp_needs_no_rounding():
    reads = np.zeros((2, 2, 1))
    reads[1, :, 0] = 1
    problem = make_problem(reads, fraction=1.0, num_leaves=1)
    _f, _s, rounding = solve_and_round(problem)
    assert rounding.fractional_units == 0
    assert rounding.total_cost == pytest.approx(3.0)


def test_run_length_mode_feasible_and_close():
    reads = np.zeros((4, 3, 2))
    reads[1:, :, :] = 1
    problem = make_problem(reads, fraction=0.6, num_leaves=3)
    _f1, _s1, plain = solve_and_round(problem, run_length=False)
    _f2, _s2, rl = solve_and_round(problem, run_length=True)
    assert rl.feasible
    # Run-length rounding may cost slightly more, never catastrophically.
    assert rl.total_cost <= plain.total_cost * 1.5 + 1e-9


def test_rounding_respects_reactive_legality():
    # Reads in intervals 1 and 2 (interval 0 idle): a reactive class may
    # only create from interval 2 onward... actually interval 1 follows the
    # access at 1?  No: reactive needs a *strictly earlier* access, so
    # creations are legal at intervals 2+ only.  The rounded solution must
    # never imply an earlier creation.
    reads = np.zeros((3, 3, 1))
    reads[1, 1, 0] = 1
    reads[1, 2, 0] = 1
    reads[2, 2, 0] = 1
    problem = make_problem(reads, fraction=0.5, num_leaves=2)
    props = HeuristicProperties(reactive=True)
    form, sol, rounding = solve_and_round(problem, props)
    allowed = form.allowed_create
    store = rounding.store
    for ns in range(store.shape[0]):
        for k in range(store.shape[2]):
            prev = 0.0
            for i in range(store.shape[1]):
                if store[ns, i, k] > prev:
                    assert allowed[ns, i, k], f"illegal creation at {(ns, i, k)}"
                prev = store[ns, i, k]


def test_rounding_brute_force_sandwich_general():
    # LP <= brute-force IP optimum <= rounded feasible cost.
    reads = np.zeros((3, 2, 1))
    reads[1, 0, 0] = 2
    reads[1, 1, 0] = 1
    reads[2, 1, 0] = 3
    problem = make_problem(reads, fraction=0.6, num_leaves=2)
    form, sol, rounding = solve_and_round(problem)
    brute, _ = brute_force_optimum(problem)
    assert brute is not None
    assert sol.objective <= brute + 1e-6
    assert rounding.total_cost >= brute - 1e-6


def test_rounding_brute_force_sandwich_sc():
    reads = np.zeros((3, 2, 2))
    reads[1, :, 0] = 2
    reads[2, 1, 1] = 1
    problem = make_problem(reads, fraction=0.5, num_leaves=2)
    props = HeuristicProperties(storage_constraint=StorageConstraint.UNIFORM)
    form, sol, rounding = solve_and_round(problem, props)
    brute, _ = brute_force_optimum(problem, props)
    assert brute is not None
    assert sol.objective <= brute + 1e-6
    assert rounding.total_cost >= brute - 1e-6


def test_rounding_rejects_average_latency_goal():
    from repro.core.goals import AverageLatencyGoal
    from repro.core.rounding import _Rounder

    reads = np.zeros((2, 1, 1))
    reads[1, 0, 0] = 1
    topo = star_topology(num_leaves=1, hub_latency_ms=200.0)
    problem = MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=reads),
        goal=AverageLatencyGoal(tavg_ms=100.0),
    )
    form = build_formulation(problem)
    with pytest.raises(TypeError):
        _Rounder(form, np.zeros((1, 1, 1)), run_length=False)


@st.composite
def random_instances(draw):
    num_leaves = draw(st.integers(min_value=1, max_value=3))
    intervals = draw(st.integers(min_value=1, max_value=3))
    objects = draw(st.integers(min_value=1, max_value=2))
    reads = np.zeros((num_leaves + 1, intervals, objects))
    for nd in range(1, num_leaves + 1):
        for i in range(intervals):
            for k in range(objects):
                reads[nd, i, k] = draw(st.integers(min_value=0, max_value=3))
    fraction = draw(st.sampled_from([0.3, 0.5, 0.8, 1.0]))
    reactive = draw(st.booleans())
    sc = draw(st.booleans())
    props = HeuristicProperties(
        reactive=reactive,
        storage_constraint=StorageConstraint.UNIFORM if sc else StorageConstraint.NONE,
    )
    return reads, fraction, num_leaves, props


@settings(max_examples=40, deadline=None)
@given(random_instances())
def test_rounding_soundness_random(case):
    """On every feasible random instance: rounded solution is integral,
    feasible, legal for the class, and costs at least the LP bound."""
    reads, fraction, num_leaves, props = case
    if reads.sum() == 0:
        return
    problem = make_problem(
        reads, fraction=fraction, num_leaves=num_leaves, scope=GoalScope.OVERALL
    )
    result = compute_lower_bound(problem, props)
    if not result.feasible:
        return
    rounding = result.rounding
    assert rounding is not None
    assert rounding.feasible
    store = rounding.store
    assert np.all((store < 1e-9) | (store > 1 - 1e-9))
    assert rounding.total_cost >= result.lp_cost - 1e-6
    inst = problem.instance(props)
    assert meets_goal(inst, problem.goal, store)
