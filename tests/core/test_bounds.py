"""Tests for the lower-bound driver and its ordering invariants."""

import dataclasses

import numpy as np
import pytest

from repro.core.bounds import compute_lower_bound
from repro.core.classes import get_class
from repro.core.formulation import build_formulation
from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.core.properties import HeuristicProperties
from repro.workload.demand import DemandMatrix
from repro.topology.generators import star_topology


def test_general_bound_is_lowest(web_problem):
    general = compute_lower_bound(web_problem, do_rounding=False)
    assert general.feasible
    for name in ["storage-constrained", "replica-constrained", "cooperative-caching"]:
        result = compute_lower_bound(
            web_problem, get_class(name).properties, do_rounding=False
        )
        if result.feasible:
            assert result.lp_cost >= general.lp_cost - 1e-6, name


def test_bound_monotone_in_qos(web_problem):
    costs = []
    for fraction in [0.7, 0.8, 0.9]:
        goal = dataclasses.replace(web_problem.goal, fraction=fraction)
        p = dataclasses.replace(web_problem, goal=goal)
        result = compute_lower_bound(p, do_rounding=False)
        assert result.feasible
        costs.append(result.lp_cost)
    assert costs[0] <= costs[1] + 1e-6 <= costs[2] + 2e-6


def test_bound_monotone_in_latency_threshold(web_problem):
    loose = dataclasses.replace(
        web_problem, goal=QoSGoal(tlat_ms=400.0, fraction=0.9)
    )
    tight = dataclasses.replace(
        web_problem, goal=QoSGoal(tlat_ms=120.0, fraction=0.9)
    )
    r_loose = compute_lower_bound(loose, do_rounding=False)
    r_tight = compute_lower_bound(tight, do_rounding=False)
    if r_loose.feasible and r_tight.feasible:
        assert r_loose.lp_cost <= r_tight.lp_cost + 1e-6


def test_more_constrained_class_never_cheaper(web_problem):
    """Adding a property can only raise (or keep) the bound."""
    base = compute_lower_bound(
        web_problem, HeuristicProperties(reactive=True), do_rounding=False
    )
    more = compute_lower_bound(
        web_problem,
        HeuristicProperties(reactive=True, history_window=1),
        do_rounding=False,
    )
    if base.feasible and more.feasible:
        assert more.lp_cost >= base.lp_cost - 1e-6


def test_infeasible_class_reported(web_problem):
    goal = dataclasses.replace(web_problem.goal, fraction=0.99999)
    p = dataclasses.replace(web_problem, goal=goal)
    result = compute_lower_bound(p, get_class("caching").properties)
    assert not result.feasible
    assert result.lp_cost is None
    assert result.gap is None
    assert "goal" in result.reason or "infeasible" in result.reason


def test_result_str_forms(web_problem):
    feasible = compute_lower_bound(web_problem, do_rounding=False)
    assert "bound=" in str(feasible)
    goal = dataclasses.replace(web_problem.goal, fraction=0.99999)
    p = dataclasses.replace(web_problem, goal=goal)
    infeasible = compute_lower_bound(p, get_class("caching").properties)
    assert "cannot meet" in str(infeasible)


def test_gap_computed(web_problem):
    result = compute_lower_bound(web_problem)
    assert result.feasible_cost is not None
    assert result.gap is not None
    assert result.gap >= -1e-9


def test_keep_store_returns_matrix(web_problem):
    result = compute_lower_bound(web_problem, do_rounding=False, keep_store=True)
    assert result.store_lp is not None
    inst = web_problem.instance(HeuristicProperties())
    assert result.store_lp.shape == (
        inst.num_storers,
        inst.num_intervals,
        inst.num_objects,
    )


def test_formulation_reuse(web_problem):
    form = build_formulation(web_problem, None)
    a = compute_lower_bound(web_problem, None, do_rounding=False, formulation=form)
    b = compute_lower_bound(web_problem, None, do_rounding=False)
    assert a.lp_cost == pytest.approx(b.lp_cost, rel=1e-9)


def test_timing_and_size_metadata(web_problem):
    result = compute_lower_bound(web_problem, do_rounding=False)
    assert result.solve_seconds > 0
    assert result.num_variables > 0
    assert result.num_constraints > 0


def test_simplex_backend_on_tiny_instance():
    topo = star_topology(num_leaves=2, hub_latency_ms=200.0)
    reads = np.zeros((3, 2, 1))
    reads[1, :, 0] = 1
    problem = MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=reads),
        goal=QoSGoal(tlat_ms=150.0, fraction=1.0),
    )
    a = compute_lower_bound(problem, backend="simplex", do_rounding=False)
    b = compute_lower_bound(problem, backend="scipy", do_rounding=False)
    assert a.lp_cost == pytest.approx(b.lp_cost, abs=1e-6)
