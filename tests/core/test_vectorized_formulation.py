"""Vectorized formulation assembly vs. the legacy row-at-a-time builder.

The vectorized builder (ISSUE 4) must be a pure speedup: same variables,
same rows, same solver arrays.  Names, senses, indices and coefficients are
compared exactly; RHS values and the objective constant get 1e-9 tolerance
(the vectorized path regroups floating-point sums).
"""

import dataclasses

import numpy as np
import pytest

from repro.core.bounds import compute_lower_bound
from repro.core.classes import FIGURE1_CLASSES, get_class
from repro.core.formulation import build_formulation
from repro.perf import PERF


def assert_formulations_equivalent(legacy, vectorized):
    lp_l, lp_v = legacy.lp, vectorized.lp
    assert lp_l.num_variables == lp_v.num_variables
    assert lp_l.num_constraints == lp_v.num_constraints
    for vl, vv in zip(lp_l.variables, lp_v.variables):
        assert vl.name == vv.name
        assert vl.lower == vv.lower and vl.upper == vv.upper, vl.name
        assert vl.objective == pytest.approx(vv.objective, abs=1e-9), vl.name
    for cl, cv in zip(lp_l.constraints, lp_v.constraints):
        assert cl.name == cv.name
        assert cl.sense is cv.sense, cl.name
        assert list(cl.indices) == list(cv.indices), cl.name
        assert list(cl.coeffs) == list(cv.coeffs), cl.name
        assert cl.rhs == pytest.approx(cv.rhs, abs=1e-9), cl.name
    assert legacy.objective_constant == pytest.approx(
        vectorized.objective_constant, abs=1e-9
    )
    # The index structures the rounding/simulation layers read must agree too.
    np.testing.assert_array_equal(legacy.store_idx, vectorized.store_idx)
    np.testing.assert_array_equal(legacy.create_idx, vectorized.create_idx)

    c_l, aub_l, bub_l, aeq_l, beq_l, bnd_l = lp_l.to_arrays()
    c_v, aub_v, bub_v, aeq_v, beq_v, bnd_v = lp_v.to_arrays()
    np.testing.assert_allclose(c_l, c_v, atol=1e-9)
    assert list(bnd_l) == list(bnd_v)
    assert (aub_l is None) == (aub_v is None)
    if aub_l is not None:
        assert (aub_l != aub_v).nnz == 0
        np.testing.assert_allclose(bub_l, bub_v, atol=1e-9)
    assert (aeq_l is None) == (aeq_v is None)
    if aeq_l is not None:
        assert (aeq_l != aeq_v).nnz == 0
        np.testing.assert_allclose(beq_l, beq_v, atol=1e-9)


@pytest.mark.parametrize("class_name", FIGURE1_CLASSES)
def test_vectorized_matches_legacy(web_problem, class_name):
    props = get_class(class_name).properties
    legacy = build_formulation(web_problem, props, assembly="legacy")
    vectorized = build_formulation(web_problem, props, assembly="vectorized")
    assert_formulations_equivalent(legacy, vectorized)


def test_vectorized_matches_legacy_group_workload(group_problem):
    props = get_class("cooperative-caching").properties
    legacy = build_formulation(group_problem, props, assembly="legacy")
    vectorized = build_formulation(group_problem, props, assembly="vectorized")
    assert_formulations_equivalent(legacy, vectorized)


def test_vectorized_matches_legacy_with_initial_placement(web_problem):
    rng = np.random.default_rng(3)
    n = web_problem.topology.num_nodes
    k = web_problem.demand.num_objects
    initial = (rng.random((n, k)) < 0.2).astype(np.int8)
    problem = dataclasses.replace(web_problem, initial_placement=initial)
    for class_name in ["general", "caching"]:
        props = get_class(class_name).properties
        legacy = build_formulation(problem, props, assembly="legacy")
        vectorized = build_formulation(problem, props, assembly="vectorized")
        assert_formulations_equivalent(legacy, vectorized)


def test_unknown_assembly_mode_rejected(web_problem):
    with pytest.raises(ValueError, match="assembly"):
        build_formulation(web_problem, None, assembly="mystery")


def test_build_counters(web_problem):
    before_v = PERF.get("form.build.vectorized")
    before_l = PERF.get("form.build.legacy")
    build_formulation(web_problem, None)
    build_formulation(web_problem, None, assembly="legacy")
    assert PERF.get("form.build.vectorized") == before_v + 1
    assert PERF.get("form.build.legacy") == before_l + 1


def test_retarget_reuses_assembly(web_problem):
    """set_qos_fraction is RHS-only: no assembly rebuild across sweep levels."""
    form = build_formulation(web_problem, None)
    form.lp.to_arrays()
    rebuilds = PERF.get("lp.assembly.rebuild")
    retargets = PERF.get("form.retarget")
    for fraction in (0.8, 0.95, 0.9):
        form.set_qos_fraction(fraction)
        form.lp.to_arrays()
    assert PERF.get("lp.assembly.rebuild") == rebuilds
    assert PERF.get("form.retarget") == retargets + 3


# -- iterative (patch-API) rounding ------------------------------------------


def test_iterative_rounding_matches_greedy_feasibility(web_problem):
    greedy = compute_lower_bound(web_problem, None, rounding_mode="greedy")
    iterative = compute_lower_bound(web_problem, None, rounding_mode="iterative")
    assert greedy.feasible and iterative.feasible
    # Both roundings must be valid upper bounds on the same LP lower bound.
    assert iterative.lp_cost == pytest.approx(greedy.lp_cost, rel=1e-6)
    assert iterative.feasible_cost >= iterative.lp_cost - 1e-6
    assert iterative.rounding is not None and iterative.rounding.feasible


def test_iterative_rounding_is_assembly_free(web_problem):
    """The acceptance criterion: zero rebuilds after the initial assembly —
    every rounding iteration re-solves through the patch API instead."""
    PERF.reset()
    result = compute_lower_bound(web_problem, None, rounding_mode="iterative")
    assert result.feasible
    assert PERF.get("lp.assembly.rebuild") == 1  # the initial build, nothing else
    fixes = PERF.get("round.iterative.fix")
    assert fixes > 0
    assert PERF.get("lp.patch.fix_var") == fixes
    assert PERF.get("lp.assembly.reuse") >= 1


def test_iterative_rounding_restores_bounds(web_problem):
    """Rounding must leave the formulation reusable: original bounds back."""
    from repro.core.rounding import round_solution_iterative

    form = build_formulation(web_problem, None)
    saved = [(v.lower, v.upper) for v in form.lp.variables]
    solution = form.lp.solve(backend="auto")
    result = round_solution_iterative(form, solution)
    assert result.feasible
    assert [(v.lower, v.upper) for v in form.lp.variables] == saved
    # And the formulation still solves to the same relaxation optimum.
    again = form.lp.solve(backend="auto")
    assert again.objective == pytest.approx(solution.objective, abs=1e-6)


def test_bounds_rejects_unknown_rounding_mode(web_problem):
    with pytest.raises(ValueError, match="rounding mode"):
        compute_lower_bound(web_problem, None, rounding_mode="mystery")
