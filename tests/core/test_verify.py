"""Tests for the placement verifier."""

import numpy as np
import pytest

from repro.core.costs import CostModel
from repro.core.formulation import build_formulation
from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.core.properties import HeuristicProperties
from repro.core.rounding import round_solution
from repro.audit.certificates import verify_placement
from repro.topology.generators import star_topology
from repro.workload.demand import DemandMatrix


@pytest.fixture()
def setup():
    topo = star_topology(num_leaves=2, hub_latency_ms=200.0)
    reads = np.zeros((3, 3, 1))
    reads[1, 1, 0] = 1
    reads[1, 2, 0] = 1
    problem = MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=reads),
        goal=QoSGoal(tlat_ms=150.0, fraction=0.5),
        costs=CostModel.paper_defaults(),
    )
    return problem


def test_valid_placement(setup):
    form = build_formulation(setup)
    store = np.zeros((2, 3, 1))
    store[0, 1, 0] = 1  # covers the interval-1 read at leaf 1
    report = verify_placement(form, store)
    assert report.valid
    assert report.cost.total == pytest.approx(2.0)
    assert "valid" in str(report)


def test_shape_mismatch_raises(setup):
    form = build_formulation(setup)
    with pytest.raises(ValueError, match="shape"):
        verify_placement(form, np.zeros((1, 1, 1)))


def test_fractional_detected(setup):
    form = build_formulation(setup)
    store = np.zeros((2, 3, 1))
    store[0, 1, 0] = 0.5
    store[0, 2, 0] = 1.0
    report = verify_placement(form, store)
    assert not report.integral
    assert any("fractional" in p for p in report.problems)


def test_goal_violation_detected(setup):
    form = build_formulation(setup)
    report = verify_placement(form, np.zeros((2, 3, 1)))
    assert not report.goal_met
    assert not report.valid
    assert "goal" in str(report)


def test_illegal_creation_detected(setup):
    props = HeuristicProperties(reactive=True)
    form = build_formulation(setup, props)
    store = np.zeros((2, 3, 1))
    store[0, 1, 0] = 1  # reactive: nothing was accessed before interval 1
    report = verify_placement(form, store)
    assert not report.creation_legal
    assert any("restriction" in p for p in report.problems)


def test_legal_reactive_creation(setup):
    props = HeuristicProperties(reactive=True)
    form = build_formulation(setup, props)
    store = np.zeros((2, 3, 1))
    store[0, 2, 0] = 1  # accessed at interval 1, created at 2 — legal
    report = verify_placement(form, store)
    assert report.creation_legal
    assert report.valid  # covers 1 of 2 reads = 50%


def test_rounded_solutions_always_verify(web_problem):
    from repro.core.classes import get_class

    for name in ["general", "storage-constrained", "cooperative-caching"]:
        form = build_formulation(web_problem, get_class(name).properties)
        if form.structurally_infeasible:
            continue
        solution = form.lp.solve().require_optimal()
        rounding = round_solution(form, solution)
        report = verify_placement(form, rounding.store)
        assert report.valid, f"{name}: {report.problems}"
        assert report.cost.total == pytest.approx(rounding.total_cost)
