"""Warm-started QoS sweeps (ISSUE 9): counter wiring, exactness, auditing.

Fine (drift-sized) re-targets must reuse the previous basis; coarse jumps
must drop the hint (a warm attempt there costs more than a cold solve);
and a warm-started sweep must survive the full audit — the certificates
cannot tell (and must not care) how the optimum was reached.
"""

import numpy as np
import pytest

from repro.audit.certificates import audit_bound_result
from repro.core.bounds import compute_lower_bound
from repro.core.formulation import WARM_RETARGET_DELTA, build_formulation
from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.perf import PERF
from repro.topology.generators import star_topology
from repro.workload.demand import DemandMatrix


def tiny_problem(fraction=0.5):
    topo = star_topology(num_leaves=3, hub_latency_ms=200.0)
    reads = np.zeros((4, 2, 2))
    reads[1, :, 0] = 2
    reads[2, 1, 0] = 1
    reads[3, :, 1] = 1
    return MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=reads),
        goal=QoSGoal(tlat_ms=150.0, fraction=fraction),
    )


def fine_levels(base=0.5, steps=4):
    return [round(base + i * 0.001, 6) for i in range(steps)]


def test_fine_sweep_fires_warm_starts():
    form = build_formulation(tiny_problem(0.5))
    before = PERF.get("lp.simplex.warm_starts")
    costs = []
    for level in fine_levels():
        form.set_qos_fraction(level)
        result = compute_lower_bound(
            form.problem, None, do_rounding=False, formulation=form
        )
        assert result.feasible
        costs.append(result.lp_cost)
    assert PERF.get("lp.simplex.warm_starts") > before
    # Exactness: each warm level must equal a fresh cold build.
    for level, cost in zip(fine_levels(), costs):
        fresh = compute_lower_bound(tiny_problem(level), None, do_rounding=False)
        assert cost == pytest.approx(fresh.lp_cost, abs=1e-8)


def test_coarse_retarget_drops_warm_hint():
    form = build_formulation(tiny_problem(0.5))
    compute_lower_bound(form.problem, None, do_rounding=False, formulation=form)
    assert form.last_solution is not None
    form.set_qos_fraction(0.5 + 10 * WARM_RETARGET_DELTA)
    assert form.last_solution is None


def test_fine_retarget_keeps_warm_hint():
    form = build_formulation(tiny_problem(0.5))
    compute_lower_bound(form.problem, None, do_rounding=False, formulation=form)
    assert form.last_solution is not None
    form.set_qos_fraction(0.5 + WARM_RETARGET_DELTA / 2)
    assert form.last_solution is not None


def test_warm_sweep_passes_full_audit():
    form = build_formulation(tiny_problem(0.5))
    before = PERF.get("lp.simplex.warm_starts")
    for level in fine_levels():
        form.set_qos_fraction(level)
        result = compute_lower_bound(
            form.problem, None, do_rounding=True, formulation=form, audit="full"
        )
        assert result.feasible
        assert result.audit is not None and result.audit.ok, result.audit.violations
        # Post-hoc artifact audit agrees with the in-solve one.
        report = audit_bound_result(form.problem, None, result, mode="full")
        assert report.ok, report.violations
    assert PERF.get("lp.simplex.warm_starts") > before


def test_non_optimal_outcome_clears_warm_hint():
    form = build_formulation(tiny_problem(0.5))
    compute_lower_bound(form.problem, None, do_rounding=False, formulation=form)
    assert form.last_solution is not None
    # An unreachable fraction makes the LP infeasible; the stored hint must
    # not survive a non-optimal solve.
    form.set_qos_fraction(1.0)
    result = compute_lower_bound(
        form.problem, None, do_rounding=False, formulation=form
    )
    if not result.feasible:
        assert form.last_solution is None
