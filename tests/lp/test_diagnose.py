"""Auto backend fallback and infeasibility diagnostics."""

import warnings

import pytest

from repro.core.bounds import compute_lower_bound
from repro.core.properties import HeuristicProperties, ReplicaConstraint
from repro.lp import (
    LinearProgram,
    SolveStatus,
    diagnose_infeasibility,
)
from repro.lp.diagnose import constraint_family


def two_var_model():
    lp = LinearProgram()
    x = lp.var("x", obj=1.0)
    y = lp.var("y", obj=2.0)
    lp.add_row([x.index, y.index], [1.0, 1.0], ">=", 2.0, name="qos[all]")
    return lp


def infeasible_model():
    """qos demands 3 units but upper bounds cap the total at 2."""
    lp = LinearProgram()
    a = lp.var("a", obj=1.0, upper=1.0)
    b = lp.var("b", obj=1.0, upper=1.0)
    lp.add_row([a.index, b.index], [1.0, 1.0], ">=", 3.0, name="qos[all]")
    lp.add_row([a.index], [1.0], "<=", 0.5, name="sc[n0,i0]")
    return lp


# -- the auto backend --------------------------------------------------------


def test_auto_backend_prefers_scipy():
    sol = two_var_model().solve(backend="auto")
    assert sol.is_optimal
    assert sol.backend == "scipy"
    assert sol.objective == pytest.approx(2.0)


def test_auto_backend_falls_back_to_simplex_with_warning(monkeypatch):
    import repro.lp.scipy_backend as scipy_backend

    def broken(model, **kwargs):
        raise ImportError("scipy unavailable")

    monkeypatch.setattr(scipy_backend, "solve_with_scipy", broken)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        sol = two_var_model().solve(backend="auto")
    assert sol.is_optimal
    assert sol.backend == "simplex"
    assert sol.objective == pytest.approx(2.0)
    assert any(
        issubclass(w.category, RuntimeWarning) and "simplex" in str(w.message)
        for w in caught
    )


def test_auto_backend_falls_back_on_solver_crash(monkeypatch):
    import repro.lp.scipy_backend as scipy_backend

    def crashing(model, **kwargs):
        raise RuntimeError("HiGHS exploded")

    monkeypatch.setattr(scipy_backend, "solve_with_scipy", crashing)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        sol = two_var_model().solve(backend="auto")
    assert sol.is_optimal
    assert sol.backend == "simplex"


def test_explicit_backends_still_selectable():
    assert two_var_model().solve(backend="scipy").backend == "scipy"
    assert two_var_model().solve(backend="simplex").backend == "simplex"
    with pytest.raises(ValueError, match="unknown LP backend"):
        two_var_model().solve(backend="cplex")


def test_backends_agree_on_both_model_fixtures():
    for model_maker in (two_var_model, infeasible_model):
        a = model_maker().solve(backend="scipy")
        b = model_maker().solve(backend="simplex")
        assert a.status == b.status
        if a.is_optimal:
            assert a.objective == pytest.approx(b.objective)


# -- family extraction -------------------------------------------------------


def test_constraint_family_parses_prefixes():
    assert constraint_family("qos[3]") == "qos"
    assert constraint_family("sc[n0,i2]") == "sc"
    assert constraint_family("route-one[n1,i0,k2]") == "route-one"
    assert constraint_family("c17") == "coupling"  # auto-generated name
    assert constraint_family("cover[n0,i0,k0]") == "cover"
    assert constraint_family("") == "coupling"


# -- diagnosis ---------------------------------------------------------------


@pytest.mark.parametrize("backend", ["scipy", "simplex"])
def test_diagnosis_names_binding_family(backend):
    model = infeasible_model()
    assert model.solve(backend=backend).status is SolveStatus.INFEASIBLE
    diagnosis = diagnose_infeasibility(model, backend=backend)
    # Dropping the qos row restores feasibility; dropping sc alone does not
    # (the variable upper bounds still cap the total at 2 < 3).
    assert diagnosis.binding == ["qos"]
    assert diagnosis.families == {"qos": 1, "sc": 1}
    assert "qos" in diagnosis.render()


def test_diagnosis_on_bound_only_conflict_reports_unisolated():
    """A conflict living entirely in variable bounds names no family."""
    lp = LinearProgram()
    x = lp.var("x", obj=1.0, upper=1.0)
    lp.add_row([x.index], [1.0], ">=", 5.0, name="qos[0]")
    lp.add_row([x.index], [1.0], ">=", 4.0, name="rc[0]")
    # Both rows must go to restore feasibility? No — removing either leaves
    # the other demanding more than the bound allows.
    diagnosis = diagnose_infeasibility(lp)
    assert diagnosis.binding == []
    assert not diagnosis.isolated
    assert "no single constraint family" in diagnosis.render()


def test_compute_lower_bound_diagnoses_lp_infeasibility(small_topology, web_demand):
    """An unreachable replica constraint makes the LP (not the structure)
    infeasible; diagnose=True names the binding families in the reason."""
    from repro.core.costs import CostModel
    from repro.core.formulation import build_formulation
    from repro.core.goals import QoSGoal
    from repro.core.problem import MCPerfProblem

    problem = MCPerfProblem(
        topology=small_topology,
        demand=web_demand,
        goal=QoSGoal(tlat_ms=150.0, fraction=0.96),
        costs=CostModel.paper_defaults(),
    )
    props = HeuristicProperties(replica_constraint=ReplicaConstraint.UNIFORM)
    # Freeze the replica count at zero: origin-only service cannot reach the
    # goal, so the qos and rc families conflict.
    form = build_formulation(problem, props)
    assert form.rep_index is not None
    form.lp.set_bounds(form.rep_index, 0.0, 0.0)
    result = compute_lower_bound(
        problem, props, do_rounding=False, formulation=form, diagnose=True
    )
    assert not result.feasible
    assert result.status == "infeasible"
    assert "binding constraint families" in result.reason
    assert "diagnosis" in result.extras
