"""Tests for the independent solution checker."""

import pytest

from repro.lp.model import LinearProgram
from repro.audit.certificates import check_solution


def model():
    lp = LinearProgram()
    lp.var("x", upper=2.0, obj=1.0)
    lp.var("y", lower=1.0, obj=3.0)
    lp.add_row([0, 1], [1.0, 1.0], "<=", 3.0, name="cap")
    lp.add_row([0], [1.0], ">=", 0.5, name="floor")
    lp.add_row([1], [2.0], "==", 2.0, name="pin")
    return lp


def test_feasible_point_passes():
    report = check_solution(model(), [1.0, 1.0])
    assert report.feasible
    assert report.objective == pytest.approx(4.0)
    assert bool(report)


def test_upper_bound_violation():
    report = check_solution(model(), [2.5, 1.0])
    assert not report.feasible
    assert any(v.kind == "upper" for v in report.violations)


def test_lower_bound_violation():
    report = check_solution(model(), [1.0, 0.5])
    kinds = {v.kind for v in report.violations}
    assert "lower" in kinds


def test_le_violation_reported_with_amount():
    report = check_solution(model(), [2.0, 1.5])
    con = [v for v in report.violations if v.name == "cap"]
    assert con and con[0].amount == pytest.approx(0.5)


def test_ge_violation():
    report = check_solution(model(), [0.0, 1.0])
    assert any(v.name == "floor" for v in report.violations)


def test_eq_violation():
    report = check_solution(model(), [1.0, 1.4])
    assert any(v.name == "pin" for v in report.violations)


def test_tolerance_allows_small_slack():
    report = check_solution(model(), [2.0 + 1e-9, 1.0])
    assert report.feasible


def test_wrong_length_rejected():
    with pytest.raises(ValueError):
        check_solution(model(), [1.0])


def test_violation_str():
    report = check_solution(model(), [0.0, 1.0])
    text = str(report.violations[0])
    assert "violated by" in text
