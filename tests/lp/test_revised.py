"""Revised-simplex engine tests (ISSUE 9): cold contract, duals,
anti-cycling, the pure-Python kernel, and basis crashing."""

import numpy as np
import pytest

from repro.audit.certificates import check_solution
from repro.lp.basis import BASIC, Basis
from repro.lp.model import LinearProgram
from repro.lp.revised import (
    crash_basis_from_values,
    get_engine,
    solve_revised,
)
from repro.lp.solution import SolveStatus
from repro.perf import PERF


def mixed_lp():
    """4 vars, all three senses, one negative lower bound; optimum -1.0."""
    lp = LinearProgram(name="revised-mixed")
    lp.var("a", upper=2.0, obj=1.0)
    lp.var("b", lower=-1.0, upper=1.0, obj=-0.5)
    lp.var("c", upper=3.0, obj=0.25)
    lp.var("d", upper=1.0, obj=-1.0)
    lp.add_row([0, 1], [1.0, 1.0], ">=", 0.5)
    lp.add_row([1, 2], [1.0, 2.0], "<=", 4.0)
    lp.add_row([0, 3], [1.0, 1.0], "==", 1.5)
    return lp


def test_cold_solve_matches_scipy():
    lp = mixed_lp()
    got = solve_revised(lp)
    want = lp.solve(backend="scipy")
    assert got.status is SolveStatus.OPTIMAL
    assert got.objective == pytest.approx(want.objective, abs=1e-8)
    assert check_solution(lp, got.values).feasible


def test_duals_match_scipy():
    lp = mixed_lp()
    got = solve_revised(lp)
    want = lp.solve(backend="scipy")
    assert got.duals is not None and want.duals is not None
    np.testing.assert_allclose(got.duals, want.duals, atol=1e-7)


def test_solution_carries_wellformed_basis():
    lp = mixed_lp()
    sol = solve_revised(lp)
    assert isinstance(sol.basis, Basis)
    assert sol.basis.matches(lp.num_variables, lp.num_constraints)
    assert sol.basis.is_wellformed()


def test_beale_cycling_instance_terminates():
    # Beale (1955): cycles forever under naive Dantzig pricing with
    # fixed tie-breaks.  The Bland switch must drive it to the optimum.
    lp = LinearProgram(name="beale")
    lp.var("x1", obj=-0.75)
    lp.var("x2", obj=150.0)
    lp.var("x3", obj=-0.02)
    lp.var("x4", obj=6.0)
    lp.add_row([0, 1, 2, 3], [0.25, -60.0, -0.04, 9.0], "<=", 0.0)
    lp.add_row([0, 1, 2, 3], [0.5, -90.0, -0.02, 3.0], "<=", 0.0)
    lp.add_row([2], [1.0], "<=", 1.0)
    sol = solve_revised(lp, max_iterations=1_000)
    assert sol.status is SolveStatus.OPTIMAL
    assert sol.objective == pytest.approx(-0.05, abs=1e-9)


def test_degenerate_ties_terminate():
    # Many identical rows -> heavy ratio-test degeneracy.
    lp = LinearProgram(name="degenerate")
    for j in range(4):
        lp.var(f"x{j}", upper=1.0, obj=-1.0)
    for _ in range(6):
        lp.add_row([0, 1, 2, 3], [1.0, 1.0, 1.0, 1.0], "<=", 2.0)
    sol = solve_revised(lp, max_iterations=1_000)
    assert sol.status is SolveStatus.OPTIMAL
    assert sol.objective == pytest.approx(-2.0, abs=1e-8)


def test_pure_python_kernel(monkeypatch):
    monkeypatch.setenv("REPRO_LP_PURE", "1")
    lp = mixed_lp()
    sol = solve_revised(lp)
    engine = get_engine(lp)
    assert engine._sparse is None  # the numpy kernel really is in charge
    assert sol.status is SolveStatus.OPTIMAL
    assert sol.objective == pytest.approx(lp.solve(backend="scipy").objective, abs=1e-8)


def test_assembly_without_scipy(monkeypatch):
    # The engine reads the model's array cache, and assembly must not
    # require scipy: without it the cache carries RHS/bound vectors but
    # no CSR matrices (only the unreachable scipy backend misses them).
    import repro.lp.model as model_mod

    monkeypatch.setattr(model_mod, "_sparse", False)
    monkeypatch.setenv("REPRO_LP_PURE", "1")
    lp = mixed_lp()
    c, a_ub, b_ub, a_eq, b_eq, bounds = lp.to_arrays()
    assert a_ub is None and a_eq is None
    assert b_ub is not None and b_eq is not None
    sol = solve_revised(lp)
    assert sol.status is SolveStatus.OPTIMAL
    assert sol.objective == pytest.approx(-1.0, abs=1e-8)
    # The patch API still lands on the cached RHS vectors.
    lp.set_rhs(1, 3.0)
    patched = solve_revised(lp)
    assert patched.status is SolveStatus.OPTIMAL
    assert check_solution(lp, patched.values).feasible


def test_iteration_and_refactorization_counters():
    lp = mixed_lp()
    before_iter = PERF.get("lp.simplex.iterations")
    before_refac = PERF.get("lp.simplex.refactorizations")
    solve_revised(lp)
    assert PERF.get("lp.simplex.iterations") > before_iter
    assert PERF.get("lp.simplex.refactorizations") > before_refac


def test_crash_basis_from_scipy_point():
    lp = mixed_lp()
    sol = lp.solve(backend="scipy")
    assert sol.basis is None  # scipy exposes no basis: the crash earns one
    basis = crash_basis_from_values(lp, sol.values, duals=sol.duals)
    assert basis is not None
    assert basis.matches(lp.num_variables, lp.num_constraints)
    warm = solve_revised(lp, warm_basis=basis)
    assert warm.status is SolveStatus.OPTIMAL
    assert warm.objective == pytest.approx(sol.objective, abs=1e-8)


def test_crash_rejects_wrong_length():
    lp = mixed_lp()
    assert crash_basis_from_values(lp, np.zeros(lp.num_variables + 1)) is None


def test_crash_without_duals_is_triangular():
    lp = mixed_lp()
    sol = lp.solve(backend="scipy")
    basis = crash_basis_from_values(lp, sol.values)
    assert basis is not None
    assert int(np.count_nonzero(basis.statuses == BASIC)) == lp.num_constraints
