"""Property-style differential testing of the two LP backends.

Random small MC-PERF instances (seeded, so deterministic in CI) are solved
with both scipy/HiGHS and the pure-Python simplex; the objectives must agree
within the differential tolerance, the exact-arithmetic audit must accept
both solutions, and :func:`repro.audit.audit_differential` must report
agreement.  This is satellite (c) of the audit subsystem: the cross-backend
check that catches a miscompiled scipy or a simplex regression.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.audit import (
    DIFFERENTIAL_TOL,
    audit_differential,
    audit_lp_solution,
)
from repro.core.classes import get_class
from repro.core.costs import CostModel
from repro.core.formulation import build_formulation
from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.topology.generators import as_level_topology
from repro.workload.demand import DemandMatrix
from repro.workload.generators import web_workload

SEEDS = [3, 11, 29, 47]


def random_problem(seed):
    """A small random MC-PERF instance, different per seed."""
    rng = np.random.default_rng(seed)
    num_nodes = int(rng.integers(4, 7))
    num_objects = int(rng.integers(2, 5))
    trace = web_workload(
        num_nodes=num_nodes,
        num_objects=num_objects,
        requests_scale=0.01,
        duration_s=7200.0,
        seed=seed,
    )
    demand = DemandMatrix.from_trace(trace, num_intervals=2)
    level = float(rng.choice([0.6, 0.75, 0.9]))
    tlat = float(rng.choice([100.0, 150.0]))
    return MCPerfProblem(
        topology=as_level_topology(num_nodes=num_nodes, seed=seed),
        demand=demand,
        goal=QoSGoal(tlat_ms=tlat, fraction=level),
        costs=CostModel.paper_defaults(),
    )


@pytest.fixture(params=SEEDS, ids=[f"seed{s}" for s in SEEDS])
def formulation(request):
    problem = random_problem(request.param)
    cls = get_class(
        ["general", "storage-constrained", "replica-constrained"][
            request.param % 3
        ]
    )
    return build_formulation(problem, cls.properties)


def test_backends_agree_and_both_pass_exact_audit(formulation):
    lp = formulation.lp
    scipy_sol = lp.solve(backend="scipy")
    simplex_sol = lp.solve(backend="simplex")

    assert scipy_sol.status == simplex_sol.status
    if not scipy_sol.is_optimal:
        return  # both agree the instance is infeasible — nothing to compare

    scale = max(1.0, abs(scipy_sol.objective))
    assert abs(scipy_sol.objective - simplex_sol.objective) <= (
        DIFFERENTIAL_TOL * scale * 10
    ), (
        f"objective disagreement: scipy={scipy_sol.objective!r} "
        f"simplex={simplex_sol.objective!r}"
    )

    for name, solution in (("scipy", scipy_sol), ("simplex", simplex_sol)):
        report = audit_lp_solution(lp, solution, mode="full")
        assert report.ok, f"{name} solution failed exact audit:\n{report.render()}"


def test_audit_differential_reports_agreement(formulation):
    lp = formulation.lp
    scipy_sol = lp.solve(backend="scipy")
    report = audit_differential(lp, scipy_sol, mode="full")
    assert report.ok, report.render()
    assert "differential" in report.checks or report.skipped


def test_audit_differential_flags_forged_objective(formulation):
    import dataclasses

    lp = formulation.lp
    scipy_sol = lp.solve(backend="scipy")
    if not scipy_sol.is_optimal:
        pytest.skip("instance infeasible; no objective to forge")
    forged = dataclasses.replace(
        scipy_sol, objective=scipy_sol.objective + 10.0
    )
    report = audit_differential(lp, forged, mode="full")
    assert not report.ok
    assert any(v.check == "differential" for v in report.violations)
