"""Warm-start equivalence and degradation tests (ISSUE 9).

The invariant: a warm-started re-solve is a *performance hint only* — for
any patch sequence it must land on the same optimum a cold solve finds,
and any defect in the hint (stale shape, malformed statuses, disabled via
environment) must degrade to the cold path rather than fail.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp.basis import AT_LOWER, Basis
from repro.lp.branch_bound import solve_integer
from repro.lp.model import LinearProgram
from repro.lp.solution import LPSolution, SolveStatus
from repro.perf import PERF
from repro.solvers.registry import solve_lp


def build_random_lp(seed, nvars=8, nrows=6):
    rng = np.random.default_rng(seed)
    lp = LinearProgram(name=f"warm-{seed}")
    for j in range(nvars):
        lp.var(f"x{j}", upper=float(rng.uniform(0.5, 3.0)), obj=float(rng.uniform(-2, 2)))
    for _ in range(nrows):
        k = int(rng.integers(2, 5))
        idx = sorted(int(i) for i in rng.choice(nvars, size=k, replace=False))
        coeffs = [float(v) for v in rng.uniform(0.2, 2.0, size=k)]
        sense = [">=", "<="][int(rng.integers(0, 2))]
        rhs = float(rng.uniform(0.5, 2.5))
        lp.add_row(idx, coeffs, sense, rhs)
    return lp


def apply_random_patch(lp, rng):
    """One patch from the supported re-solve vocabulary, chosen at random."""
    kind = int(rng.integers(0, 3))
    if kind == 0:
        row = int(rng.integers(0, lp.num_constraints))
        lp.set_rhs(row, float(rng.uniform(0.3, 2.0)))
    elif kind == 1:
        var = int(rng.integers(0, lp.num_variables))
        lp.set_bounds(var, lower=0.0, upper=float(rng.uniform(0.5, 3.0)))
    else:
        var = int(rng.integers(0, lp.num_variables))
        lp.fix_var(var, float(rng.uniform(0.0, 0.5)))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), patches=st.integers(1, 4))
def test_warm_equals_cold_across_patches(seed, patches):
    # The same model, the same patch sequence, two solve strategies.
    warm_lp = build_random_lp(seed)
    cold_lp = build_random_lp(seed)
    prev = warm_lp.solve(backend="scipy")
    for rng in (np.random.default_rng(seed + 1),):
        for _ in range(patches):
            state = rng.bit_generator.state
            apply_random_patch(warm_lp, rng)
            rng.bit_generator.state = state
            apply_random_patch(cold_lp, rng)
    warm = solve_lp(warm_lp, backend="scipy", warm_start=prev if prev.is_optimal else None)
    cold = cold_lp.solve(backend="scipy")
    assert warm.status is cold.status
    if cold.is_optimal:
        assert warm.objective == pytest.approx(cold.objective, abs=1e-6)


def test_chained_warm_solves_keep_exactness():
    lp = build_random_lp(3)
    cold_ref = build_random_lp(3)
    prev = lp.solve(backend="scipy")
    rng = np.random.default_rng(99)
    for _ in range(5):
        row = int(rng.integers(0, lp.num_constraints))
        rhs = float(rng.uniform(0.3, 2.0))
        lp.set_rhs(row, rhs)
        cold_ref.set_rhs(row, rhs)
        sol = solve_lp(lp, backend="scipy", warm_start=prev)
        cold = cold_ref.solve(backend="scipy")
        assert sol.status is cold.status
        if cold.is_optimal:
            assert sol.objective == pytest.approx(cold.objective, abs=1e-7)
            prev = sol  # second link onward is basis-to-basis
        else:
            prev = None


def test_solution_dict_roundtrip_preserves_basis():
    lp = build_random_lp(5)
    sol = lp.solve(backend="simplex")
    assert isinstance(sol.basis, Basis)
    back = LPSolution.from_dict(sol.to_dict())
    assert isinstance(back.basis, Basis)
    np.testing.assert_array_equal(back.basis.statuses, sol.basis.statuses)
    # The deserialized handle must still warm-start.
    lp.set_rhs(0, 1.1)
    warm = solve_lp(lp, backend="scipy", warm_start=back)
    assert warm.objective == pytest.approx(lp.solve(backend="scipy").objective, abs=1e-7)


def test_absent_or_corrupt_basis_payload_degrades():
    lp = build_random_lp(6)
    sol = lp.solve(backend="simplex")
    payload = sol.to_dict()
    payload["basis"] = {"statuses": "garbage"}
    back = LPSolution.from_dict(payload)
    assert back.basis is None  # tolerant decode: corrupt -> cold re-solve
    payload.pop("basis")
    assert LPSolution.from_dict(payload).basis is None


def test_stale_shape_basis_falls_back_to_cold():
    lp = build_random_lp(7)
    wrong = Basis(statuses=np.full(3, AT_LOWER, dtype=np.int8), nvars=2, nrows=1)
    before = PERF.get("lp.simplex.warm_starts")
    sol = solve_lp(lp, backend="scipy", warm_start=wrong)
    assert sol.status is SolveStatus.OPTIMAL
    assert PERF.get("lp.simplex.warm_starts") == before
    assert sol.objective == pytest.approx(lp.solve(backend="scipy").objective, abs=1e-8)


def test_malformed_statuses_degrade_not_crash():
    lp = build_random_lp(8)
    n, m = lp.num_variables, lp.num_constraints
    # Right shape, nonsense content: zero basic columns.
    bogus = Basis(statuses=np.full(n + m, AT_LOWER, dtype=np.int8), nvars=n, nrows=m)
    before = PERF.get("lp.simplex.warm_degraded")
    sol = solve_lp(lp, backend="scipy", warm_start=bogus)
    assert sol.status is SolveStatus.OPTIMAL
    assert sol.objective == pytest.approx(lp.solve(backend="scipy").objective, abs=1e-8)
    assert PERF.get("lp.simplex.warm_degraded") > before


def test_kill_switch_disables_warm_path(monkeypatch):
    monkeypatch.setenv("REPRO_LP_WARM", "0")
    lp = build_random_lp(9)
    prev = lp.solve(backend="simplex")
    lp.set_rhs(0, 0.9)
    before = PERF.get("lp.simplex.warm_starts")
    sol = solve_lp(lp, backend="scipy", warm_start=prev)
    assert sol.is_optimal
    assert PERF.get("lp.simplex.warm_starts") == before


def test_branch_and_bound_children_warm_start():
    rng = np.random.default_rng(7)
    lp = LinearProgram(name="bb-warm")
    n = 30
    for i, c in enumerate(rng.uniform(1, 10, n)):
        lp.var(f"x{i}", upper=1.0, obj=float(c))
    for _ in range(20):
        idx = sorted(int(i) for i in rng.choice(n, size=5, replace=False))
        lp.add_row(idx, [1.0] * 5, ">=", 2.0)
    before = PERF.get("lp.simplex.warm_starts")
    result = solve_integer(lp, list(range(n)), node_limit=200)
    assert result.status == "optimal"
    if result.nodes > 1:  # children exist -> at least one warm start
        assert PERF.get("lp.simplex.warm_starts") > before
