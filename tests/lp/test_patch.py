"""Patch API and cached-assembly tests (ISSUE 4 hot-path layer).

The invariant under test throughout: a model mutated through the patch API
(``fix_var`` / ``set_bounds`` / ``set_rhs``) hands the solver exactly the
arrays a cold rebuild of the same model would — without re-running assembly.
"""

import pickle

import numpy as np
import pytest

from repro.lp.model import Constraint, ConstraintList, LinearProgram, Sense
from repro.perf import PERF


def small_lp():
    """3 vars, mixed senses: one LE row, one GE row (flip path), one EQ row."""
    lp = LinearProgram(name="patch-test")
    x = lp.var("x", upper=4.0, obj=1.0)
    y = lp.var("y", upper=4.0, obj=2.0)
    z = lp.var("z", upper=4.0, obj=0.5)
    lp.add_row([x.index, y.index], [1.0, 1.0], "<=", 5.0, name="le")
    lp.add_row([x.index, z.index], [1.0, 1.0], ">=", 2.0, name="ge")
    lp.add_row([y.index, z.index], [1.0, -1.0], "==", 0.5, name="eq")
    return lp


def bulk_lp(nrows=12, nvars=6):
    """A model whose rows all come from one add_rows_bulk block (GE sense)."""
    lp = LinearProgram(name="bulk-test")
    lp.var_block("x", nvars, upper=1.0, obj=1.0)
    indices = np.array([[j % nvars, (j + 1) % nvars] for j in range(nrows)]).ravel()
    coeffs = np.ones(2 * nrows)
    indptr = np.arange(0, 2 * nrows + 1, 2)
    rhs = np.linspace(0.1, 0.5, nrows)
    lp.add_rows_bulk(indptr, indices, coeffs, ">=", rhs)
    return lp


def assert_arrays_match(lp_patched, lp_cold):
    """The patched cache must equal a cold assembly of an identical model."""
    got = lp_patched.to_arrays()
    want = lp_cold.to_arrays()
    for g, w, label in zip(got, want, ["c", "A_ub", "b_ub", "A_eq", "b_eq", "bounds"]):
        if label.startswith("A_"):
            assert (g is None) == (w is None), label
            if g is not None:
                assert (g != w).nnz == 0, label
        elif label == "bounds":
            assert list(g) == list(w), label
        else:
            assert (g is None) == (w is None), label
            if g is not None:
                np.testing.assert_array_equal(np.asarray(g), np.asarray(w), err_msg=label)


# -- cache lifecycle ---------------------------------------------------------


def test_to_arrays_is_cached():
    lp = small_lp()
    before = PERF.get("lp.assembly.reuse")
    first = lp.to_arrays()
    second = lp.to_arrays()
    assert PERF.get("lp.assembly.reuse") == before + 1
    # Identical objects, not merely equal: the cache is served as-is.
    assert first[0] is second[0]
    assert first[1] is second[1]


def test_structural_edits_invalidate():
    lp = small_lp()
    lp.to_arrays()
    lp.var("w", upper=1.0)
    rebuilds = PERF.get("lp.assembly.rebuild")
    c, *_ = lp.to_arrays()
    assert PERF.get("lp.assembly.rebuild") == rebuilds + 1
    assert len(c) == 4

    lp.add_row([0], [1.0], "<=", 1.0)
    rebuilds = PERF.get("lp.assembly.rebuild")
    lp.to_arrays()
    assert PERF.get("lp.assembly.rebuild") == rebuilds + 1


def test_bulk_rows_invalidate():
    lp = bulk_lp()
    lp.to_arrays()
    lp.add_rows_bulk([0, 1], [0], [1.0], "<=", [1.0])
    rebuilds = PERF.get("lp.assembly.rebuild")
    _, a_ub, b_ub, _, _, _ = lp.to_arrays()
    assert PERF.get("lp.assembly.rebuild") == rebuilds + 1
    assert a_ub.shape[0] == 13


# -- patches equal a cold rebuild -------------------------------------------


def test_fix_var_patches_cached_arrays():
    lp = small_lp()
    lp.to_arrays()  # prime the cache
    rebuilds = PERF.get("lp.assembly.rebuild")
    lp.fix_var(1, 0.75)

    cold = small_lp()
    cold.fix_var(1, 0.75)
    cold._arrays = None  # force the cold path
    assert_arrays_match(lp, cold)
    # The patched model never re-assembled.
    assert PERF.get("lp.assembly.rebuild") == rebuilds + 1  # +1 is the cold model


def test_set_bounds_patches_cached_arrays():
    lp = small_lp()
    lp.to_arrays()
    lp.set_bounds(0, 0.25, 3.0)
    lp.set_bounds(2, 0.0, None)

    cold = small_lp()
    cold.set_bounds(0, 0.25, 3.0)
    cold.set_bounds(2, 0.0, None)
    cold._arrays = None
    assert_arrays_match(lp, cold)


def test_set_rhs_patches_all_senses():
    lp = small_lp()
    lp.to_arrays()
    lp.set_rhs(0, 7.0)   # LE
    lp.set_rhs(1, 3.5)   # GE (flip path)
    lp.set_rhs(2, -1.0)  # EQ

    cold = small_lp()
    cold.set_rhs(0, 7.0)
    cold.set_rhs(1, 3.5)
    cold.set_rhs(2, -1.0)
    cold._arrays = None
    assert_arrays_match(lp, cold)


def test_ge_rhs_stored_negated():
    """>= rows live negated in A_ub; a patched rhs must flip sign with them."""
    lp = small_lp()
    _, _, b_ub, _, _, _ = lp.to_arrays()
    # Rows: le (rhs 5), ge (rhs 2, stored as -2).
    assert b_ub[0] == pytest.approx(5.0)
    assert b_ub[1] == pytest.approx(-2.0)
    lp.set_rhs(1, 3.5)
    _, _, b_ub, _, _, _ = lp.to_arrays()
    assert b_ub[1] == pytest.approx(-3.5)
    assert lp.constraints[1].rhs == pytest.approx(3.5)


def test_patch_before_assembly_is_safe():
    """Patching with no cache yet just edits the model; first assembly sees it."""
    lp = small_lp()
    lp.fix_var(0, 1.0)
    lp.set_rhs(2, 9.0)
    c, a_ub, b_ub, a_eq, b_eq, bounds = lp.to_arrays()
    assert bounds[0] == (1.0, 1.0)
    assert b_eq[0] == pytest.approx(9.0)


def test_objective_patches():
    lp = small_lp()
    c0, *_ = lp.to_arrays()
    lp.set_objective(0, 10.0)
    lp.add_objective(2, 1.5)
    c1, *_ = lp.to_arrays()
    assert c1 is c0  # patched in place, no rebuild
    assert c1[0] == pytest.approx(10.0)
    assert c1[2] == pytest.approx(2.0)
    assert lp.variables[0].objective == pytest.approx(10.0)


def test_incremental_resolve_matches_cold_solve():
    """A solve after fix_var patches equals a cold solve of the fixed model."""
    lp = bulk_lp()
    lp.solve(backend="auto")  # prime cache via initial solve
    rebuilds = PERF.get("lp.assembly.rebuild")
    lp.fix_var(0, 1.0)
    lp.fix_var(3, 0.0)
    warm = lp.solve(backend="auto")
    assert PERF.get("lp.assembly.rebuild") == rebuilds  # assembly-free re-solve

    cold = bulk_lp()
    cold.fix_var(0, 1.0)
    cold.fix_var(3, 0.0)
    cold_sol = cold.solve(backend="auto")
    assert warm.status == cold_sol.status
    assert warm.objective == pytest.approx(cold_sol.objective, abs=1e-9)
    np.testing.assert_allclose(warm.values, cold_sol.values, atol=1e-8)


# -- _RowBlock / ConstraintList ----------------------------------------------


def test_block_rows_materialize_lazily():
    lp = bulk_lp(nrows=5)
    cons = lp.constraints
    assert len(cons) == 5
    row = cons[2]
    assert isinstance(row, Constraint)
    assert row.sense is Sense.GE
    assert list(row.indices) == [2, 3]
    assert cons[2] is row  # memoized
    assert cons[-1].name == "c4"  # auto names are global row ids


def test_block_named_rows():
    lp = LinearProgram()
    lp.var_block("x", 2)
    lp.add_rows_bulk([0, 1, 2], [0, 1], [1.0, 1.0], "<=", [1.0, 2.0], names=["a", "b"])
    assert [c.name for c in lp.constraints] == ["a", "b"]


def test_constraint_list_iteration_and_slices():
    lp = small_lp()
    lp.add_rows_bulk([0, 1, 2], [0, 1], [1.0, 1.0], "<=", [1.0, 2.0])
    cons = lp.constraints
    assert len(cons) == 5
    assert [c.name for c in cons] == ["le", "ge", "eq", "c3", "c4"]
    assert [c.rhs for c in cons[3:]] == [1.0, 2.0]
    assert cons[-2].rhs == 1.0
    with pytest.raises(IndexError):
        cons[5]


def test_set_rhs_before_and_after_materialization():
    lp = bulk_lp(nrows=4)
    # Patch before anyone materialized the row.
    lp.set_rhs(1, 9.0)
    assert lp.constraints[1].rhs == pytest.approx(9.0)
    # Patch after materialization: the cached Constraint must stay coherent.
    row = lp.constraints[2]
    lp.set_rhs(2, 8.0)
    assert row.rhs == pytest.approx(8.0)
    assert lp.constraints[2].rhs == pytest.approx(8.0)


def test_constraint_list_equality_with_plain_list():
    lp = bulk_lp(nrows=3)
    as_list = list(lp.constraints)
    assert lp.constraints == as_list
    assert lp.constraints == ConstraintList(as_list)
    assert not (lp.constraints == as_list[:2])


def test_constraint_list_wraps_plain_lists():
    rows = [Constraint("a", [0], [1.0], Sense.LE, 1.0)]
    lp = LinearProgram(name="wrapped", constraints=rows)
    assert isinstance(lp.constraints, ConstraintList)
    assert lp.constraints[0].name == "a"


def test_mixed_segments_columnar_assembly():
    """Object rows and block rows interleaved assemble in declaration order."""
    lp = LinearProgram()
    lp.var_block("x", 3, upper=1.0, obj=1.0)
    lp.add_row([0], [1.0], "<=", 0.5, name="head")
    lp.add_rows_bulk([0, 1, 2], [1, 2], [1.0, 1.0], ">=", [0.1, 0.2])
    lp.add_row([0, 2], [1.0, 1.0], "<=", 1.5, name="tail")
    c, a_ub, b_ub, a_eq, b_eq, bounds = lp.to_arrays()
    assert a_eq is None
    dense = a_ub.toarray()
    np.testing.assert_allclose(dense[0], [1.0, 0.0, 0.0])
    np.testing.assert_allclose(dense[1], [0.0, -1.0, 0.0])  # GE negated
    np.testing.assert_allclose(dense[2], [0.0, 0.0, -1.0])
    np.testing.assert_allclose(dense[3], [1.0, 0.0, 1.0])
    np.testing.assert_allclose(b_ub, [0.5, -0.1, -0.2, 1.5])


# -- add_rows_bulk validation ------------------------------------------------


def test_add_rows_bulk_validation():
    lp = LinearProgram()
    lp.var_block("x", 2)
    with pytest.raises(ValueError, match="rhs has"):
        lp.add_rows_bulk([0, 1], [0], [1.0], "<=", [1.0, 2.0])
    with pytest.raises(ValueError, match="names has"):
        lp.add_rows_bulk([0, 1], [0], [1.0], "<=", [1.0], names=["a", "b"])
    with pytest.raises(ValueError, match="indptr must start"):
        lp.add_rows_bulk([1, 2], [0, 1], [1.0, 1.0], "<=", [1.0])
    with pytest.raises(ValueError, match="same length"):
        lp.add_rows_bulk([0, 1], [0], [1.0, 2.0], "<=", [1.0])
    with pytest.raises(ValueError, match="non-decreasing"):
        lp.add_rows_bulk([0, 2, 1, 3], [0, 1, 0], [1.0] * 3, "<=", [1.0] * 3)
    with pytest.raises(IndexError, match="unknown variable"):
        lp.add_rows_bulk([0, 1], [7], [1.0], "<=", [1.0])
    with pytest.raises(ValueError, match="unknown constraint sense"):
        lp.add_rows_bulk([0, 1], [0], [1.0], "!=", [1.0])
    # Nothing was appended by the failed calls.
    assert len(lp.constraints) == 0


def test_add_vars_bulk_duplicate_rolls_back():
    lp = LinearProgram()
    lp.var("x[1]")
    with pytest.raises(ValueError, match="duplicate variable name"):
        lp.var_block("x", 3)
    # The name table and variable list are back to their pre-call state.
    assert lp.num_variables == 1
    assert lp.variable_by_name("x[1]").index == 0
    lp.var("y")  # still usable
    assert lp.num_variables == 2


def test_add_vars_bulk_per_var_bounds_validation():
    lp = LinearProgram()
    with pytest.raises(ValueError, match="upper"):
        lp.add_vars_bulk(["a", "b"], lower=[0.0, 2.0], upper=[1.0, 1.0])
    assert lp.num_variables == 0


# -- pickling (multiprocessing workers ship whole models) --------------------


def test_model_with_blocks_pickles():
    lp = bulk_lp()
    lp.to_arrays()
    clone = pickle.loads(pickle.dumps(lp))
    assert clone.num_constraints == lp.num_constraints
    assert clone.constraints[3].rhs == pytest.approx(lp.constraints[3].rhs)
    a = lp.solve(backend="auto")
    b = clone.solve(backend="auto")
    assert a.objective == pytest.approx(b.objective, abs=1e-9)
