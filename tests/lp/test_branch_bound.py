"""Tests for the branch-and-bound 0/1 solver."""

import numpy as np
import pytest

from repro.lp.branch_bound import IPResult, solve_integer
from repro.lp.model import LinearProgram
from repro.audit.certificates import check_solution


def knapsack(values, weights, capacity):
    """max Σ v x  <=>  min Σ -v x  s.t.  Σ w x <= capacity, x binary."""
    lp = LinearProgram()
    for j, v in enumerate(values):
        lp.var(f"x{j}", upper=1.0, obj=-float(v))
    lp.add_row(list(range(len(values))), [float(w) for w in weights], "<=", float(capacity))
    return lp


def test_knapsack_exact_optimum():
    # values 10, 6, 4; weights 5, 4, 3; capacity 7:
    # {10} (w=5) and {6, 4} (w=7) both reach value 10; {10, 4} is too heavy.
    lp = knapsack([10, 6, 4], [5, 4, 3], 7)
    result = solve_integer(lp, [0, 1, 2])
    assert result.status == "optimal"
    assert result.objective == pytest.approx(-10.0)
    assert check_solution(lp, result.values).feasible


def test_knapsack_brute_force_agreement():
    import itertools

    rng = np.random.default_rng(11)
    values = rng.integers(1, 15, size=8)
    weights = rng.integers(1, 10, size=8)
    capacity = int(weights.sum() // 2)
    lp = knapsack(values, weights, capacity)
    result = solve_integer(lp, list(range(8)), node_limit=100_000)
    best = min(
        -float(values[np.array(bits, dtype=bool)].sum())
        for bits in itertools.product([0, 1], repeat=8)
        if float(weights[np.array(bits, dtype=bool)].sum()) <= capacity
    )
    assert result.status == "optimal"
    assert result.objective == pytest.approx(best)


def test_integral_lp_needs_one_node():
    lp = LinearProgram()
    lp.var("x", upper=1.0, obj=1.0)
    lp.add_row([0], [1.0], ">=", 1.0)
    result = solve_integer(lp, [0])
    assert result.status == "optimal"
    assert result.objective == pytest.approx(1.0)
    assert result.nodes == 1


def test_infeasible_detected():
    lp = LinearProgram()
    lp.var("x", upper=1.0)
    lp.add_row([0], [1.0], ">=", 2.0)
    result = solve_integer(lp, [0])
    assert result.status == "infeasible"
    assert result.objective is None


def test_fractional_lp_with_integral_gap():
    # min x0 + x1 s.t. x0 + x1 >= 1.5 over binaries: LP = 1.5, IP = 2.
    lp = LinearProgram()
    lp.var("a", upper=1.0, obj=1.0)
    lp.var("b", upper=1.0, obj=1.0)
    lp.add_row([0, 1], [1.0, 1.0], ">=", 1.5)
    result = solve_integer(lp, [0, 1])
    assert result.status == "optimal"
    assert result.objective == pytest.approx(2.0)
    assert result.best_bound == pytest.approx(2.0)
    assert result.gap == pytest.approx(0.0)


def test_node_limit_returns_valid_bracket():
    # A wider instance; with node_limit=1 only the root is solved.
    rng = np.random.default_rng(3)
    values = rng.integers(5, 20, size=10)
    weights = rng.integers(3, 9, size=10)
    lp = knapsack(values, weights, 20)
    full = solve_integer(lp, list(range(10)), node_limit=100_000)
    limited = solve_integer(lp, list(range(10)), node_limit=2)
    assert full.status == "optimal"
    assert limited.status in ("optimal", "node-limit")
    assert limited.best_bound <= full.objective + 1e-9


def test_incumbent_objective_only_seed():
    lp = knapsack([10, 6, 4], [5, 4, 3], 7)
    # Seed with the known optimum (objective only, no values).
    result = solve_integer(lp, [0, 1, 2], incumbent=(-14.0, None))
    assert result.status == "optimal"
    assert result.objective == pytest.approx(-14.0)


def test_bad_integer_bounds_rejected():
    lp = LinearProgram()
    lp.var("x", upper=5.0)
    with pytest.raises(ValueError, match="within"):
        solve_integer(lp, [0])


def test_mixed_integer_continuous():
    # One binary decision plus a continuous helper.
    lp = LinearProgram()
    x = lp.var("x", upper=1.0, obj=3.0)  # binary
    y = lp.var("y", upper=10.0, obj=1.0)  # continuous
    lp.add_row([x.index, y.index], [2.0, 1.0], ">=", 3.0)
    result = solve_integer(lp, [x.index])
    assert result.status == "optimal"
    # x=1, y=1 -> 4 vs x=0, y=3 -> 3: continuous-only is cheaper.
    assert result.objective == pytest.approx(3.0)
    assert result.values[x.index] == pytest.approx(0.0)
