"""Unit tests for the LP model container."""

import numpy as np
import pytest

from repro.lp.model import LinearProgram, Sense


def test_var_assigns_sequential_indices():
    lp = LinearProgram()
    x = lp.var("x")
    y = lp.var("y")
    assert (x.index, y.index) == (0, 1)


def test_duplicate_variable_name_rejected():
    lp = LinearProgram()
    lp.var("x")
    with pytest.raises(ValueError, match="duplicate"):
        lp.var("x")


def test_invalid_bounds_rejected():
    lp = LinearProgram()
    with pytest.raises(ValueError):
        lp.var("x", lower=2.0, upper=1.0)


def test_var_block_names_and_range():
    lp = LinearProgram()
    rng = lp.var_block("s", 3, upper=1.0, obj=2.0)
    assert list(rng) == [0, 1, 2]
    assert lp.variable_by_name("s[1]").objective == 2.0


def test_var_block_negative_count_rejected():
    lp = LinearProgram()
    with pytest.raises(ValueError):
        lp.var_block("s", -1)


def test_fix_variable():
    lp = LinearProgram()
    x = lp.var("x", upper=5.0)
    lp.fix(x.index, 2.0)
    assert lp.variables[0].lower == 2.0
    assert lp.variables[0].upper == 2.0


def test_add_expression_constraint():
    lp = LinearProgram()
    x = lp.var("x")
    y = lp.var("y")
    con = lp.add(x.expr() + 2 * y.expr() <= 4, name="cap")
    assert con.sense is Sense.LE
    assert con.rhs == 4.0
    assert sorted(zip(con.indices, con.coeffs)) == [(0, 1.0), (1, 2.0)]


def test_add_rejects_non_spec():
    lp = LinearProgram()
    with pytest.raises(TypeError):
        lp.add("x <= 1")  # type: ignore[arg-type]


def test_add_row_length_mismatch():
    lp = LinearProgram()
    lp.var("x")
    with pytest.raises(ValueError):
        lp.add_row([0], [1.0, 2.0], "<=", 1.0)


def test_add_row_unknown_variable():
    lp = LinearProgram()
    lp.var("x")
    with pytest.raises(IndexError):
        lp.add_row([5], [1.0], "<=", 1.0)


def test_add_row_bad_sense():
    lp = LinearProgram()
    lp.var("x")
    with pytest.raises(ValueError):
        lp.add_row([0], [1.0], "!!", 1.0)


def test_constraint_activity_and_satisfied():
    lp = LinearProgram()
    lp.var("x")
    lp.var("y")
    con = lp.add_row([0, 1], [1.0, 1.0], "<=", 3.0)
    assert con.activity([1.0, 1.0]) == pytest.approx(2.0)
    assert con.satisfied([1.0, 1.0])
    assert not con.satisfied([2.0, 2.0])


def test_equality_constraint_satisfied():
    lp = LinearProgram()
    lp.var("x")
    con = lp.add_row([0], [1.0], "==", 2.0)
    assert con.satisfied([2.0])
    assert not con.satisfied([2.1])


def test_to_arrays_shapes_and_ge_flip():
    lp = LinearProgram()
    lp.var("x", obj=1.0)
    lp.var("y", obj=2.0, upper=4.0)
    lp.add_row([0, 1], [1.0, 1.0], ">=", 2.0)
    lp.add_row([0], [1.0], "<=", 5.0)
    lp.add_row([1], [1.0], "==", 3.0)
    c, a_ub, b_ub, a_eq, b_eq, bounds = lp.to_arrays()
    assert list(c) == [1.0, 2.0]
    assert a_ub.shape == (2, 2)
    # the >= row is negated into <= form
    assert b_ub[0] == -2.0
    assert a_ub.toarray()[0].tolist() == [-1.0, -1.0]
    assert a_eq.shape == (1, 2)
    assert b_eq[0] == 3.0
    assert bounds == [(0.0, None), (0.0, 4.0)]


def test_to_arrays_empty_groups_are_none():
    lp = LinearProgram()
    lp.var("x")
    _c, a_ub, b_ub, a_eq, b_eq, _bounds = lp.to_arrays()
    assert a_ub is None and b_ub is None
    assert a_eq is None and b_eq is None


def test_set_and_add_objective():
    lp = LinearProgram()
    x = lp.var("x", obj=1.0)
    lp.add_objective(x.index, 2.0)
    assert lp.variables[0].objective == 3.0
    lp.set_objective(x.index, 5.0)
    assert lp.variables[0].objective == 5.0


def test_solve_unknown_backend():
    lp = LinearProgram()
    lp.var("x")
    with pytest.raises(ValueError, match="backend"):
        lp.solve(backend="cplex")


def test_empty_model_solves_to_zero():
    lp = LinearProgram()
    sol = lp.solve()
    assert sol.is_optimal
    assert sol.objective == 0.0


def test_repr_mentions_sizes():
    lp = LinearProgram(name="m")
    lp.var("x")
    lp.add_row([0], [1.0], "<=", 1.0)
    assert "vars=1" in repr(lp)
    assert "constraints=1" in repr(lp)
