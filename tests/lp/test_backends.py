"""Solver-backend tests: scipy/HiGHS, the pure-Python simplex, and their
differential agreement on randomized instances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp.model import LinearProgram
from repro.lp.solution import SolveStatus
from repro.audit.certificates import check_solution

BACKENDS = ["scipy", "simplex"]


def diet_lp():
    """min x + 2y  s.t.  x + y >= 2, x <= 3, y <= 3  ->  optimum 2 at (2, 0)."""
    lp = LinearProgram()
    lp.var("x", upper=3.0, obj=1.0)
    lp.var("y", upper=3.0, obj=2.0)
    lp.add_row([0, 1], [1.0, 1.0], ">=", 2.0)
    return lp


@pytest.mark.parametrize("backend", BACKENDS)
def test_simple_optimum(backend):
    sol = diet_lp().solve(backend=backend)
    assert sol.status is SolveStatus.OPTIMAL
    assert sol.objective == pytest.approx(2.0, abs=1e-6)
    assert sol.values[0] == pytest.approx(2.0, abs=1e-6)
    assert sol.values[1] == pytest.approx(0.0, abs=1e-6)


@pytest.mark.parametrize("backend", BACKENDS)
def test_equality_constraint(backend):
    lp = LinearProgram()
    lp.var("x", obj=1.0)
    lp.var("y", obj=1.0)
    lp.add_row([0, 1], [1.0, 1.0], "==", 4.0)
    lp.add_row([0, 1], [1.0, -1.0], "<=", 0.0)  # x <= y
    sol = lp.solve(backend=backend)
    assert sol.is_optimal
    assert sol.objective == pytest.approx(4.0, abs=1e-6)
    assert check_solution(lp, sol.values).feasible


@pytest.mark.parametrize("backend", BACKENDS)
def test_infeasible_detected(backend):
    lp = LinearProgram()
    lp.var("x", upper=1.0)
    lp.add_row([0], [1.0], ">=", 2.0)
    sol = lp.solve(backend=backend)
    assert sol.status is SolveStatus.INFEASIBLE


@pytest.mark.parametrize("backend", BACKENDS)
def test_unbounded_detected(backend):
    lp = LinearProgram()
    lp.var("x", obj=-1.0)  # minimize -x with x unbounded above
    sol = lp.solve(backend=backend)
    assert sol.status is SolveStatus.UNBOUNDED


@pytest.mark.parametrize("backend", BACKENDS)
def test_lower_bounds_shift(backend):
    lp = LinearProgram()
    lp.var("x", lower=1.5, obj=2.0)
    sol = lp.solve(backend=backend)
    assert sol.is_optimal
    assert sol.objective == pytest.approx(3.0, abs=1e-6)
    assert sol.values[0] == pytest.approx(1.5, abs=1e-6)


@pytest.mark.parametrize("backend", BACKENDS)
def test_negative_lower_bounds(backend):
    lp = LinearProgram()
    lp.var("x", lower=-2.0, upper=2.0, obj=1.0)
    sol = lp.solve(backend=backend)
    assert sol.is_optimal
    assert sol.values[0] == pytest.approx(-2.0, abs=1e-6)


@pytest.mark.parametrize("backend", BACKENDS)
def test_degenerate_redundant_equalities(backend):
    lp = LinearProgram()
    lp.var("x", obj=1.0)
    lp.var("y", obj=1.0)
    lp.add_row([0, 1], [1.0, 1.0], "==", 2.0)
    lp.add_row([0, 1], [2.0, 2.0], "==", 4.0)  # redundant copy
    sol = lp.solve(backend=backend)
    assert sol.is_optimal
    assert sol.objective == pytest.approx(2.0, abs=1e-6)


def test_require_optimal_raises_on_infeasible():
    lp = LinearProgram()
    lp.var("x", upper=1.0)
    lp.add_row([0], [1.0], ">=", 2.0)
    with pytest.raises(RuntimeError, match="infeasible"):
        lp.solve().require_optimal()


def test_solution_by_name():
    lp = diet_lp()
    sol = lp.solve()
    assert sol.by_name(lp, "x") == pytest.approx(2.0, abs=1e-6)


@st.composite
def random_lp(draw):
    """Small random LPs with a guaranteed-feasible region (0 is feasible)."""
    n = draw(st.integers(min_value=1, max_value=4))
    m = draw(st.integers(min_value=0, max_value=4))
    lp = LinearProgram()
    for j in range(n):
        obj = draw(st.integers(min_value=-3, max_value=3))
        ub = draw(st.integers(min_value=1, max_value=4))
        lp.var(f"x{j}", upper=float(ub), obj=float(obj))
    for _ in range(m):
        coeffs = [draw(st.integers(min_value=-2, max_value=2)) for _ in range(n)]
        rhs = draw(st.integers(min_value=0, max_value=6))  # 0 stays feasible
        idx = [j for j in range(n) if coeffs[j] != 0]
        if not idx:
            continue
        lp.add_row(idx, [float(coeffs[j]) for j in idx], "<=", float(rhs))
    return lp


@settings(max_examples=60, deadline=None)
@given(random_lp())
def test_backends_agree_on_random_instances(lp):
    """The pure-Python simplex must match scipy/HiGHS on bounded instances."""
    a = lp.solve(backend="scipy")
    b = lp.solve(backend="simplex")
    assert a.status is SolveStatus.OPTIMAL  # 0 is always feasible, box bounded
    assert b.status is SolveStatus.OPTIMAL
    assert a.objective == pytest.approx(b.objective, abs=1e-6)
    assert check_solution(lp, b.values).feasible
