"""Unit tests for sparse linear expressions."""

import pytest

from repro.lp.expr import ConstraintSpec, LinExpr


def test_term_builds_single_variable():
    e = LinExpr.term(3, 2.5)
    assert e.terms == {3: 2.5}
    assert e.constant == 0.0


def test_zero_coefficients_are_dropped():
    e = LinExpr({0: 0.0, 1: 1.0})
    assert 0 not in e.terms
    assert e.terms == {1: 1.0}


def test_sum_of_merges_duplicates():
    e = LinExpr.sum_of([(0, 1.0), (0, 2.0), (1, -1.0)])
    assert e.terms == {0: 3.0, 1: -1.0}


def test_addition_of_expressions():
    e = LinExpr.term(0) + LinExpr.term(1, 2.0)
    assert e.terms == {0: 1.0, 1: 2.0}


def test_addition_cancels_to_zero_removes_term():
    e = LinExpr.term(0, 1.0) + LinExpr.term(0, -1.0)
    assert e.terms == {}


def test_addition_of_constant():
    e = LinExpr.term(0) + 5
    assert e.constant == 5.0
    assert (3 + LinExpr.term(0)).constant == 3.0


def test_subtraction():
    e = LinExpr.term(0, 3.0) - LinExpr.term(0, 1.0)
    assert e.terms == {0: 2.0}
    assert (LinExpr.term(0) - 2).constant == -2.0


def test_rsub():
    e = 10 - LinExpr.term(0, 4.0)
    assert e.terms == {0: -4.0}
    assert e.constant == 10.0


def test_negation():
    e = -(LinExpr.term(0, 2.0) + 1)
    assert e.terms == {0: -2.0}
    assert e.constant == -1.0


def test_scalar_multiplication():
    e = 3 * (LinExpr.term(0, 2.0) + 1)
    assert e.terms == {0: 6.0}
    assert e.constant == 3.0


def test_multiplication_by_zero_empties_expression():
    e = 0 * LinExpr.term(0, 2.0)
    assert e.terms == {}
    assert e.constant == 0.0


def test_division():
    e = (LinExpr.term(0, 2.0) + 4) / 2
    assert e.terms == {0: 1.0}
    assert e.constant == 2.0


def test_value_evaluation():
    e = LinExpr.term(0, 2.0) + LinExpr.term(1, -1.0) + 3
    assert e.value([4.0, 1.0]) == pytest.approx(10.0)


def test_le_comparison_builds_spec():
    spec = LinExpr.term(0) + 2 <= 5
    assert isinstance(spec, ConstraintSpec)
    assert spec.sense == "<="
    assert spec.rhs == pytest.approx(3.0)
    assert spec.expr.terms == {0: 1.0}


def test_ge_comparison_builds_spec():
    spec = LinExpr.term(0) >= LinExpr.term(1) + 1
    assert spec.sense == ">="
    assert spec.rhs == pytest.approx(1.0)
    assert spec.expr.terms == {0: 1.0, 1: -1.0}


def test_eq_comparison_builds_spec():
    spec = LinExpr.term(0) == 7
    assert spec.sense == "=="
    assert spec.rhs == pytest.approx(7.0)


def test_comparison_folds_both_constants():
    spec = (LinExpr.term(0) + 2) <= (LinExpr.term(1) - 3)
    assert spec.rhs == pytest.approx(-5.0)


def test_copy_is_independent():
    e = LinExpr.term(0)
    c = e.copy()
    c.terms[1] = 9.0
    assert 1 not in e.terms


def test_repr_is_stable():
    assert "x0" in repr(LinExpr.term(0, 1.5))
    assert repr(LinExpr()) == "LinExpr(+0)"
