"""Smoke tests: the example scripts must run end to end.

Each example is executed in a subprocess (as a user would run it); the fast
ones run unconditionally, the heavier case studies only when
``REPRO_TEST_ALL_EXAMPLES=1`` to keep the default suite snappy.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST = ["quickstart.py", "cdn_sizing.py", "log_analysis.py"]
HEAVY = ["remote_office.py", "deployment_planning.py", "online_adaptation.py"]


def run_example(name: str, timeout: int = 600) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize("name", FAST)
def test_fast_examples_run(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


@pytest.mark.parametrize("name", HEAVY)
@pytest.mark.skipif(
    not os.environ.get("REPRO_TEST_ALL_EXAMPLES"),
    reason="set REPRO_TEST_ALL_EXAMPLES=1 to run the heavy case studies",
)
def test_heavy_examples_run(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]


def test_quickstart_reports_a_recommendation():
    result = run_example("quickstart.py")
    assert "Recommended class:" in result.stdout


def test_log_analysis_reports_stability():
    result = run_example("log_analysis.py")
    assert "stability" in result.stdout.lower()
