"""§5 scaling claim: solve time grows manageably with |N|·|I|·|K|.

The paper reports CPLEX runtimes from under a minute to ~12 hours at full
scale, and rounding in seconds even for large systems.  This bench sweeps
the problem size and records LP solve time and rounding time, asserting the
off-line method stays tractable (and that rounding stays much cheaper than
solving).
"""

import time

from repro.analysis.report import render_series_table
from repro.core.bounds import compute_lower_bound
from repro.core.classes import get_class
from repro.core.costs import CostModel
from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.topology.generators import as_level_topology
from repro.workload.demand import DemandMatrix
from repro.workload.generators import web_workload

from benchmarks.conftest import TLAT_MS, write_report

SIZES = [
    # (nodes, intervals, objects, requests_scale)
    (8, 4, 20, 0.02),
    (12, 6, 40, 0.04),
    (16, 8, 60, 0.08),
    (20, 8, 80, 0.15),
]


def run_scaling():
    rows = []
    for nodes, intervals, objects, scale in SIZES:
        topo = as_level_topology(num_nodes=nodes, seed=2)
        trace = web_workload(
            num_nodes=nodes,
            num_objects=objects,
            populations=topo.populations,
            requests_scale=scale,
            seed=1,
        )
        demand = DemandMatrix.from_trace(trace, num_intervals=intervals)
        problem = MCPerfProblem(
            topology=topo,
            demand=demand,
            goal=QoSGoal(tlat_ms=TLAT_MS, fraction=0.9),
            costs=CostModel.paper_defaults(),
            warmup_intervals=1,
        )
        result = compute_lower_bound(
            problem, get_class("storage-constrained").properties, do_rounding=True
        )
        rows.append(
            [
                nodes * intervals * objects,
                result.num_variables,
                result.num_constraints,
                round(result.solve_seconds, 3),
                round(result.round_seconds, 3),
                result.feasible,
            ]
        )
    return rows


def test_scaling(benchmark):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    table = render_series_table(
        "LP solve / rounding time vs problem size (storage-constrained class)",
        ["N*I*K", "variables", "rows", "solve_s", "round_s", "feasible"],
        rows,
    )
    write_report("scaling", table)

    assert all(row[5] for row in rows), "all sizes must be solvable"
    # The method stays tractable at the largest bench size.
    assert rows[-1][3] < 60.0, "LP solve exceeded a minute at bench scale"
    # Problem size grows monotonically across the sweep.
    sizes = [row[0] for row in rows]
    assert sizes == sorted(sizes)
