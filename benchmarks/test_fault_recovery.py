"""Fault-recovery smoke benchmark.

Replays the bench WEB workload under seeded Poisson node crashes three ways
— fault-free, faults without healing, faults with a copy-restoring
:class:`~repro.faults.HealingPolicy` — and reports QoS, availability and the
re-replication spend.  The point of the table is the robustness claim from
the fault subsystem's acceptance scenario at bench scale: healing buys back
most of the crash-induced QoS loss for a quantified creation cost.
"""

from repro.analysis.report import render_series_table
from repro.faults import HealingPolicy, poisson_crashes
from repro.heuristics.cooperative import CooperativeLRUCaching
from repro.simulator.engine import simulate

from benchmarks.conftest import (
    NUM_INTERVALS,
    TLAT_MS,
    WARMUP_INTERVALS,
    write_report,
)

CAPACITY = 12
MTBF_S = 12 * 3600.0
MTTR_S = 1800.0
FAULT_SEED = 11


def run_fault_recovery(topology, web_trace):
    interval_s = web_trace.duration_s / NUM_INTERVALS
    kwargs = dict(
        tlat_ms=TLAT_MS,
        warmup_s=WARMUP_INTERVALS * interval_s,
        cost_interval_s=interval_s,
    )
    faults = poisson_crashes(
        num_nodes=topology.num_nodes,
        duration_s=web_trace.duration_s,
        mtbf_s=MTBF_S,
        mttr_s=MTTR_S,
        seed=FAULT_SEED,
        exclude=(topology.origin,),
    )
    fault_free = simulate(
        topology, web_trace, CooperativeLRUCaching(CAPACITY), **kwargs
    )
    faulty = simulate(
        topology, web_trace, CooperativeLRUCaching(CAPACITY), faults=faults, **kwargs
    )
    healed = simulate(
        topology,
        web_trace,
        HealingPolicy(CooperativeLRUCaching(CAPACITY), copies=2),
        faults=faults,
        **kwargs,
    )
    return faults, fault_free, faulty, healed


def test_fault_recovery(benchmark, topology, web_trace):
    faults, fault_free, faulty, healed = benchmark.pedantic(
        run_fault_recovery, args=(topology, web_trace), rounds=1, iterations=1
    )

    def row(label, res):
        return [
            label,
            f"{res.qos:.4f}",
            f"{res.availability:.4f}",
            round(res.node_downtime_s),
            res.repairs,
            res.healing_creations,
            round(res.total_cost),
        ]

    table = render_series_table(
        (
            f"WEB / CoopLRU({CAPACITY}) under Poisson crashes "
            f"(MTBF {MTBF_S / 3600:.0f}h, MTTR {MTTR_S / 60:.0f}min, "
            f"seed {FAULT_SEED}, {len(faults)} events)"
        ),
        ["run", "QoS", "availability", "downtime s", "repairs", "heals", "cost"],
        [
            row("fault-free", fault_free),
            row("faults, no healing", faulty),
            row("faults + healing", healed),
        ],
    )
    write_report("fault_recovery", table)

    # Smoke assertions: faults hurt, healing recovers most of the loss.
    assert faulty.node_downtime_s > 0
    assert healed.qos >= faulty.qos
    assert healed.healing_creations > 0
    assert healed.qos >= fault_free.qos - 0.03
