"""Table 3: heuristic classes as combinations of heuristic properties.

Regenerates the classification table programmatically from the registry and
checks the property combinations against the paper's rows.
"""

from repro.core.classes import STANDARD_CLASSES, render_table3, table3

from benchmarks.conftest import write_report


def test_table3(benchmark):
    rows = benchmark.pedantic(table3, rounds=1, iterations=1)
    write_report("table3", render_table3())

    by_name = {r["class"]: r for r in rows}

    # Paper row: storage constrained heuristics — SC, global/global, multi.
    row = by_name["storage-constrained"]
    assert (row["SC"], row["Route"], row["Know"], row["Hist"], row["React"]) == (
        "uniform", "global", "global", "all", "",
    )
    # Paper row: replica constrained heuristics — RC, global/global, multi.
    row = by_name["replica-constrained"]
    assert (row["RC"], row["Route"], row["Know"], row["Hist"]) == (
        "uniform", "global", "global", "all",
    )
    # Paper row: decentralized storage constrained w/ local routing.
    row = by_name["decentralized-local-routing"]
    assert (row["SC"], row["Route"], row["Know"], row["React"]) == (
        "uniform", "local", "local", "",
    )
    # Paper row: local caching — SC, local/local, single, reactive.
    row = by_name["caching"]
    assert (row["SC"], row["Route"], row["Know"], row["Hist"], row["React"]) == (
        "uniform", "local", "local", "1", "yes",
    )
    # Paper row: cooperative caching — SC, global/global, single, reactive.
    row = by_name["cooperative-caching"]
    assert (row["Route"], row["Know"], row["Hist"], row["React"]) == (
        "global", "global", "1", "yes",
    )
    # Paper rows: prefetching variants are the proactive versions.
    assert by_name["caching-prefetch"]["React"] == ""
    assert by_name["cooperative-caching-prefetch"]["React"] == ""
    # Every registered class appears exactly once.
    assert len(rows) == len(STANDARD_CLASSES)
