"""Hot-path micro-benchmarks (ISSUE 4): assembly, re-solve, serve path.

Measures the three optimized layers against their pre-optimization
equivalents at Figure-2 scale and records the speedups in
``benchmarks/out/BENCH_hot_paths.json``:

* **Formulation assembly** — ``build_formulation(assembly="legacy")`` (the
  row-at-a-time builder, kept as the equivalence oracle) vs the vectorized
  block builder.  Target: >= 3x.
* **Incremental re-solve** — re-solving after ``fix_var`` patches with the
  cached assembly vs forcing a full rebuild before every solve (what every
  re-solve cost before the cache).  Correctness here is counter-based:
  zero rebuilds on the patched path.
* **Simulator replay** — a serve-heavy trace replay answered by the
  nearest-live-replica cache vs the seed's full-scan ``holders()`` path.
  Target: >= 2x.

``REPRO_BENCH_QUICK=1`` (CI's perf-smoke job) runs single repetitions and
skips the wall-clock ratio assertions — CI machines are too noisy for
timing gates — while still asserting every counter-based property and the
bit-identical results.  The recorded JSON then documents the measured
ratios wherever the bench runs.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.conftest import OUT_DIR, SCALE, TLAT_MS, write_report
from repro.core.classes import get_class
from repro.core.formulation import build_formulation
from repro.heuristics import CooperativeLRUCaching
from repro.perf import PERF
from repro.simulator.engine import Simulator

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
REPS = 1 if QUICK else 3

#: Populated by the benches below; the final test writes it out.
RESULTS: dict = {"scale": SCALE, "quick": QUICK}


def best_of(fn, reps=REPS):
    """Minimum wall-clock over ``reps`` runs (min is noise-robust)."""
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


# -- 1. formulation assembly -------------------------------------------------


def test_assembly_speedup(web_problem):
    props = get_class("general").properties
    t_legacy, form_l = best_of(lambda: build_formulation(web_problem, props, assembly="legacy"))
    t_vec, form_v = best_of(lambda: build_formulation(web_problem, props, assembly="vectorized"))
    assert form_l.lp.num_variables == form_v.lp.num_variables
    assert form_l.lp.num_constraints == form_v.lp.num_constraints
    speedup = t_legacy / t_vec
    RESULTS["assembly"] = {
        "variables": form_v.lp.num_variables,
        "constraints": form_v.lp.num_constraints,
        "legacy_ms": round(t_legacy * 1000, 2),
        "vectorized_ms": round(t_vec * 1000, 2),
        "speedup": round(speedup, 2),
        "target": 3.0,
    }
    if not QUICK:
        assert speedup >= 3.0, f"assembly speedup {speedup:.2f}x below the 3x target"


# -- 2. incremental re-solve -------------------------------------------------


def test_incremental_resolve_speedup(web_problem):
    props = get_class("general").properties
    form = build_formulation(web_problem, props)
    lp = form.lp
    solution = lp.solve(backend="auto")
    store_vars = [int(j) for j in form.store_idx.ravel() if j >= 0][:8]
    saved = [(lp.variables[j].lower, lp.variables[j].upper) for j in store_vars]

    def resolve(force_rebuild):
        for j in store_vars:
            lp.fix_var(j, 1.0 if solution.values[j] > 0.5 else 0.0)
        if force_rebuild:
            lp._arrays = None  # what every re-solve paid pre-cache
        out = lp.solve(backend="auto")
        for j, (lo, up) in zip(store_vars, saved):
            lp.set_bounds(j, lo, up)
        return out

    t_cold, sol_cold = best_of(lambda: resolve(force_rebuild=True))
    PERF.reset()
    t_warm, sol_warm = best_of(lambda: resolve(force_rebuild=False))
    # The patched path must be assembly-free and land on the same optimum.
    assert PERF.get("lp.assembly.rebuild") == 0
    assert PERF.get("lp.assembly.reuse") == REPS
    assert sol_warm.objective == pytest.approx(sol_cold.objective, abs=1e-6)
    RESULTS["resolve"] = {
        "fixed_vars": len(store_vars),
        "rebuild_ms": round(t_cold * 1000, 2),
        "patched_ms": round(t_warm * 1000, 2),
        "speedup": round(t_cold / t_warm, 2),
        "rebuilds_on_patched_path": PERF.get("lp.assembly.rebuild"),
    }


# -- 2b. warm-started sweep re-solve ------------------------------------------


def test_warm_resolve_speedup(web_problem):
    """Drift-sized QoS re-targets: basis-to-basis warm starts vs cold solves.

    The realistic re-solve pattern of the daemon and fine sweeps: one cold
    solve establishes the level, one crash-bootstrapped link earns a basis
    (scipy exposes none), then every further drift-sized re-target repairs
    the previous basis in tens of pivots.  The gate compares the steady
    state against a cold solve of the *same* patched model; the bootstrap
    cost is recorded but not gated — it is a one-time investment per
    formulation.
    """
    from repro.solvers.registry import solve_lp

    props = get_class("general").properties
    form = build_formulation(web_problem, props)
    base = 0.95
    steps = 3 if QUICK else 8
    levels = [round(base + i * 1e-4, 6) for i in range(1, steps + 2)]

    form.set_qos_fraction(base)
    prev = form.lp.solve(backend="scipy")
    assert prev.is_optimal

    PERF.reset()
    form.set_qos_fraction(levels[0])
    t0 = time.perf_counter()
    prev = solve_lp(form.lp, "scipy", warm_start=prev)
    bootstrap_s = time.perf_counter() - t0
    assert prev.is_optimal

    warm_s = cold_s = 0.0
    for level in levels[1:]:
        form.set_qos_fraction(level)
        t0 = time.perf_counter()
        warm = solve_lp(form.lp, "scipy", warm_start=prev)
        warm_s += time.perf_counter() - t0
        t0 = time.perf_counter()
        cold = form.lp.solve(backend="scipy")
        cold_s += time.perf_counter() - t0
        # Warm is a hint, never an answer: optima must agree exactly.
        assert warm.objective == pytest.approx(cold.objective, abs=1e-6)
        prev = warm

    speedup = cold_s / warm_s
    RESULTS["resolve_warm"] = {
        "levels": steps,
        "delta_per_level": 1e-4,
        "bootstrap_ms": round(bootstrap_s * 1000, 2),
        "warm_ms": round(warm_s * 1000, 2),
        "cold_ms": round(cold_s * 1000, 2),
        "speedup": round(speedup, 2),
        "warm_starts": PERF.get("lp.simplex.warm_starts"),
        "warm_degraded": PERF.get("lp.simplex.warm_degraded"),
        "basis_crashes": PERF.get("lp.simplex.basis_crash"),
        "iterations": PERF.get("lp.simplex.iterations"),
        "rebuilds_on_patched_path": PERF.get("lp.assembly.rebuild"),
        "target": 5.0,
    }
    # Counter-based properties hold at any machine speed.
    assert PERF.get("lp.assembly.rebuild") == 0
    assert PERF.get("lp.simplex.warm_starts") >= steps + 1
    assert PERF.get("lp.simplex.warm_degraded") == 0
    if not QUICK:
        assert speedup >= 5.0, f"warm re-solve speedup {speedup:.2f}x below the 5x target"


# -- 3. simulator replay -----------------------------------------------------


def seed_best_latency(state, node, obj, scope="global", holders=None):
    """The seed's serve path: ``holders()`` rebuilt by scanning every node."""
    lat = state.topology.latency
    best = float(lat[node][state.topology.origin])
    if scope == "local":
        return 0.0 if state.holds(node, obj) else best
    candidates = holders if holders is not None else {
        n for n in state.topology.nodes()
        if n != state.topology.origin and obj in state._held[n]
    }
    for m in candidates:
        best = min(best, float(lat[node][m]))
    if state.holds(node, obj):
        best = 0.0
    return best


def test_replay_speedup(topology, web_trace):
    def replay(legacy):
        sim = Simulator(topology, web_trace, CooperativeLRUCaching(10), tlat_ms=TLAT_MS)
        if legacy:
            st = sim.state
            st.best_latency = (
                lambda node, obj, scope="global", holders=None:
                seed_best_latency(st, node, obj, scope, holders)
            )
        return sim.run()

    t_scan, res_scan = best_of(lambda: replay(legacy=True))
    PERF.reset()
    t_cached, res_cached = best_of(lambda: replay(legacy=False))
    # Same replay, to the last digit — the cache is a pure speedup.
    assert res_cached.total_cost == pytest.approx(res_scan.total_cost, abs=1e-9)
    assert res_cached.qos == res_scan.qos
    # Every fault-free serve hit the O(1) path; no full scans.
    assert PERF.get("sim.serve.fast") > 0
    assert PERF.get("sim.serve.scan") == 0
    speedup = t_scan / t_cached
    RESULTS["replay"] = {
        "heuristic": "coop-lru",
        "requests": len(web_trace.requests),
        "scan_ms": round(t_scan * 1000, 2),
        "cached_ms": round(t_cached * 1000, 2),
        "speedup": round(speedup, 2),
        "fast_serves": PERF.get("sim.serve.fast"),
        "scan_serves": PERF.get("sim.serve.scan"),
        "cache_repairs": PERF.get("sim.cache.repair"),
        "target": 2.0,
    }
    if not QUICK:
        assert speedup >= 2.0, f"replay speedup {speedup:.2f}x below the 2x target"


# -- report ------------------------------------------------------------------


def test_write_hot_paths_report():
    """Runs last (file order): persists the JSON record + a readable table."""
    assert {"assembly", "resolve", "resolve_warm", "replay"} <= set(RESULTS), (
        "hot-path benches must run before the report (run the whole module)"
    )
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_hot_paths.json").write_text(
        json.dumps(RESULTS, indent=2, sort_keys=True) + "\n"
    )
    a, r, s = RESULTS["assembly"], RESULTS["resolve"], RESULTS["replay"]
    w = RESULTS["resolve_warm"]
    lines = [
        "Hot-path micro-benchmarks (min over %d reps, scale=%s)" % (REPS, SCALE),
        "",
        "  stage               before      after    speedup",
        "  ----------------  --------  ---------  ---------",
        f"  assembly          {a['legacy_ms']:7.1f}ms {a['vectorized_ms']:7.1f}ms"
        f"  {a['speedup']:7.2f}x",
        f"  re-solve (fix_var){r['rebuild_ms']:7.1f}ms {r['patched_ms']:7.1f}ms"
        f"  {r['speedup']:7.2f}x",
        f"  re-solve (warm)   {w['cold_ms']:7.1f}ms {w['warm_ms']:7.1f}ms"
        f"  {w['speedup']:7.2f}x",
        f"  replay (coop-lru) {s['scan_ms']:7.1f}ms {s['cached_ms']:7.1f}ms"
        f"  {s['speedup']:7.2f}x",
        "",
        f"  assembly: {a['variables']} vars / {a['constraints']} rows;"
        f" replay: {s['requests']} requests,"
        f" {s['fast_serves']} O(1) serves, {s['scan_serves']} scans,"
        f" {s['cache_repairs']} column repairs",
        f"  warm re-solves: {w['levels']} drift steps,"
        f" {w['warm_starts']} warm starts / {w['warm_degraded']} degraded,"
        f" bootstrap {w['bootstrap_ms']:.0f}ms ({w['basis_crashes']} basis crash)",
    ]
    write_report("hot_paths", "\n".join(lines))
