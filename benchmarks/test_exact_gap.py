"""True integrality gap of the rounding (exact IP via branch and bound).

§5 of the paper: solving the IP exactly is "feasible only at a very small
scale", so the method argues tightness from the LP-vs-rounded gap.  With
the exact mode this bench measures the *true* gap — rounded cost vs the
integral optimum — on an instance beyond brute-force size, confirming the
rounded solutions the whole methodology leans on are genuinely near-optimal.
"""

from repro.analysis.report import render_series_table
from repro.core.costs import CostModel
from repro.core.exact import compute_exact_bound
from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.topology.generators import as_level_topology
from repro.workload.demand import DemandMatrix
from repro.workload.generators import web_workload

from benchmarks.conftest import TLAT_MS, write_report

LEVELS = [0.7, 0.85]


def run_exact_gap():
    topo = as_level_topology(num_nodes=8, seed=4)
    trace = web_workload(
        num_nodes=8, num_objects=12, populations=topo.populations,
        requests_scale=0.02, seed=2,
    )
    demand = DemandMatrix.from_trace(trace, num_intervals=5)
    rows = []
    results = []
    for level in LEVELS:
        problem = MCPerfProblem(
            topology=topo,
            demand=demand,
            goal=QoSGoal(tlat_ms=TLAT_MS, fraction=level),
            costs=CostModel.paper_defaults(),
        )
        exact = compute_exact_bound(problem, node_limit=4_000)
        rows.append(
            [
                f"{level:.0%}",
                round(exact.lp_cost, 1) if exact.lp_cost else None,
                round(exact.exact_cost, 1) if exact.exact_cost else None,
                round(exact.rounded_cost, 1) if exact.rounded_cost else None,
                exact.status,
                exact.nodes,
            ]
        )
        results.append(exact)
    return rows, results


def test_exact_gap(benchmark):
    rows, results = benchmark.pedantic(run_exact_gap, rounds=1, iterations=1)
    write_report(
        "exact_gap",
        render_series_table(
            "True integrality gap (WEB, 8 nodes x 5 intervals x 12 objects)",
            ["QoS", "LP bound", "exact IP", "rounded", "status", "B&B nodes"],
            rows,
        ),
    )
    for exact in results:
        assert exact.feasible
        # Bracket always holds, even on node-limited runs.
        assert exact.lower_bound >= exact.lp_cost - 1e-6
        if exact.exact_cost is not None:
            assert exact.exact_cost >= exact.lp_cost - 1e-6
        if exact.status == "optimal" and exact.rounded_cost is not None:
            assert exact.rounded_cost >= exact.exact_cost - 1e-6
            # The paper's tightness claim, now against the true optimum.
            assert exact.rounding_gap is not None
            assert exact.rounding_gap <= 0.15
