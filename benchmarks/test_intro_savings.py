"""§1 motivating example: the cost of choosing the "obvious" heuristic.

The paper opens with a concrete scenario: meeting a 90%-within-100ms goal
with LRU caching would need ~4x the storage spend of a centralized greedy
heuristic.  This bench recreates the decision on the bench workload and
measures the realized savings factor between the recommended class's
heuristic and LRU caching, both sized to the smallest goal-meeting
configuration.
"""

from repro.analysis.report import render_series_table
from repro.core.bounds import compute_lower_bound
from repro.core.classes import get_class
from repro.heuristics.caching import LRUCaching
from repro.heuristics.greedy_global import GreedyGlobalPlacement
from repro.simulator.metrics import heuristic_cost
from repro.simulator.sizing import min_capacity_for_goal

from benchmarks.conftest import (
    NUM_INTERVALS,
    TLAT_MS,
    WARMUP_INTERVALS,
    make_problem,
    write_report,
)

LEVEL = 0.90


def run_intro(topology, web_trace, web_demand):
    interval_s = web_trace.duration_s / NUM_INTERVALS
    warmup_s = WARMUP_INTERVALS * interval_s

    problem = make_problem(topology, web_demand, LEVEL)
    sc_bound = compute_lower_bound(
        problem, get_class("storage-constrained").properties, do_rounding=False
    )
    caching_bound = compute_lower_bound(
        problem, get_class("caching").properties, do_rounding=False
    )

    def size(make):
        sizing = min_capacity_for_goal(
            make, topology, web_trace, tlat_ms=TLAT_MS, fraction=LEVEL,
            warmup_s=warmup_s, cost_interval_s=interval_s,
        )
        assert sizing.feasible
        return sizing

    greedy = size(
        lambda c: GreedyGlobalPlacement(c, period_s=interval_s, tlat_ms=TLAT_MS)
    )
    lru = size(lambda c: LRUCaching(c))
    greedy_cost = heuristic_cost(
        greedy.result, mode="sc", num_nodes=topology.num_nodes - 1,
        num_intervals=NUM_INTERVALS, capacity=greedy.value,
    ).total
    lru_cost = heuristic_cost(
        lru.result, mode="sc", num_nodes=topology.num_nodes - 1,
        num_intervals=NUM_INTERVALS, capacity=lru.value,
    ).total
    return sc_bound, caching_bound, greedy_cost, lru_cost


def test_intro_savings(benchmark, topology, web_trace, web_demand):
    sc_bound, caching_bound, greedy_cost, lru_cost = benchmark.pedantic(
        run_intro, args=(topology, web_trace, web_demand), rounds=1, iterations=1
    )
    factor = lru_cost / greedy_cost
    bound_factor = (
        caching_bound.lp_cost / sc_bound.lp_cost
        if caching_bound.feasible and sc_bound.feasible
        else None
    )
    rows = [
        ["storage-constrained bound", round(sc_bound.lp_cost)],
        ["caching bound", round(caching_bound.lp_cost) if caching_bound.feasible else None],
        ["greedy global (deployed)", round(greedy_cost)],
        ["LRU caching (deployed)", round(lru_cost)],
        ["realized savings factor", f"{factor:.2f}x"],
    ]
    write_report(
        "intro_savings",
        render_series_table(
            f"§1 example at bench scale ({LEVEL:.0%} within {TLAT_MS:.0f} ms)",
            ["quantity", "value"],
            rows,
        ),
    )

    # The method's headline: the informed choice is meaningfully cheaper,
    # and the bound comparison predicted the direction of the decision.
    assert factor >= 1.3
    if bound_factor is not None:
        assert bound_factor >= 1.0
