"""Shared benchmark configuration.

Every figure/table of the paper has one bench module here.  The paper ran at
full scale (20 nodes, 1 000 objects, 300 K / 16 M requests, 24 hourly
intervals, CPLEX, up to 12 h per solve); these benches run scaled-down
configurations whose *shape* reproduces the paper's conclusions in seconds
(see DESIGN.md §2 and EXPERIMENTS.md for the paper-vs-measured record).

Set ``REPRO_BENCH_SCALE`` (default 1.0) to grow the workloads toward paper
scale, e.g. ``REPRO_BENCH_SCALE=4 pytest benchmarks/``.

Bench outputs (tables + ASCII charts) are written to ``benchmarks/out/`` and
printed (visible with ``pytest -s``).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.costs import CostModel
from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.topology.generators import as_level_topology
from repro.workload.demand import DemandMatrix
from repro.workload.generators import group_workload, web_workload

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: QoS sweep levels (the paper sweeps 95%..99.999%; scaled-down traces
#: compress each class's feasible range, so the sweep starts lower).
WEB_LEVELS = [0.90, 0.95, 0.96, 0.99, 0.995]
GROUP_LEVELS = [0.95, 0.99, 0.995, 0.999]

NUM_NODES = 20
NUM_INTERVALS = 8
TLAT_MS = 150.0
WARMUP_INTERVALS = 1

OUT_DIR = Path(__file__).parent / "out"


def write_report(name: str, text: str) -> None:
    """Persist a bench's table/chart and echo it."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def topology():
    """The 20-site corporate WAN (paper §6: Telstra-like AS topology)."""
    return as_level_topology(num_nodes=NUM_NODES, seed=2)


@pytest.fixture(scope="session")
def web_trace(topology):
    """Scaled WEB trace: heavy-tailed Zipf, uneven site populations."""
    return web_workload(
        num_nodes=NUM_NODES,
        num_objects=int(80 * max(1.0, SCALE**0.5)),
        populations=topology.populations,
        requests_scale=0.15 * SCALE,
        seed=1,
    )


@pytest.fixture(scope="session")
def group_trace():
    """Scaled GROUP trace: uniform popularity, all sites highly active.

    The paper notes "all nodes are highly active" for GROUP, hence uniform
    populations here.
    """
    return group_workload(
        num_nodes=NUM_NODES,
        num_objects=int(40 * max(1.0, SCALE**0.5)),
        requests_scale=0.05 * SCALE,
        seed=1,
    )


@pytest.fixture(scope="session")
def web_demand(web_trace):
    return DemandMatrix.from_trace(web_trace, num_intervals=NUM_INTERVALS)


@pytest.fixture(scope="session")
def group_demand(group_trace):
    return DemandMatrix.from_trace(group_trace, num_intervals=NUM_INTERVALS)


def make_problem(topology, demand, fraction: float) -> MCPerfProblem:
    return MCPerfProblem(
        topology=topology,
        demand=demand,
        goal=QoSGoal(tlat_ms=TLAT_MS, fraction=fraction),
        costs=CostModel.paper_defaults(),
        warmup_intervals=WARMUP_INTERVALS,
    )


@pytest.fixture(scope="session")
def web_problem(topology, web_demand):
    return make_problem(topology, web_demand, WEB_LEVELS[0])


@pytest.fixture(scope="session")
def group_problem(topology, group_demand):
    return make_problem(topology, group_demand, GROUP_LEVELS[0])
