"""Continuous-placement availability benchmark.

Runs the epoch-driven continuous loop under a seeded zone-partition storm
— one zone loses cross-zone connectivity for 20 minutes of every hour —
and compares placement strategies by (serve cost, migration bytes,
SLO-violation epochs).  The table records the PR's robustness contract at
bench scale:

* plain re-placement (and plain copy-count healing) violates a 99 %
  per-epoch availability SLO in every epoch, because nothing forces a
  replica into the zone that gets partitioned;
* zone-aware healing (``min_unique_zones=3``) on the *same* fault
  schedule meets the SLO in every epoch, paying for it with extra
  replicas — visible as higher serve cost and more migration bytes,
  reported separately.

Results land in ``benchmarks/out/continuous_availability.txt`` (table) and
``benchmarks/out/BENCH_continuous.json`` (machine-readable record).
"""

from __future__ import annotations

import json

import numpy as np

from repro.analysis.report import render_series_table
from repro.faults import AvailabilitySLO, HealingPolicy, zone_partition
from repro.heuristics import LRUCaching, QiuGreedyPlacement
from repro.simulator import run_continuous
from repro.topology.graph import Topology
from repro.workload.drift import drifting_traces

from benchmarks.conftest import OUT_DIR, SCALE, write_report

EPOCHS = 3
EPOCH_S = 3600.0
REQUESTS_PER_EPOCH = int(600 * max(1.0, SCALE))
SLO_TARGET = 0.99
MIN_UNIQUE_ZONES = 3
DRIFT = 0.1
SEED = 3


def storm_topology() -> Topology:
    """6 nodes in zones {0} / {1,2} / {3,4,5}: 20 ms intra-zone, 120 ms
    across, so only an in-zone replica survives a zone partition."""
    n = 6
    zones = np.array([0, 1, 1, 2, 2, 2])
    lat = np.full((n, n), 120.0)
    for a in range(n):
        for b in range(n):
            if zones[a] == zones[b]:
                lat[a][b] = 20.0
        lat[a][a] = 0.0
    return Topology(
        latency=lat,
        origin=0,
        populations=np.array([1.0, 1.0, 1.0, 5.0, 5.0, 5.0]),
        zones=zones,
    )


def qiu():
    return QiuGreedyPlacement(1, period_s=600.0, tlat_ms=60.0)


STRATEGIES = [
    ("qiu", qiu),
    ("qiu + heal", lambda: HealingPolicy(qiu(), copies=1)),
    (
        "qiu + zone heal",
        lambda: HealingPolicy(qiu(), copies=1, min_unique_zones=MIN_UNIQUE_ZONES),
    ),
    ("lru(4)", lambda: LRUCaching(4)),
]


def run_continuous_availability(topology):
    traces = drifting_traces(
        topology.num_nodes,
        8,
        epochs=EPOCHS,
        epoch_s=EPOCH_S,
        requests_per_epoch=REQUESTS_PER_EPOCH,
        drift=DRIFT,
        populations=[0.5, 1.0, 1.0, 8.0, 8.0, 8.0],
        seed=SEED,
    )
    faults = zone_partition(
        topology.zones,
        1,
        start_s=1200.0,
        outage_s=1200.0,
        duration_s=EPOCHS * EPOCH_S,
        every_s=EPOCH_S,
    )
    results = {}
    for label, factory in STRATEGIES:
        results[label] = run_continuous(
            topology,
            traces,
            factory,
            tlat_ms=150.0,
            faults=faults,
            slo=AvailabilitySLO(SLO_TARGET),
        )
    return results


def test_continuous_availability(benchmark, capsys):
    topology = storm_topology()
    results = benchmark.pedantic(
        run_continuous_availability, args=(topology,), rounds=1, iterations=1
    )

    baseline = results["qiu"]
    plain_heal = results["qiu + heal"]
    zone_aware = results["qiu + zone heal"]

    # The robustness contract (mirrors tests/simulator/test_continuous.py).
    assert baseline.slo_violations >= 1, "storm must break the unhealed run"
    assert plain_heal.slo_violations >= 1, "copy counts alone must not save it"
    assert zone_aware.slo_violations == 0, "zone spread must meet the SLO"
    assert zone_aware.worst_epoch_availability >= SLO_TARGET
    assert zone_aware.final_unique_zones >= MIN_UNIQUE_ZONES
    assert zone_aware.migration_bytes > baseline.migration_bytes
    assert zone_aware.serve_cost > baseline.serve_cost

    def row(label, r):
        return [
            label,
            round(r.serve_cost),
            round(r.migration_bytes),
            f"{r.availability:.4f}",
            f"{r.worst_epoch_availability:.4f}",
            f"{r.slo_violations}/{len(r.epochs)}",
            r.final_unique_zones,
        ]

    table = render_series_table(
        (
            f"Continuous placement under a zone-partition storm "
            f"(zone 1 cut {1200 / 60:.0f} min/epoch, {EPOCHS} epochs x "
            f"{EPOCH_S / 3600:.0f} h, drift {DRIFT}, SLO {SLO_TARGET:.0%})"
        ),
        [
            "strategy", "serve cost", "migr bytes", "avail",
            "worst epoch", "SLO viol", "zones",
        ],
        [row(label, results[label]) for label, _ in STRATEGIES],
    )
    write_report("continuous_availability", table)

    record = {
        "scale": SCALE,
        "epochs": EPOCHS,
        "epoch_s": EPOCH_S,
        "requests_per_epoch": REQUESTS_PER_EPOCH,
        "drift": DRIFT,
        "slo_target": SLO_TARGET,
        "min_unique_zones": MIN_UNIQUE_ZONES,
        "storm": "zonepart:zone=1,at=1200,down=1200,every=3600",
        "strategies": {
            label: {
                "serve_cost": r.serve_cost,
                "migration_bytes": r.migration_bytes,
                "availability": r.availability,
                "worst_epoch_availability": r.worst_epoch_availability,
                "slo_violations": r.slo_violations,
                "slo_violation_epochs": r.slo_violation_epochs,
                "final_unique_zones": r.final_unique_zones,
                "epoch_availability": [e.availability for e in r.epochs],
                "epoch_migration_bytes": [e.migration_bytes for e in r.epochs],
            }
            for label, r in results.items()
        },
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_continuous.json").write_text(
        json.dumps(record, indent=1, sort_keys=True) + "\n"
    )
