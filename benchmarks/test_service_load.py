"""Placement-service load benchmark: sustained qps, tail latency, crash run.

Two measurements against a real ``repro serve`` subprocess:

* **steady** — a closed-loop mixed workload (placement / cost lookups plus
  admission-gated bound solves) against a healthy daemon: sustained qps
  and latency percentiles;
* **crash** — the same workload while the daemon takes an injected
  ``crash_at_epoch`` kill mid-run and is restarted on the same state
  directory and port.  The service's accounting contract is asserted, not
  eyeballed: every request the generator issued resolves to a counted
  outcome (the crash window shows up as connection errors), ``lost`` is
  exactly zero, and the recovered run converges to the uninterrupted
  baseline's result.

Results land in ``benchmarks/out/service_load.txt`` (table) and
``benchmarks/out/BENCH_service.json`` (machine-readable record).
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.service import run_load
from repro.service.client import ServiceClient
from repro.service.loadgen import LoadReport

from benchmarks.conftest import OUT_DIR, SCALE, write_report

REPO_SRC = Path(__file__).resolve().parents[1] / "src"
DURATION_S = 3.0 * max(1.0, SCALE**0.5)
WORKERS = 4

MIX = (
    {"kind": "placement"},
    {"kind": "placement"},
    {"kind": "cost"},
    {"kind": "bound", "class": "general", "qos": 0.9},
)


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def serve_cmd(topo: Path, state: Path, port: int, *extra: str) -> list:
    return [
        sys.executable, "-m", "repro", "serve",
        "-t", str(topo),
        "--heuristic", "qiu",
        "--epochs", "6",
        "--epoch-length", "600",
        "--requests", "400",
        "--objects", "16",
        "--zones", "3",
        "--slo", "0.9",
        "--state-dir", str(state),
        "--port", str(port),
        "--snapshot-every", "2",
        *extra,
    ]


def serve_env() -> dict:
    return {"PYTHONPATH": str(REPO_SRC), "PATH": os.environ.get("PATH", "/usr/bin:/bin")}


def test_service_load(tmp_path):
    from repro.cli import main

    topo = tmp_path / "topo.json"
    assert main(["topology", "--nodes", "8", "--seed", "2", "-o", str(topo)]) == 0

    # -- baseline: uninterrupted run, for the convergence check -------------
    baseline_state = tmp_path / "baseline"
    proc = subprocess.run(
        serve_cmd(topo, baseline_state, 0, "--exit-when-done"),
        capture_output=True, text=True, env=serve_env(), timeout=180,
    )
    assert proc.returncode == 0, proc.stderr
    baseline = json.loads((baseline_state / "result.json").read_text())

    # -- steady-state phase ---------------------------------------------------
    steady_state = tmp_path / "steady"
    port = free_port()
    server = subprocess.Popen(
        serve_cmd(topo, steady_state, port, "--epoch-interval", "0.2"),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=serve_env(),
    )
    try:
        assert ServiceClient("127.0.0.1", port).wait_ready(60.0)
        steady = run_load(
            "127.0.0.1", port, duration_s=DURATION_S, workers=WORKERS, mix=MIX
        )
    finally:
        server.terminate()
        server.wait(timeout=60)
    assert steady.lost == 0, f"{steady.lost} requests silently lost"
    assert steady.ok > 0

    # -- crash phase ----------------------------------------------------------
    crash_state = tmp_path / "crash"
    port = free_port()
    crash_report = LoadReport()
    server = subprocess.Popen(
        serve_cmd(
            topo, crash_state, port,
            "--epoch-interval", "0.3", "--chaos", "crash_at_epoch=2",
        ),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=serve_env(),
    )
    loader = threading.Thread(
        target=lambda: crash_report.merge(
            run_load("127.0.0.1", port, duration_s=DURATION_S, workers=WORKERS,
                     mix=MIX, timeout_s=5.0)
        ),
        daemon=True,
    )
    recovered_stderr = ""
    try:
        assert ServiceClient("127.0.0.1", port).wait_ready(60.0)
        t0 = time.monotonic()
        loader.start()
        server.wait(timeout=120)
        assert server.returncode == 57, "chaos crash did not fire"
        # Restart on the same port and state directory: recovery, mid-load.
        server = subprocess.Popen(
            serve_cmd(topo, crash_state, port, "--epoch-interval", "0.1"),
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
            env=serve_env(),
        )
        loader.join(timeout=DURATION_S + 60)
        crash_report.duration_s = time.monotonic() - t0
    finally:
        server.terminate()
        try:
            _, recovered_stderr = server.communicate(timeout=60)
        except ValueError:
            server.wait(timeout=60)

    assert not loader.is_alive(), "load generator wedged"
    assert crash_report.lost == 0, f"{crash_report.lost} requests silently lost"
    assert crash_report.connection_errors > 0, "the crash window was invisible?"
    assert "recovered checkpoint" in recovered_stderr
    converged = json.loads((crash_state / "result.json").read_text())
    # The restarted daemon may still be mid-run when we terminate it; the
    # epochs it *did* complete must be a byte-identical prefix of baseline.
    prefix = converged["epochs"]
    assert prefix == baseline["epochs"][: len(prefix)]

    record = {
        "scale": SCALE,
        "duration_s": DURATION_S,
        "workers": WORKERS,
        "steady": steady.to_dict(),
        "crash": crash_report.to_dict(),
        "converged_epochs": len(prefix),
        "baseline_epochs": len(baseline["epochs"]),
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_service.json").write_text(json.dumps(record, indent=2) + "\n")

    lines = [
        "placement service under closed-loop load",
        f"  workers={WORKERS} duration={DURATION_S:.1f}s scale={SCALE:g}",
        "",
        f"  {'phase':<8} {'qps':>8} {'p50ms':>8} {'p99ms':>8} "
        f"{'ok':>7} {'shed':>5} {'stale':>5} {'conn':>5} {'lost':>5}",
    ]
    for name, report in (("steady", steady), ("crash", crash_report)):
        lines.append(
            f"  {name:<8} {report.qps:>8.0f} "
            f"{report.latency_percentile(50):>8.2f} "
            f"{report.latency_percentile(99):>8.2f} "
            f"{report.ok:>7} {report.shed:>5} {report.stale:>5} "
            f"{report.connection_errors:>5} {report.lost:>5}"
        )
    lines.append("")
    lines.append(
        f"  crash run: injected kill at epoch 2, restart recovered and "
        f"reproduced {len(prefix)} baseline epoch(s) exactly"
    )
    write_report("service_load", "\n".join(lines))
