"""Structural-backend scaling benches (ISSUE 7): tree-DP and decomposition.

The monolithic MC-PERF LP grows as O(storers * intervals * objects)
variables; the structural backends in ``repro.solvers`` sidestep it.  This
module records their scaling in ``benchmarks/out/BENCH_decomposition.json``:

* **Exact tree-DP at 1000 nodes** — a random recursive tree far past
  monolithic-LP reach is bounded *exactly* (``lp_cost == feasible_cost``,
  integral store) by the per-cell ball-cover greedy, and the auto-selector
  picks it from structure alone.  The backend is verified against the LP
  on a parent-closed subsample of the same tree (a connected subtree, so
  the induced latency submatrix is still a tree metric).
* **Per-object decomposition at >=10x Figure-2 scale** — 800 objects /
  ~450 K requests (10x the fig-2 bench's 80 objects / ~45 K), demand built
  through the streamed ``from_stream`` path, solved by the pooled
  per-object decomposition.  The backend differential audit re-solves a
  sampled object slice through the monolithic LP and must agree.

``REPRO_BENCH_QUICK=1`` (CI's decomposition-smoke job) shrinks both
instances but keeps every exactness/agreement assertion.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import OUT_DIR, SCALE, TLAT_MS, write_report
from repro.core.bounds import compute_lower_bound
from repro.core.costs import CostModel
from repro.core.goals import GoalScope, QoSGoal
from repro.core.problem import MCPerfProblem
from repro.solvers.decompose import solve_decomposed
from repro.solvers.registry import (
    BACKEND_AUTO,
    BACKEND_DECOMPOSED,
    BACKEND_STRUCTURE,
    BACKEND_TREE_DP,
    DECOMPOSITION_MIN_VARIABLES,
    estimated_lp_variables,
    select_backend,
)
from repro.topology.generators import as_level_topology, tree_topology
from repro.topology.graph import Topology
from repro.workload.demand import DemandMatrix
from repro.workload.generators import WorkloadSpec, synthetic_request_stream

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

TREE_NODES = 200 if QUICK else 1000
TREE_OBJECTS = 8 if QUICK else 20
TREE_INTERVALS = 4
VERIFY_NODES = 40 if QUICK else 80

DECOMP_NODES = 20
DECOMP_INTERVALS = 8
#: 10x the fig-2 bench's 80 objects / ~45 K requests (2x in quick mode —
#: still past DECOMPOSITION_MIN_VARIABLES, so auto-selection is exercised).
DECOMP_OBJECTS = 160 if QUICK else 800
DECOMP_REQUESTS = 90_000 if QUICK else 450_000
AUDIT_SLICE = 12 if QUICK else 24

#: Populated by the benches below; the final test writes it out.
RESULTS: dict = {"scale": SCALE, "quick": QUICK}


@pytest.fixture(scope="module")
def tree_instance():
    """A 1000-node tree instance in the tree-DP fragment (full coverage)."""
    topo = tree_topology(TREE_NODES, seed=7)
    rng = np.random.default_rng(7)
    reads = rng.integers(0, 3, size=(TREE_NODES, TREE_INTERVALS, TREE_OBJECTS))
    writes = rng.integers(0, 2, size=(TREE_NODES, TREE_INTERVALS, TREE_OBJECTS))
    return MCPerfProblem(
        topology=topo,
        demand=DemandMatrix(reads=reads.astype(float), writes=writes.astype(float)),
        goal=QoSGoal(tlat_ms=250.0, fraction=1.0),
        costs=CostModel(alpha=1.0, beta=0.0, gamma=0.0, delta=0.1),
    )


@pytest.fixture(scope="module")
def big_instance():
    """>=10x fig-2 scale, demand bucketed through the streamed path."""
    topo = as_level_topology(DECOMP_NODES, seed=2)
    ranks = np.arange(1, DECOMP_OBJECTS + 1, dtype=float)
    weights = ranks**-0.8
    counts = np.floor(weights / weights.sum() * DECOMP_REQUESTS).astype(np.int64)
    spec = WorkloadSpec(
        num_nodes=DECOMP_NODES,
        num_objects=DECOMP_OBJECTS,
        counts=counts,
        populations=topo.populations,
        seed=11,
    )
    demand = DemandMatrix.from_stream(
        synthetic_request_stream(spec),
        num_nodes=DECOMP_NODES,
        num_objects=DECOMP_OBJECTS,
        num_intervals=DECOMP_INTERVALS,
        duration_s=spec.duration_s,
    )
    return MCPerfProblem(
        topology=topo,
        demand=demand,
        goal=QoSGoal(tlat_ms=TLAT_MS, fraction=0.9, scope=GoalScope.PER_OBJECT),
        costs=CostModel.paper_defaults(),
    )


# -- 1. exact tree-DP at 1000 nodes ------------------------------------------


def test_tree_dp_bound_at_scale(tree_instance):
    assert select_backend(tree_instance) == BACKEND_TREE_DP
    t0 = time.perf_counter()
    res = compute_lower_bound(tree_instance, backend=BACKEND_STRUCTURE)
    elapsed = time.perf_counter() - t0
    assert res.backend_used == BACKEND_TREE_DP and res.feasible
    # Exact: the greedy cover IS the LP optimum, with an integral store.
    assert res.feasible_cost == pytest.approx(res.lp_cost, rel=1e-9)
    RESULTS["tree_dp"] = {
        "nodes": TREE_NODES,
        "objects": TREE_OBJECTS,
        "intervals": TREE_INTERVALS,
        "estimated_lp_variables": estimated_lp_variables(tree_instance),
        "lp_cost": round(res.lp_cost, 6),
        "replicas": res.extras["tree_dp"]["replicas"],
        "solve_s": round(elapsed, 4),
    }


def test_tree_dp_matches_lp_on_subsampled_topology(tree_instance):
    # The first m nodes in construction order form a parent-closed set: the
    # path between any two of them runs through ancestors also in the set,
    # so the induced submatrix is itself a tree metric.
    order, _parent, _pdist = tree_instance.topology.tree_parents()
    keep = np.sort(np.asarray(order[:VERIFY_NODES], dtype=int))
    origin = int(np.searchsorted(keep, tree_instance.topology.origin))
    sub_topo = Topology(
        latency=tree_instance.topology.latency[np.ix_(keep, keep)], origin=origin
    )
    assert sub_topo.is_tree()
    sub_problem = MCPerfProblem(
        topology=sub_topo,
        demand=DemandMatrix(
            reads=tree_instance.demand.reads[keep].copy(),
            writes=tree_instance.demand.writes[keep].copy(),
            interval_s=tree_instance.demand.interval_s,
        ),
        goal=tree_instance.goal,
        costs=tree_instance.costs,
    )
    dp = compute_lower_bound(sub_problem, backend=BACKEND_TREE_DP, do_rounding=False)
    lp = compute_lower_bound(sub_problem, backend=BACKEND_AUTO, do_rounding=False)
    assert dp.feasible and lp.feasible
    assert dp.lp_cost == pytest.approx(lp.lp_cost, rel=1e-6, abs=1e-6)
    RESULTS["tree_dp_verification"] = {
        "nodes": VERIFY_NODES,
        "tree_dp_cost": round(dp.lp_cost, 6),
        "lp_cost": round(lp.lp_cost, 6),
    }


# -- 2. per-object decomposition at >=10x fig-2 scale ------------------------


def test_decomposed_solves_ten_x_fig2(big_instance):
    est = estimated_lp_variables(big_instance)
    assert est >= DECOMPOSITION_MIN_VARIABLES
    assert select_backend(big_instance) == BACKEND_DECOMPOSED
    t0 = time.perf_counter()
    res = compute_lower_bound(big_instance, backend=BACKEND_STRUCTURE)
    elapsed = time.perf_counter() - t0
    assert res.backend_used == BACKEND_DECOMPOSED and res.feasible
    info = res.extras["decomposition"]
    assert info["mode"] == "separable"
    assert res.rounding is not None and res.rounding.feasible
    assert res.feasible_cost >= res.lp_cost - 1e-6
    RESULTS["decomposed"] = {
        "nodes": DECOMP_NODES,
        "objects": DECOMP_OBJECTS,
        "intervals": DECOMP_INTERVALS,
        "requests": int(big_instance.demand.reads.sum() + big_instance.demand.writes.sum()),
        "estimated_lp_variables": est,
        "lp_cost": round(res.lp_cost, 6),
        "feasible_cost": round(res.feasible_cost, 6),
        "jobs": info["jobs"],
        "solve_s": round(elapsed, 4),
    }


def test_backend_differential_on_sampled_slice(big_instance):
    # The monolithic LP on the full instance is exactly what decomposition
    # avoids, so the audit agreement runs on a sampled object slice.
    rng = np.random.default_rng(5)
    sample = rng.choice(big_instance.demand.num_objects, size=AUDIT_SLICE, replace=False)
    slice_problem = dataclasses.replace(
        big_instance,
        demand=big_instance.demand.restrict_objects(sorted(int(k) for k in sample)),
    )
    res = solve_decomposed(slice_problem, audit="full", audit_subject="bench-decomp-slice")
    assert res.audit is not None
    assert "backend-differential" in res.audit.checks
    assert res.audit.ok, [v.message for v in res.audit.violations]
    RESULTS["backend_differential"] = {
        "slice_objects": AUDIT_SLICE,
        "lp_cost": round(res.lp_cost, 6),
        "checks": list(res.audit.checks),
        "violations": len(res.audit.violations),
    }


# -- report ------------------------------------------------------------------


def test_write_decomposition_report():
    """Runs last (file order): persists the JSON record + a readable table."""
    expected = {"tree_dp", "tree_dp_verification", "decomposed", "backend_differential"}
    assert expected <= set(RESULTS), (
        "scaling benches must run before the report (run the whole module)"
    )
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_decomposition.json").write_text(
        json.dumps(RESULTS, indent=2, sort_keys=True) + "\n"
    )
    t, v, d, a = (
        RESULTS["tree_dp"],
        RESULTS["tree_dp_verification"],
        RESULTS["decomposed"],
        RESULTS["backend_differential"],
    )
    lines = [
        "Structural-backend scaling (scale=%s%s)" % (SCALE, ", quick" if QUICK else ""),
        "",
        f"  tree-dp     {t['nodes']} nodes x {t['objects']} objects x"
        f" {t['intervals']} intervals  (~{t['estimated_lp_variables']} LP vars avoided)",
        f"              exact bound {t['lp_cost']} with {t['replicas']} replicas"
        f" in {t['solve_s']}s; == LP at {v['nodes']} nodes"
        f" ({v['tree_dp_cost']} vs {v['lp_cost']})",
        f"  decomposed  {d['objects']} objects / {d['requests']} requests"
        f" (~{d['estimated_lp_variables']} LP vars monolithic)",
        f"              bound {d['lp_cost']} / rounded {d['feasible_cost']}"
        f" via {d['jobs']} jobs in {d['solve_s']}s",
        f"  audit       backend-differential agrees on a {a['slice_objects']}-object"
        f" slice ({a['violations']} violations)",
    ]
    write_report("decomposition", "\n".join(lines))
