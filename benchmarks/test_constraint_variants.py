"""§4.1 constraint-variant ablation: (16) vs (16a) and (17) vs (17a).

The paper defines two variations of each fixed-resource constraint: uniform
across nodes/objects, or per-node/per-object (fixed over time).  The
per-entity variants are strictly weaker constraints, so their bounds sit
between the general bound and the uniform variants — and the gap between
the two variants measures how much heterogeneity (bigger caches on busy
nodes, more replicas for popular objects) is worth for a workload.
"""

from repro.analysis.report import render_series_table
from repro.core.bounds import compute_lower_bound
from repro.core.classes import get_class

from benchmarks.conftest import make_problem, write_report

LEVEL = 0.95

VARIANTS = [
    "general",
    "storage-constrained",
    "storage-constrained-per-node",
    "replica-constrained",
    "replica-constrained-per-object",
]


def run_variants(topology, demand):
    problem = make_problem(topology, demand, LEVEL)
    bounds = {}
    for name in VARIANTS:
        result = compute_lower_bound(
            problem, get_class(name).properties, do_rounding=False
        )
        bounds[name] = result.lp_cost if result.feasible else None
    return bounds


def test_constraint_variants_web(benchmark, topology, web_demand):
    bounds = benchmark.pedantic(
        run_variants, args=(topology, web_demand), rounds=1, iterations=1
    )
    rows = [[name, round(v) if v is not None else None] for name, v in bounds.items()]
    write_report(
        "constraint_variants_web",
        render_series_table(
            "SC/RC variant bounds (WEB, 95% QoS)", ["class", "bound"], rows
        ),
    )

    general = bounds["general"]
    sc_uniform = bounds["storage-constrained"]
    sc_node = bounds["storage-constrained-per-node"]
    rc_uniform = bounds["replica-constrained"]
    rc_object = bounds["replica-constrained-per-object"]
    assert all(v is not None for v in bounds.values())

    # Weaker constraints give lower (or equal) bounds, all above general.
    assert general <= sc_node <= sc_uniform + 1e-6
    assert general <= rc_object <= rc_uniform + 1e-6
    # Heterogeneity is worth a lot on the skewed WEB workload: per-object
    # replication factors dodge the heavy tail's padding.
    assert rc_object <= 0.8 * rc_uniform
    # Per-node capacities dodge the idle-site padding of uniform SC.
    assert sc_node <= 0.95 * sc_uniform
