"""Figure 1 (right): per-class lower bounds vs QoS goal, GROUP workload.

Paper's conclusions reproduced here:

* the replica-constrained bound nearly overlaps the general bound (every
  object is popular, so a uniform replication factor wastes nothing);
* the storage-constrained, caching and cooperative-caching bounds overlap
  each other well above the replica-constrained bound (the storage
  constraint is their shared limiting factor).
"""

from repro.analysis.plot import ascii_chart
from repro.analysis.report import render_csv, render_sweep_table
from repro.analysis.sweep import qos_sweep
from repro.core.classes import FIGURE1_CLASSES

from benchmarks.conftest import GROUP_LEVELS, write_report


def test_fig1_group_bounds(benchmark, group_problem):
    sweep = benchmark.pedantic(
        qos_sweep,
        args=(group_problem,),
        kwargs={"levels": GROUP_LEVELS, "classes": FIGURE1_CLASSES},
        rounds=1,
        iterations=1,
    )

    table = render_sweep_table(
        sweep, title="Figure 1 (GROUP): lower bound per heuristic class vs QoS goal"
    )
    chart = ascii_chart(
        {cls: sweep.series(cls) for cls in sweep.classes},
        x_labels=[f"{lvl:.3%}".rstrip("0%") + "%" for lvl in sweep.levels],
        title="cost vs QoS (GROUP)",
    )
    write_report("fig1_group", table + "\n\n" + chart + "\n\n" + render_csv(sweep))

    level = GROUP_LEVELS[0]
    general = sweep.bound("general", level)
    sc = sweep.bound("storage-constrained", level)
    rc = sweep.bound("replica-constrained", level)
    coop = sweep.bound("cooperative-caching", level)
    caching = sweep.bound("caching", level)
    assert general and sc and rc and coop and caching

    # Replica-constrained nearly overlaps the general bound.
    assert rc <= 1.35 * general
    # Storage-constrained / caching / cooperative caching overlap each other
    # well above the replica-constrained bound.
    assert sc >= 1.5 * rc
    assert abs(coop - sc) <= 0.15 * sc
    assert abs(caching - sc) <= 0.25 * sc
