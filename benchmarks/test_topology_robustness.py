"""Robustness: the Figure-1 WEB conclusions across topology seeds.

The paper draws its conclusions from one (Telstra-derived) topology.  A
reproduction on synthetic topologies must show the conclusions are not an
artifact of one random draw: across independent AS-level topologies the WEB
ordering (general < storage-constrained < replica-constrained) and the
caching-feasibility cliff must persist.
"""

from repro.analysis.report import render_series_table
from repro.core.bounds import compute_lower_bound
from repro.core.classes import get_class
from repro.core.costs import CostModel
from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.topology.generators import as_level_topology
from repro.workload.demand import DemandMatrix
from repro.workload.generators import web_workload

from benchmarks.conftest import NUM_INTERVALS, TLAT_MS, write_report

SEEDS = [2, 5, 11]
LEVEL = 0.95


def run_seeds():
    rows = []
    outcomes = []
    for seed in SEEDS:
        topo = as_level_topology(num_nodes=20, seed=seed)
        trace = web_workload(
            num_nodes=20,
            num_objects=80,
            populations=topo.populations,
            requests_scale=0.1,
            seed=seed + 100,
        )
        demand = DemandMatrix.from_trace(trace, num_intervals=NUM_INTERVALS)
        problem = MCPerfProblem(
            topology=topo,
            demand=demand,
            goal=QoSGoal(tlat_ms=TLAT_MS, fraction=LEVEL),
            costs=CostModel.paper_defaults(),
            warmup_intervals=1,
        )
        bounds = {}
        for cls in ["general", "storage-constrained", "replica-constrained"]:
            result = compute_lower_bound(
                problem, get_class(cls).properties, do_rounding=False
            )
            bounds[cls] = result.lp_cost if result.feasible else None
        # Caching feasibility cliff: does it die before 99.9%?
        import dataclasses

        strict = dataclasses.replace(
            problem, goal=QoSGoal(tlat_ms=TLAT_MS, fraction=0.999)
        )
        caching_strict = compute_lower_bound(
            strict, get_class("caching").properties, do_rounding=False
        )
        rows.append(
            [
                seed,
                round(bounds["general"]),
                round(bounds["storage-constrained"]),
                round(bounds["replica-constrained"]),
                "dies" if not caching_strict.feasible else "survives",
            ]
        )
        outcomes.append((bounds, caching_strict.feasible))
    return rows, outcomes


def test_topology_robustness(benchmark):
    rows, outcomes = benchmark.pedantic(run_seeds, rounds=1, iterations=1)
    write_report(
        "topology_robustness",
        render_series_table(
            f"WEB conclusions across topology seeds ({LEVEL:.0%} QoS)",
            ["seed", "general", "SC", "RC", "caching @99.9%"],
            rows,
        ),
    )
    for bounds, caching_survives in outcomes:
        general = bounds["general"]
        sc = bounds["storage-constrained"]
        rc = bounds["replica-constrained"]
        assert general and sc and rc
        assert general < sc < rc, "WEB ordering must hold on every seed"
        assert not caching_survives, "caching must hit its cliff on every seed"
