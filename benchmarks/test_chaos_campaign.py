"""Chaos-campaign benchmark: the compound scenario, timed and recorded.

Runs the CI campaign plan — flash crowd + zone partition + injected daemon
crash + checkpoint corruption + slow solves — through
:func:`repro.chaos.run_campaign` and records what the engine measured:
invariant verdicts, supervised restarts, load accounting, brownout
counters, and wall-clock split between the baseline and chaos phases.

Results land in ``benchmarks/out/chaos_campaign.txt`` (table) and
``benchmarks/out/BENCH_chaos.json`` (machine-readable record).
"""

from __future__ import annotations

import json
import time

from repro.chaos import run_campaign

from benchmarks.conftest import OUT_DIR, SCALE, write_report

PLAN = (
    "flashcrowd:epochs=2-3,object=0,mult=8;"
    "zonepart:zone=1,at=900,down=900;"
    "crash:epoch=3;"
    "corrupt_checkpoint:at=1;"
    "slow:p=0.5,ms=120"
)

EPOCHS = int(6 * max(1.0, SCALE**0.5))


def test_chaos_campaign(tmp_path):
    start = time.perf_counter()
    report = run_campaign(
        PLAN,
        tmp_path,
        epochs=EPOCHS,
        epoch_interval_s=0.25,
        requests_per_epoch=int(300 * max(1.0, SCALE**0.5)),
    )
    elapsed = time.perf_counter() - start

    failed = {
        name: entry["detail"]
        for name, entry in report.invariants.items()
        if not entry["ok"]
    }
    assert report.passed, f"campaign failed invariants: {failed}"
    assert report.restarts >= 1, "the injected crash never fired"
    assert report.load["lost"] == 0
    assert sum(report.brownout.values()) > 0, "brownout ladder never engaged"
    assert report.baseline_digest == report.recovered_digest

    record = {
        "scale": SCALE,
        "plan": report.spec,
        "epochs": EPOCHS,
        "elapsed_s": elapsed,
        "campaign_s": report.duration_s,
        "passed": report.passed,
        "invariants": report.invariants,
        "restarts": report.restarts,
        "launches": len(report.launches),
        "load": report.load,
        "brownout": report.brownout,
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_chaos.json").write_text(json.dumps(record, indent=2) + "\n")

    inv = "  ".join(
        f"{name}={'ok' if entry['ok'] else 'FAIL'}"
        for name, entry in sorted(report.invariants.items())
    )
    lines = [
        "chaos campaign: compound plan under supervised injection",
        f"  plan: {report.spec}",
        f"  epochs={EPOCHS} scale={SCALE:g} wall={elapsed:.1f}s",
        "",
        f"  launches={len(report.launches)} restarts={report.restarts} "
        f"(exit codes: {[l['exit'] for l in report.launches]})",
        f"  load: issued={report.load['issued']} ok={report.load['ok']} "
        f"shed={report.load['shed']} stale={report.load['stale']} "
        f"conn={report.load['connection_errors']} lost={report.load['lost']}",
        f"  brownout: approx={report.brownout.get('approx_served', 0)} "
        f"stale={report.brownout.get('stale_served', 0)} "
        f"shed={report.brownout.get('shed_hard', 0)}",
        f"  {inv}",
        "",
        "  recovery converged byte-identically with the uninterrupted baseline",
    ]
    write_report("chaos_campaign", "\n".join(lines))
