"""Appendix C ablations: domain-specific rounding vs generic rounding, and
the run-length optimization.

Paper claims reproduced in shape:

* the domain rounding lands close to the LP bound (paper: within ~10 %)
  while a generic round-everything-up lands far above it (paper: up to 80 %);
* run-length rounding is faster than per-value rounding at a small cost
  increase (paper: >10x faster, <5 % extra cost).
"""

import time

import numpy as np

from repro.analysis.report import render_series_table
from repro.core.classes import get_class
from repro.core.evaluate import meets_goal, solution_cost
from repro.core.formulation import build_formulation
from repro.core.rounding import round_solution

from benchmarks.conftest import make_problem, write_report

LEVELS = [0.90, 0.95]


def naive_round_up(form, solution):
    """The generic baseline: every fractional store value becomes 1."""
    store = form.store_array(solution.values)
    store = np.where(store > 1e-6, 1.0, 0.0)
    return store


def run_ablation(topology, web_demand):
    rows = []
    stats = []
    for level in LEVELS:
        problem = make_problem(topology, web_demand, level)
        # The general class uses per-store-interval accounting, where the
        # up/down pricing of the domain algorithm matters most; under SC/RC
        # capacity accounting the capacity padding dominates either rounding.
        form = build_formulation(problem, get_class("general").properties)
        solution = form.lp.solve().require_optimal()
        lp_cost = form.bound_cost(solution)

        t0 = time.perf_counter()
        domain = round_solution(form, solution, run_length=False)
        t_domain = time.perf_counter() - t0

        t0 = time.perf_counter()
        run_length = round_solution(form, solution, run_length=True)
        t_rl = time.perf_counter() - t0

        naive_store = naive_round_up(form, solution)
        assert meets_goal(form.instance, problem.goal, naive_store)
        naive_cost = solution_cost(
            form.instance, form.properties, problem.costs, naive_store, goal=problem.goal
        ).total

        rows.append(
            [
                f"{level:.2%}",
                round(lp_cost),
                round(domain.total_cost),
                f"{(domain.total_cost / lp_cost - 1) * 100:.1f}%",
                round(naive_cost),
                f"{(naive_cost / lp_cost - 1) * 100:.1f}%",
                round(run_length.total_cost),
                round(t_domain, 3),
                round(t_rl, 3),
            ]
        )
        stats.append((lp_cost, domain, run_length, naive_cost, t_domain, t_rl))
    return rows, stats


def test_rounding_ablation(benchmark, topology, web_demand):
    rows, stats = benchmark.pedantic(
        run_ablation, args=(topology, web_demand), rounds=1, iterations=1
    )
    table = render_series_table(
        "Rounding ablation (WEB, general class)",
        ["QoS", "LP bound", "domain", "gap", "naive-up", "naive gap", "run-length", "t_domain", "t_runlen"],
        rows,
    )
    write_report("rounding_ablation", table)

    for lp_cost, domain, run_length, naive_cost, _td, _trl in stats:
        assert domain.feasible and run_length.feasible
        # Both roundings upper-bound the LP.
        assert domain.total_cost >= lp_cost - 1e-6
        # Domain rounding is never worse than the generic round-up...
        assert domain.total_cost <= naive_cost + 1e-6
        # ...and the generic round-up is meaningfully looser whenever the LP
        # was fractional at all.
        if domain.fractional_units > 0:
            assert naive_cost > domain.total_cost
        # Run-length stays within a modest factor of the per-value rounding.
        assert run_length.total_cost <= 1.5 * domain.total_cost
