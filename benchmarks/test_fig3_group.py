"""Figure 3 (right): deployment-scenario bounds on the reduced topology, GROUP.

Paper's conclusion reproduced: on the reduced topology the storage-
constrained, replica-constrained and caching bounds are all low and close
to each other — so caching, being the best-understood heuristic, becomes
the most appealing choice (a different conclusion than Figure 1's).
"""

from repro.analysis.report import render_series_table
from repro.analysis.sweep import qos_sweep
from repro.core.classes import get_class
from repro.core.costs import CostModel
from repro.core.deployment import FIGURE3_CLASSES, _reactive_variant, plan_deployment
from repro.core.goals import QoSGoal

from benchmarks.conftest import TLAT_MS, WARMUP_INTERVALS, write_report

LEVELS = [0.90, 0.95]
ZETA = 3000.0


def run_fig3_group(topology, demand):
    plan = plan_deployment(
        topology,
        demand,
        QoSGoal(tlat_ms=TLAT_MS, fraction=LEVELS[0]),
        costs=CostModel.deployment_defaults(zeta=ZETA),
        do_rounding=False,
        warmup_intervals=WARMUP_INTERVALS,
    )
    assert plan.feasible, plan.reason
    classes = [_reactive_variant(get_class(n)) for n in FIGURE3_CLASSES]
    sweep = qos_sweep(plan.phase2_problem, levels=LEVELS, classes=classes)
    return plan, sweep


def test_fig3_group(benchmark, topology, group_demand):
    plan, sweep = benchmark.pedantic(
        run_fig3_group, args=(topology, group_demand), rounds=1, iterations=1
    )

    rows = []
    for level in LEVELS:
        rows.append(
            [f"{level:.2%}"] + [sweep.bound(cls, level) for cls in sweep.classes]
        )
    table = render_series_table(
        f"Figure 3 (GROUP): bounds on the {len(plan.open_nodes)}-node deployed "
        f"topology (opened: {sorted(plan.open_nodes)})",
        ["QoS"] + list(sweep.classes),
        rows,
    )
    write_report("fig3_group", table)

    level = LEVELS[1]
    reactive = sweep.bound("reactive", level)
    bounds = {
        cls: sweep.bound(cls, level)
        for cls in ("storage-constrained", "replica-constrained", "caching")
    }
    assert reactive and all(bounds.values())

    # All three class bounds are low and close to each other (within ~35% of
    # the reactive bound) — the paper's "pick caching, it's well understood".
    for cls, value in bounds.items():
        assert value <= 1.35 * reactive, f"{cls} not close to the reactive bound"
    spread = max(bounds.values()) / min(bounds.values())
    assert spread <= 1.25
