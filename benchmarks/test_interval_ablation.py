"""§4.3 / Appendix B ablation: the evaluation interval and the bound.

With storage priced per unit time, solving at a finer evaluation interval
yields an equal or lower bound (Theorem 2's direction: a bound at delta
covers heuristics evaluated at >= 2*delta).  This bench sweeps the interval
granularity on a fixed trace and verifies monotonicity, plus Theorem 3's
per-access interval selection on the trace's inter-access gaps.
"""

import dataclasses

from repro.analysis.report import render_series_table
from repro.core.bounds import compute_lower_bound
from repro.core.costs import CostModel
from repro.core.goals import QoSGoal
from repro.core.intervals import bound_applies, per_access_interval
from repro.core.problem import MCPerfProblem
from repro.workload.demand import DemandMatrix

from benchmarks.conftest import TLAT_MS, write_report

INTERVALS = [2, 4, 8, 16]


def run_interval_sweep(topology, web_trace):
    rows = []
    bounds = []
    for count in INTERVALS:
        demand = DemandMatrix.from_trace(web_trace, num_intervals=count)
        # Price storage per unit time: alpha scales with interval length so
        # different granularities are comparable.
        alpha = web_trace.duration_s / count / 3600.0
        problem = MCPerfProblem(
            topology=topology,
            demand=demand,
            goal=QoSGoal(tlat_ms=TLAT_MS, fraction=0.9),
            costs=CostModel(alpha=alpha, beta=1.0),
            # No warm-up here: masking one interval would hide a different
            # demand share at each granularity and confound the comparison.
            warmup_intervals=0,
        )
        result = compute_lower_bound(problem, do_rounding=False)
        rows.append(
            [
                count,
                round(web_trace.duration_s / count / 3600.0, 2),
                round(result.lp_cost) if result.feasible else None,
                round(result.solve_seconds, 2),
            ]
        )
        bounds.append(result.lp_cost if result.feasible else None)
    return rows, bounds


def test_interval_granularity(benchmark, topology, web_trace):
    rows, bounds = benchmark.pedantic(
        run_interval_sweep, args=(topology, web_trace), rounds=1, iterations=1
    )
    table = render_series_table(
        "General lower bound vs evaluation-interval granularity (WEB, 90% QoS)",
        ["intervals", "delta_hours", "bound", "solve_s"],
        rows,
    )
    write_report("interval_ablation", table)

    present = [b for b in bounds if b is not None]
    assert len(present) == len(bounds), "all granularities must be feasible"
    # Finer granularity (more intervals) never raises the bound; allow a
    # small tolerance for warm-up masking differences across bucketings.
    for coarse, fine in zip(bounds, bounds[1:]):
        assert fine <= coarse * 1.05


def test_theorem3_interval_selection(benchmark, web_trace):
    delta = benchmark.pedantic(
        per_access_interval, args=(web_trace,), rounds=1, iterations=1
    )
    assert delta > 0
    # The chosen delta bounds every heuristic whose period is itself, or at
    # least twice it (Theorem 2's applicability test).
    assert bound_applies(delta, 2 * delta)
    assert bound_applies(delta, delta)
    write_report(
        "theorem3_interval",
        f"Theorem-3 evaluation interval for the WEB trace: {delta:.3g}s "
        f"({web_trace.duration_s / delta:.3g} intervals per day; the paper "
        f"solves at 1h for tractability and Theorem 2 says which heuristics "
        f"that coarser bound still covers)",
    )
