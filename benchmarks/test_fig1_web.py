"""Figure 1 (left): per-class lower bounds vs QoS goal, WEB workload.

Paper's conclusions reproduced here:

* the storage-constrained bound is the cheapest restricted class;
* the replica-constrained bound is substantially above it (the heavy tail
  forces unpopular objects to carry as many replicas as popular ones);
* caching classes are costliest and stop being feasible beyond a QoS level
  ("local caching cannot even achieve a QoS goal above 99%").
"""

from repro.analysis.plot import ascii_chart
from repro.analysis.report import render_csv, render_sweep_table
from repro.analysis.sweep import qos_sweep
from repro.core.classes import FIGURE1_CLASSES

from benchmarks.conftest import WEB_LEVELS, write_report


def test_fig1_web_bounds(benchmark, web_problem):
    sweep = benchmark.pedantic(
        qos_sweep,
        args=(web_problem,),
        kwargs={"levels": WEB_LEVELS, "classes": FIGURE1_CLASSES},
        rounds=1,
        iterations=1,
    )

    table = render_sweep_table(
        sweep, title="Figure 1 (WEB): lower bound per heuristic class vs QoS goal"
    )
    chart = ascii_chart(
        {cls: sweep.series(cls) for cls in sweep.classes},
        x_labels=[f"{lvl:.3%}".rstrip("0%") + "%" for lvl in sweep.levels],
        title="cost vs QoS (WEB)",
    )
    write_report("fig1_web", table + "\n\n" + chart + "\n\n" + render_csv(sweep))

    base_level = WEB_LEVELS[1]  # 95%, the paper's first x-axis point
    general = sweep.bound("general", base_level)
    sc = sweep.bound("storage-constrained", base_level)
    rc = sweep.bound("replica-constrained", base_level)
    caching = sweep.bound("caching", base_level)
    assert general and sc and rc and caching

    # Shape assertions (who wins, by roughly what factor):
    assert general < sc < rc, "WEB: storage-constrained must beat replica-constrained"
    assert caching >= sc, "caching is never cheaper than its storage-constrained superclass"
    # Caching's curve must end before the sweep does (paper: can't exceed 99%).
    assert sweep.max_feasible_level("caching") < WEB_LEVELS[-1]
    # All restricted classes sit meaningfully above the general bound.
    assert sc >= 1.5 * general
