"""Model-extension ablations: the write-cost (12) and penalty (11) terms.

The paper's base experiments set delta and gamma to zero; these benches
exercise the extensions and verify their economics:

* **delta (updates):** charging each write once per replica makes heavy
  replication progressively less attractive — the general bound rises with
  the write rate, and the replica-constrained bound rises faster (it keeps
  more replicas).
* **gamma (late-access penalty):** pricing best-effort misses makes the LP
  buy extra coverage once the penalty exceeds the marginal storage cost —
  the bound interpolates smoothly between "ignore misses" and "cover
  everything".
"""

import dataclasses

import numpy as np

from repro.analysis.report import render_series_table
from repro.core.bounds import compute_lower_bound
from repro.core.classes import get_class
from repro.core.costs import CostModel
from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.topology.generators import as_level_topology
from repro.workload.demand import DemandMatrix
from repro.workload.generators import synthetic_workload, WorkloadSpec

from benchmarks.conftest import TLAT_MS, write_report

NUM_NODES = 12
NUM_INTERVALS = 6
NUM_OBJECTS = 24


def build_problem(write_fraction: float, costs: CostModel):
    topo = as_level_topology(num_nodes=NUM_NODES, seed=4)
    spec = WorkloadSpec(
        num_nodes=NUM_NODES,
        num_objects=NUM_OBJECTS,
        counts=np.full(NUM_OBJECTS, 400),
        populations=topo.populations,
        write_fraction=write_fraction,
        seed=3,
        name=f"rw-{write_fraction}",
    )
    trace = synthetic_workload(spec)
    demand = DemandMatrix.from_trace(trace, num_intervals=NUM_INTERVALS)
    return MCPerfProblem(
        topology=topo,
        demand=demand,
        goal=QoSGoal(tlat_ms=TLAT_MS, fraction=0.9),
        costs=costs,
        warmup_intervals=1,
    )


def run_write_cost():
    rows = []
    series = {"general": [], "replica-constrained": []}
    for write_fraction in [0.0, 0.2, 0.4]:
        problem = build_problem(write_fraction, CostModel(alpha=1.0, beta=1.0, delta=0.05))
        row = [f"{write_fraction:.0%}"]
        for cls in ["general", "replica-constrained"]:
            result = compute_lower_bound(
                problem, get_class(cls).properties, do_rounding=False
            )
            value = result.lp_cost if result.feasible else None
            row.append(round(value) if value is not None else None)
            series[cls].append(value)
        rows.append(row)
    return rows, series


def test_write_cost_extension(benchmark):
    rows, series = benchmark.pedantic(run_write_cost, rounds=1, iterations=1)
    table = render_series_table(
        "Extension (12): bounds vs write fraction (delta = 0.05)",
        ["writes", "general", "replica-constrained"],
        rows,
    )
    write_report("extension_writes", table)

    general = series["general"]
    rc = series["replica-constrained"]
    assert all(v is not None for v in general + rc)
    # More writes -> more update traffic per replica -> higher bounds.
    assert general == sorted(general)
    assert rc == sorted(rc)
    # The replica-heavy class pays more for the same write-rate increase.
    assert (rc[-1] - rc[0]) >= (general[-1] - general[0]) - 1e-6


def run_gamma_sweep():
    topo = as_level_topology(num_nodes=NUM_NODES, seed=4)
    spec = WorkloadSpec(
        num_nodes=NUM_NODES,
        num_objects=NUM_OBJECTS,
        counts=np.full(NUM_OBJECTS, 400),
        populations=topo.populations,
        seed=3,
        name="gamma",
    )
    trace = synthetic_workload(spec)
    demand = DemandMatrix.from_trace(trace, num_intervals=NUM_INTERVALS)
    rows = []
    bounds = []
    for gamma in [0.0, 0.001, 0.01, 0.1]:
        problem = MCPerfProblem(
            topology=topo,
            demand=demand,
            goal=QoSGoal(tlat_ms=TLAT_MS, fraction=0.8),
            costs=CostModel(alpha=1.0, beta=1.0, gamma=gamma),
            warmup_intervals=1,
        )
        result = compute_lower_bound(problem, do_rounding=False)
        rows.append(
            [f"{gamma:g}", round(result.lp_cost) if result.feasible else None]
        )
        bounds.append(result.lp_cost)
    return rows, bounds


def test_gamma_penalty_extension(benchmark):
    rows, bounds = benchmark.pedantic(run_gamma_sweep, rounds=1, iterations=1)
    table = render_series_table(
        "Extension (11): general bound vs miss penalty gamma (80% QoS goal)",
        ["gamma", "bound"],
        rows,
    )
    write_report("extension_gamma", table)

    assert all(b is not None for b in bounds)
    # Penalizing best-effort misses can only raise the total bound,
    # monotonically in gamma.
    assert bounds == sorted(bounds)
    assert bounds[-1] > bounds[0]
