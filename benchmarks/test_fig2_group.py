"""Figure 2 (right): deployed-heuristic cost vs the class bound, GROUP.

The replica-constrained greedy heuristic (Qiu et al.) is sized to the
smallest replication factor that meets the per-user goal; its provisioned
cost is compared against the replica-constrained lower bound, with LRU
caching as the expensive "obvious" alternative.
"""

import pytest

from repro.analysis.report import render_series_table
from repro.core.bounds import compute_lower_bound
from repro.core.classes import get_class
from repro.heuristics.caching import LRUCaching
from repro.heuristics.qiu import QiuGreedyPlacement
from repro.simulator.metrics import heuristic_cost
from repro.simulator.sizing import min_capacity_for_goal, min_replicas_for_goal

from benchmarks.conftest import (
    NUM_INTERVALS,
    TLAT_MS,
    WARMUP_INTERVALS,
    make_problem,
    write_report,
)

LEVELS = [0.95, 0.99]


def run_fig2_group(topology, group_trace, group_demand):
    interval_s = group_trace.duration_s / NUM_INTERVALS
    warmup_s = WARMUP_INTERVALS * interval_s
    num_objects = group_trace.num_objects
    rows = []
    results = {}
    for level in LEVELS:
        problem = make_problem(topology, group_demand, level)
        bound = compute_lower_bound(
            problem, get_class("replica-constrained").properties, do_rounding=False
        )
        qiu = min_replicas_for_goal(
            lambda r: QiuGreedyPlacement(r, period_s=interval_s, tlat_ms=TLAT_MS),
            topology,
            group_trace,
            tlat_ms=TLAT_MS,
            fraction=level,
            warmup_s=warmup_s,
            cost_interval_s=interval_s,
        )
        qiu_cost = None
        if qiu.feasible:
            qiu_cost = heuristic_cost(
                qiu.result,
                mode="rc",
                num_intervals=NUM_INTERVALS,
                replicas=qiu.value,
                num_objects=num_objects,
            ).total
        lru = min_capacity_for_goal(
            lambda c: LRUCaching(c),
            topology,
            group_trace,
            tlat_ms=TLAT_MS,
            fraction=level,
            warmup_s=warmup_s,
            cost_interval_s=interval_s,
        )
        lru_cost = None
        if lru.feasible:
            lru_cost = heuristic_cost(
                lru.result,
                mode="sc",
                num_nodes=topology.num_nodes - 1,
                num_intervals=NUM_INTERVALS,
                capacity=lru.value,
            ).total
        rows.append(
            [
                f"{level:.2%}",
                bound.lp_cost if bound.feasible else None,
                qiu.value if qiu.feasible else None,
                qiu_cost,
                lru.value if lru.feasible else None,
                lru_cost,
            ]
        )
        results[level] = (bound, qiu_cost, lru_cost)
    return rows, results


def test_fig2_group(benchmark, topology, group_trace, group_demand):
    rows, results = benchmark.pedantic(
        run_fig2_group,
        args=(topology, group_trace, group_demand),
        rounds=1,
        iterations=1,
    )
    table = render_series_table(
        "Figure 2 (GROUP): replica-constrained bound vs deployed heuristics",
        ["QoS", "RC bound", "Qiu R", "Qiu cost", "LRU cap", "LRU cost"],
        rows,
    )
    write_report("fig2_group", table)

    for level in LEVELS:
        bound, qiu_cost, lru_cost = results[level]
        assert bound.feasible
        assert qiu_cost is not None, f"Qiu greedy must meet {level:.2%}"
        assert qiu_cost >= bound.lp_cost - 1e-6
        if lru_cost is not None:
            # The paper's GROUP headline: LRU costs a multiple of the chosen
            # replica-constrained heuristic.
            assert lru_cost >= 1.2 * qiu_cost
