"""Extension (§7 future work): on-line adaptation under workload drift.

A trace that is WEB-shaped for the first half of the day and GROUP-shaped
for the second.  The sliding-window selection timeline must detect the
shift, and the adaptive heuristic-of-heuristics must track (or beat) the
worse of the two static choices while meeting the goal.
"""

import numpy as np

from repro.analysis.report import render_series_table
from repro.core.adaptive import (
    AdaptivePlacement,
    default_factories,
    selection_timeline,
)
from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.heuristics.greedy_global import GreedyGlobalPlacement
from repro.heuristics.qiu import QiuGreedyPlacement
from repro.simulator.engine import simulate
from repro.topology.generators import as_level_topology
from repro.workload.demand import DemandMatrix
from repro.workload.generators import group_workload, web_workload
from repro.workload.trace import Trace

from benchmarks.conftest import TLAT_MS, write_report

NUM_NODES = 16
NUM_INTERVALS = 8
GOAL = QoSGoal(tlat_ms=TLAT_MS, fraction=0.8)


def build_drifting_trace(topology):
    web = web_workload(
        num_nodes=NUM_NODES,
        num_objects=40,
        populations=topology.populations,
        requests_scale=0.08,
        seed=1,
        duration_s=43_200.0,
    )
    group = group_workload(
        num_nodes=NUM_NODES,
        num_objects=40,
        requests_scale=0.03,
        seed=2,
        duration_s=43_200.0,
    )
    return Trace.concat([web, group], name="WEB->GROUP")


def run_adaptive():
    topology = as_level_topology(num_nodes=NUM_NODES, seed=2)
    trace = build_drifting_trace(topology)
    period = trace.duration_s / NUM_INTERVALS

    demand = DemandMatrix.from_trace(trace, num_intervals=NUM_INTERVALS)
    problem = MCPerfProblem(
        topology=topology, demand=demand, goal=GOAL, warmup_intervals=1
    )
    timeline = selection_timeline(
        problem, window=3, step=2,
        classes=["storage-constrained", "replica-constrained"],
    )

    def run(heuristic):
        return simulate(
            topology, trace, heuristic, tlat_ms=TLAT_MS,
            warmup_s=period, cost_interval_s=period,
        )

    static_sc = run(GreedyGlobalPlacement(14, period_s=period, tlat_ms=TLAT_MS))
    static_rc = run(QiuGreedyPlacement(4, period_s=period, tlat_ms=TLAT_MS))
    adaptive_h = AdaptivePlacement(
        factories=default_factories(
            capacity=14, replicas=4, period_s=period, tlat_ms=TLAT_MS
        ),
        goal=GOAL,
        period_s=period,
        window=2,
        reselect_every=2,
    )
    adaptive = run(adaptive_h)
    return timeline, static_sc, static_rc, adaptive, adaptive_h


def test_adaptive_online(benchmark):
    timeline, static_sc, static_rc, adaptive, adaptive_h = benchmark.pedantic(
        run_adaptive, rounds=1, iterations=1
    )

    rows = [
        ["greedy-global (static)", round(static_sc.total_cost), f"{static_sc.qos:.4f}"],
        ["qiu-greedy (static)", round(static_rc.total_cost), f"{static_rc.qos:.4f}"],
        ["adaptive", round(adaptive.total_cost), f"{adaptive.qos:.4f}"],
    ]
    timeline_text = "\n".join(
        f"  window {p.start_interval}..{p.end_interval}: {p.recommended} "
        + str({k: round(v) if v else None for k, v in p.bounds.items()})
        for p in timeline
    )
    switch_text = (
        "switches: " + "; ".join(f"@{i}: {a}->{b}" for i, a, b in adaptive_h.switches)
        if adaptive_h.switches
        else "switches: none"
    )
    table = render_series_table(
        "On-line adaptation under WEB->GROUP drift",
        ["heuristic", "cost", "overall QoS"],
        rows,
    )
    write_report(
        "adaptive_online", table + "\n\nselection timeline:\n" + timeline_text + "\n" + switch_text
    )

    # The timeline produces a recommendation for every window.
    assert all(p.recommended for p in timeline)
    # The adaptive controller meets the goal overall.
    assert adaptive.qos >= GOAL.fraction
    # And is never worse than the worse static choice (it can shed the
    # mismatched half of the day).
    worse_static = max(static_sc.total_cost, static_rc.total_cost)
    assert adaptive.total_cost <= worse_static * 1.05
