"""Runner scaling: serial vs ``--jobs N`` wall clock on a Figure-1 sweep.

The experiment-runner layer fans the sweep's independent (class x level) LP
solves out over a process pool.  This bench runs the Figure-1-sized WEB sweep
serially and at increasing job counts, records the wall-clock times and
speedups into ``benchmarks/out/runner_scaling.txt``, and asserts the parallel
runs reproduce the serial bounds exactly — the correctness half of the
"jobs=1 is bit-identical, jobs=N is just faster" contract.

Speedup itself is not asserted: chunking keeps each class's levels on one
worker (for formulation reuse), so the achievable parallelism is bounded by
the number of classes, and CI machines are noisy.
"""

import os
import time

from repro.analysis.report import render_series_table
from repro.analysis.sweep import qos_sweep
from repro.core.classes import FIGURE1_CLASSES
from repro.runner import ExperimentRunner

from benchmarks.conftest import WEB_LEVELS, write_report

JOB_COUNTS = [1, 2, 4]


def run_sweeps(web_problem):
    grids = {}
    rows = []
    serial_seconds = None
    for jobs in JOB_COUNTS:
        runner = ExperimentRunner(jobs=jobs)
        t0 = time.perf_counter()
        sweep = qos_sweep(web_problem, levels=WEB_LEVELS, runner=runner)
        seconds = time.perf_counter() - t0
        if serial_seconds is None:
            serial_seconds = seconds
        grids[jobs] = {
            (cls, level): sweep.bound(cls, level)
            for cls in sweep.classes
            for level in sweep.levels
        }
        rows.append(
            [
                jobs,
                runner.tasks,
                round(seconds, 3),
                round(serial_seconds / seconds, 2),
            ]
        )
    return rows, grids


def test_runner_scaling(web_problem, benchmark):
    rows, grids = benchmark.pedantic(run_sweeps, args=(web_problem,), rounds=1, iterations=1)
    table = render_series_table(
        f"QoS sweep wall clock vs --jobs ({len(FIGURE1_CLASSES)} classes x "
        f"{len(WEB_LEVELS)} levels, WEB workload, {os.cpu_count()} cpu(s))",
        ["jobs", "tasks", "wall_s", "speedup"],
        rows,
    )
    write_report("runner_scaling", table)

    # Every parallel grid must equal the serial one, point for point.
    serial = grids[JOB_COUNTS[0]]
    for jobs in JOB_COUNTS[1:]:
        assert grids[jobs] == serial, f"jobs={jobs} grid diverged from serial"
    assert all(row[1] == len(FIGURE1_CLASSES) * len(WEB_LEVELS) for row in rows)
