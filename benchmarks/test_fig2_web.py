"""Figure 2 (left): deployed-heuristic cost vs the class bound, WEB.

For each QoS level the chosen heuristic (greedy global placement, the
storage-constrained recommendation for WEB) is sized to the smallest
capacity that meets the per-user goal in simulation, and its provisioned
cost is compared against the storage-constrained lower bound.  LRU caching —
the "obvious" heuristic — is sized the same way for comparison; the paper
reports it costs up to 7.5x more and cannot reach high QoS levels at all.
"""

import pytest

from repro.analysis.report import render_series_table
from repro.core.bounds import compute_lower_bound
from repro.core.classes import get_class
from repro.heuristics.caching import LRUCaching
from repro.heuristics.greedy_global import GreedyGlobalPlacement
from repro.simulator.metrics import heuristic_cost
from repro.simulator.sizing import min_capacity_for_goal

from benchmarks.conftest import (
    NUM_INTERVALS,
    TLAT_MS,
    WARMUP_INTERVALS,
    make_problem,
    write_report,
)

LEVELS = [0.90, 0.95]
INFEASIBLE_LEVEL = 0.99  # LRU cannot reach this on the WEB trace


def _size_and_cost(make, topology, trace, level):
    interval_s = trace.duration_s / NUM_INTERVALS
    sizing = min_capacity_for_goal(
        make,
        topology,
        trace,
        tlat_ms=TLAT_MS,
        fraction=level,
        warmup_s=WARMUP_INTERVALS * interval_s,
        cost_interval_s=interval_s,
    )
    if not sizing.feasible:
        return None, None
    cost = heuristic_cost(
        sizing.result,
        mode="sc",
        num_nodes=topology.num_nodes - 1,
        num_intervals=NUM_INTERVALS,
        capacity=sizing.value,
    )
    return sizing.value, cost.total


def run_fig2_web(topology, web_trace, web_demand):
    interval_s = web_trace.duration_s / NUM_INTERVALS
    rows = []
    results = {}
    for level in LEVELS + [INFEASIBLE_LEVEL]:
        problem = make_problem(topology, web_demand, level)
        bound = compute_lower_bound(
            problem, get_class("storage-constrained").properties, do_rounding=False
        )
        greedy_cap, greedy_cost = _size_and_cost(
            lambda c: GreedyGlobalPlacement(c, period_s=interval_s, tlat_ms=TLAT_MS),
            topology,
            web_trace,
            level,
        )
        lru_cap, lru_cost = _size_and_cost(
            lambda c: LRUCaching(c), topology, web_trace, level
        )
        rows.append(
            [
                f"{level:.2%}",
                bound.lp_cost if bound.feasible else None,
                greedy_cap,
                greedy_cost,
                lru_cap,
                lru_cost,
            ]
        )
        results[level] = (bound, greedy_cost, lru_cost)
    return rows, results


def test_fig2_web(benchmark, topology, web_trace, web_demand):
    rows, results = benchmark.pedantic(
        run_fig2_web,
        args=(topology, web_trace, web_demand),
        rounds=1,
        iterations=1,
    )
    table = render_series_table(
        "Figure 2 (WEB): storage-constrained bound vs deployed heuristics",
        ["QoS", "SC bound", "greedy cap", "greedy cost", "LRU cap", "LRU cost"],
        rows,
    )
    write_report("fig2_web", table)

    for level in LEVELS:
        bound, greedy_cost, lru_cost = results[level]
        assert bound.feasible
        assert greedy_cost is not None, f"greedy global must meet {level:.2%}"
        # No deployed class member may beat its class bound.
        assert greedy_cost >= bound.lp_cost - 1e-6
        if lru_cost is not None:
            # LRU (the "obvious" heuristic) is never the cheaper choice.
            assert lru_cost >= greedy_cost
    # The paper's headline: caching cannot reach the high QoS level at all.
    _b, _g, lru_high = results[INFEASIBLE_LEVEL]
    assert lru_high is None
