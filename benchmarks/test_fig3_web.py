"""Figure 3 (left): deployment-scenario bounds on the reduced topology, WEB.

Phase 1 picks the deployment sites (node-opening cost in the objective);
phase 2 recomputes class bounds on the reduced system where every site's
accesses route through its assigned node, with all classes reactive.

Paper's conclusions reproduced: storage-constrained remains the right
choice for WEB; the replica-constrained class becomes dramatically worse on
the reduced topology (a multiple of storage-constrained), and caching sits
just above storage-constrained.
"""

import dataclasses

from repro.analysis.report import render_series_table
from repro.analysis.sweep import qos_sweep
from repro.core.costs import CostModel
from repro.core.deployment import FIGURE3_CLASSES, plan_deployment
from repro.core.goals import QoSGoal

from benchmarks.conftest import TLAT_MS, WARMUP_INTERVALS, write_report

LEVELS = [0.90, 0.95]
ZETA = 3000.0


def run_fig3(topology, demand, base_level):
    plan = plan_deployment(
        topology,
        demand,
        QoSGoal(tlat_ms=TLAT_MS, fraction=base_level),
        costs=CostModel.deployment_defaults(zeta=ZETA),
        do_rounding=False,
        warmup_intervals=WARMUP_INTERVALS,
    )
    assert plan.feasible, plan.reason
    # Phase-2 sweep over the Figure-3 classes (reactive variants).
    from repro.core.deployment import _reactive_variant
    from repro.core.classes import get_class

    classes = [_reactive_variant(get_class(n)) for n in FIGURE3_CLASSES]
    sweep = qos_sweep(plan.phase2_problem, levels=LEVELS, classes=classes)
    return plan, sweep


def test_fig3_web(benchmark, topology, web_demand):
    plan, sweep = benchmark.pedantic(
        run_fig3, args=(topology, web_demand, LEVELS[0]), rounds=1, iterations=1
    )

    rows = []
    for level in LEVELS:
        rows.append(
            [f"{level:.2%}"] + [sweep.bound(cls, level) for cls in sweep.classes]
        )
    table = render_series_table(
        f"Figure 3 (WEB): bounds on the {len(plan.open_nodes)}-node deployed topology "
        f"(opened: {sorted(plan.open_nodes)})",
        ["QoS"] + list(sweep.classes),
        rows,
    )
    write_report("fig3_web", table)

    level = LEVELS[1]
    reactive = sweep.bound("reactive", level)
    sc = sweep.bound("storage-constrained", level)
    rc = sweep.bound("replica-constrained", level)
    caching = sweep.bound("caching", level)
    assert reactive and sc and rc and caching

    # Storage-constrained is the right choice; replica-constrained collapses
    # on the reduced topology (the paper's changed conclusion vs Figure 1).
    assert sc < rc
    assert rc >= 2.0 * sc
    assert caching >= sc - 1e-6
    assert caching <= 1.5 * sc  # caching tracks its SC superclass here
